//! Property tests for the log2 histogram: whatever is recorded, the bucket
//! totals always account for every event, and quantiles stay ordered and
//! bounded by the observed extremes.

use proptest::prelude::*;
use std::time::Duration;
use webrobot_metrics::{Histogram, BUCKETS};

proptest! {
    #[test]
    fn bucket_totals_equal_recorded_event_count(ns in proptest::collection::vec(0u64..=u64::MAX, 0..200)) {
        let h = Histogram::new();
        for &n in &ns {
            h.record(Duration::from_nanos(n));
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, ns.len() as u64);
        prop_assert_eq!(snap.buckets.len(), BUCKETS);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), ns.len() as u64);
        prop_assert_eq!(snap.max_ns, ns.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded(ns in proptest::collection::vec(0u64..1_000_000_000u64, 1..100)) {
        let h = Histogram::new();
        for &n in &ns {
            h.record(Duration::from_nanos(n));
        }
        let snap = h.snapshot();
        let p50 = snap.percentile(50);
        let p95 = snap.percentile(95);
        let p99 = snap.percentile(99);
        prop_assert!(p50 <= p95);
        prop_assert!(p95 <= p99);
        prop_assert!(p99 <= snap.max_ns);
    }
}
