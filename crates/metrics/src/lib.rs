//! Lock-free service metrics for the WebRobot reproduction.
//!
//! This crate is deliberately tiny and dependency-free: every recording
//! point is a handful of `Relaxed` atomic adds, so instrumentation can sit
//! on the hot request path of the sharded service without perturbing the
//! latencies it measures. Three primitives are provided:
//!
//! - [`Histogram`]: a fixed-bucket log2 latency histogram (nanoseconds).
//!   Buckets double in width, so 40 buckets span 1 ns to ~18 minutes with
//!   bounded relative error, and recording is two shifts plus four atomic
//!   adds — no allocation, no locks, no floating point.
//! - per-request-kind counters ([`RequestKind`]): ok count plus an
//!   error-by-code breakdown over the service's closed set of wire error
//!   codes ([`ERROR_CODES`]).
//! - per-shard gauges ([`ShardGauges`]): queue depth, in-flight, parked /
//!   live / evicted / dirty sessions, and store I/O totals.
//!
//! Everything hangs off one [`Metrics`] registry, shared by `Arc` between
//! the shard workers, the session managers, and the TCP front end.
//! [`Metrics::snapshot`] copies the counters into plain-data
//! [`MetricsSnapshot`] structs cheap enough to scrape under load; the wire
//! encoding lives in `webrobot_service`, which keeps this crate free of
//! protocol concerns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Version stamp for the snapshot shape; bump on incompatible change.
pub const METRICS_VERSION: u64 = 1;

/// Number of log2 histogram buckets. Bucket `i` covers durations whose
/// nanosecond count has highest set bit `i`, i.e. `[2^i, 2^(i+1))`, except
/// bucket 0 which also absorbs 0 ns and the last bucket which is open-ended
/// (everything at or above `2^(BUCKETS-1)` ns, ~9.2 minutes).
pub const BUCKETS: usize = 40;

/// The closed set of wire error codes the service can emit, plus a trailing
/// `"other"` catch-all so an unknown code can never be dropped. Order is
/// part of the snapshot shape.
pub const ERROR_CODES: [&str; 15] = [
    "bad_request",
    "unsupported_version",
    "unknown_site",
    "unknown_session",
    "too_many_sessions",
    "invalid_prediction",
    "session_closed",
    "wrong_mode",
    "browser_error",
    "no_store",
    "store_io",
    "snapshot_corrupt",
    "overloaded",
    "shard_down",
    "other",
];

/// Index of a wire error code in [`ERROR_CODES`]; unknown codes map to the
/// trailing `"other"` slot.
pub fn error_code_index(code: &str) -> usize {
    ERROR_CODES
        .iter()
        .position(|c| *c == code)
        .unwrap_or(ERROR_CODES.len() - 1)
}

/// The request kinds the service distinguishes when counting, mirroring the
/// v1 wire protocol plus a `Malformed` bucket for frames that fail to
/// decode into any request at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// `{"kind":"create"}` — open a session.
    Create,
    /// `{"kind":"event"}` — drive a session event.
    Event,
    /// `{"kind":"outputs"}` — read a session's output log.
    Outputs,
    /// `{"kind":"stats"}` — legacy flat counter dump.
    Stats,
    /// `{"kind":"metrics"}` — versioned observability snapshot.
    Metrics,
    /// `{"kind":"close"}` — close a session.
    Close,
    /// `{"kind":"checkpoint"}` — force a durable checkpoint.
    Checkpoint,
    /// `{"kind":"recover"}` — reload sessions from the store.
    Recover,
    /// A frame that failed to decode as any v1 request.
    Malformed,
}

impl RequestKind {
    /// Every kind, in snapshot order.
    pub const ALL: [RequestKind; 9] = [
        RequestKind::Create,
        RequestKind::Event,
        RequestKind::Outputs,
        RequestKind::Stats,
        RequestKind::Metrics,
        RequestKind::Close,
        RequestKind::Checkpoint,
        RequestKind::Recover,
        RequestKind::Malformed,
    ];

    /// Stable lowercase name used on the wire and in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Create => "create",
            RequestKind::Event => "event",
            RequestKind::Outputs => "outputs",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Close => "close",
            RequestKind::Checkpoint => "checkpoint",
            RequestKind::Recover => "recover",
            RequestKind::Malformed => "malformed",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).unwrap_or(0)
    }
}

/// Returns the bucket index for a duration of `ns` nanoseconds.
fn bucket_of(ns: u64) -> usize {
    // `ns | 1` makes 0 land in bucket 0 without a branch; the last bucket
    // is open-ended so indices clamp there.
    ((63 - (ns | 1).leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Nominal inclusive upper bound (ns) of bucket `idx`. The last bucket is
/// open-ended; its nominal bound is simply the top of its first octave,
/// callers should clamp reported quantiles to the observed max.
pub fn bucket_bound(idx: usize) -> u64 {
    let shift = (idx as u32 + 1).min(63);
    (1u64 << shift) - 1
}

/// A lock-free fixed-bucket log2 latency histogram.
///
/// All counters are `Relaxed` atomics: totals are exact (every `record` is
/// counted exactly once), but a concurrent `snapshot` may observe a state
/// where `count` and the bucket totals differ transiently by in-flight
/// recordings. Quiescent snapshots are exact.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, all-zero histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one duration. Saturates at `u64::MAX` nanoseconds (~584
    /// years), far beyond any real request.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded events.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration, nanoseconds.
    pub max_ns: u64,
    /// Per-bucket counts; `buckets.len() == BUCKETS`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile estimate in nanoseconds.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// requested rank and reports that bucket's nominal upper bound,
    /// clamped to the observed maximum (so `percentile(100) <= max_ns`
    /// always holds). Relative error is bounded by the octave bucket width.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.min(100);
        // Nearest-rank: ceil(count * pct / 100), at least 1.
        let rank = self.count.saturating_mul(pct).div_ceil(100);
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*bucket);
            if seen >= rank {
                return bucket_bound(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Counters for one request kind: successes, error-by-code, and a latency
/// histogram over all responses of that kind (ok and error alike).
#[derive(Debug)]
struct KindCell {
    ok: AtomicU64,
    errors: [AtomicU64; ERROR_CODES.len()],
    latency: Histogram,
}

impl KindCell {
    fn new() -> KindCell {
        KindCell {
            ok: AtomicU64::new(0),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: Histogram::new(),
        }
    }
}

/// Per-shard point-in-time gauges, refreshed by the shard's worker thread
/// (or, for queue depth, overwritten by the front end from its own
/// in-flight accounting at scrape time).
#[derive(Debug, Default)]
pub struct ShardGauges {
    queue_depth: AtomicU64,
    parked_sessions: AtomicU64,
    live_sessions: AtomicU64,
    evicted_sessions: AtomicU64,
    dirty_sessions: AtomicU64,
    store_puts: AtomicU64,
    store_removes: AtomicU64,
    store_bytes: AtomicU64,
    store_fsyncs: AtomicU64,
    store_compactions: AtomicU64,
}

impl ShardGauges {
    /// Sets the queued + in-flight request count for the shard.
    pub fn set_queue_depth(&self, v: u64) {
        self.queue_depth.store(v, Ordering::Relaxed);
    }

    /// Sets the number of sessions parked mid-event awaiting a new quantum.
    pub fn set_parked_sessions(&self, v: u64) {
        self.parked_sessions.store(v, Ordering::Relaxed);
    }

    /// Sets the session residency gauges.
    pub fn set_sessions(&self, live: u64, evicted: u64, dirty: u64) {
        self.live_sessions.store(live, Ordering::Relaxed);
        self.evicted_sessions.store(evicted, Ordering::Relaxed);
        self.dirty_sessions.store(dirty, Ordering::Relaxed);
    }

    /// Sets the cumulative store I/O totals as observed by this shard.
    pub fn set_store_io(&self, puts: u64, removes: u64, bytes: u64, fsyncs: u64, compactions: u64) {
        self.store_puts.store(puts, Ordering::Relaxed);
        self.store_removes.store(removes, Ordering::Relaxed);
        self.store_bytes.store(bytes, Ordering::Relaxed);
        self.store_fsyncs.store(fsyncs, Ordering::Relaxed);
        self.store_compactions.store(compactions, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ShardGaugesSnapshot {
        ShardGaugesSnapshot {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            parked_sessions: self.parked_sessions.load(Ordering::Relaxed),
            live_sessions: self.live_sessions.load(Ordering::Relaxed),
            evicted_sessions: self.evicted_sessions.load(Ordering::Relaxed),
            dirty_sessions: self.dirty_sessions.load(Ordering::Relaxed),
            store_puts: self.store_puts.load(Ordering::Relaxed),
            store_removes: self.store_removes.load(Ordering::Relaxed),
            store_bytes: self.store_bytes.load(Ordering::Relaxed),
            store_fsyncs: self.store_fsyncs.load(Ordering::Relaxed),
            store_compactions: self.store_compactions.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of one shard's gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardGaugesSnapshot {
    /// Requests queued or in flight on the shard.
    pub queue_depth: u64,
    /// Sessions parked mid-event awaiting their next quantum.
    pub parked_sessions: u64,
    /// Sessions with a live in-memory `Session`.
    pub live_sessions: u64,
    /// Sessions evicted to snapshots.
    pub evicted_sessions: u64,
    /// Sessions with unsynced changes since the last checkpoint.
    pub dirty_sessions: u64,
    /// Cumulative store record writes.
    pub store_puts: u64,
    /// Cumulative store record removals.
    pub store_removes: u64,
    /// Cumulative bytes handed to the store.
    pub store_bytes: u64,
    /// Cumulative durability syncs issued by the store.
    pub store_fsyncs: u64,
    /// Cumulative segment compactions.
    pub store_compactions: u64,
}

/// The shared metrics registry: one per service (standalone manager or
/// sharded front end), shared by `Arc` with every component that records.
#[derive(Debug)]
pub struct Metrics {
    requests: [KindCell; RequestKind::ALL.len()],
    evict: Histogram,
    restore: Histogram,
    checkpoint: Histogram,
    transport: Histogram,
    quanta: AtomicU64,
    parks: AtomicU64,
    shards: Vec<ShardGauges>,
}

impl Metrics {
    /// A fresh registry with gauge slots for `shards` shards (min 1).
    pub fn new(shards: usize) -> Metrics {
        Metrics {
            requests: std::array::from_fn(|_| KindCell::new()),
            evict: Histogram::new(),
            restore: Histogram::new(),
            checkpoint: Histogram::new(),
            transport: Histogram::new(),
            quanta: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            shards: (0..shards.max(1)).map(|_| ShardGauges::default()).collect(),
        }
    }

    /// Number of shard gauge slots.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The gauge slot for shard `index` (clamped to the last slot).
    pub fn shard(&self, index: usize) -> &ShardGauges {
        &self.shards[index.min(self.shards.len() - 1)]
    }

    /// Records one completed request: its kind, the error code if the
    /// response was an error, and the observed latency.
    pub fn record_request(&self, kind: RequestKind, error_code: Option<&str>, elapsed: Duration) {
        let cell = &self.requests[kind.index()];
        match error_code {
            None => {
                cell.ok.fetch_add(1, Ordering::Relaxed);
            }
            Some(code) => {
                cell.errors[error_code_index(code)].fetch_add(1, Ordering::Relaxed);
            }
        }
        cell.latency.record(elapsed);
    }

    /// Records one session eviction (live → snapshot).
    pub fn record_evict(&self, elapsed: Duration) {
        self.evict.record(elapsed);
    }

    /// Records one session restore (snapshot → live).
    pub fn record_restore(&self, elapsed: Duration) {
        self.restore.record(elapsed);
    }

    /// Records one durable checkpoint.
    pub fn record_checkpoint(&self, elapsed: Duration) {
        self.checkpoint.record(elapsed);
    }

    /// Records one TCP read→reply span.
    pub fn record_transport(&self, elapsed: Duration) {
        self.transport.record(elapsed);
    }

    /// Counts one scheduler quantum granted to a session event.
    pub fn record_quantum(&self) {
        self.quanta.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one park (an event exhausted its quantum and yielded).
    pub fn record_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter, histogram, and gauge into a plain-data
    /// snapshot. Cost is a fixed ~600 relaxed loads — cheap enough to
    /// scrape at high frequency under load.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            version: METRICS_VERSION,
            requests: RequestKind::ALL
                .iter()
                .map(|kind| {
                    let cell = &self.requests[kind.index()];
                    RequestStats {
                        kind: kind.name(),
                        ok: cell.ok.load(Ordering::Relaxed),
                        errors: ERROR_CODES
                            .iter()
                            .zip(cell.errors.iter())
                            .map(|(code, n)| (*code, n.load(Ordering::Relaxed)))
                            .filter(|(_, n)| *n > 0)
                            .collect(),
                        latency: cell.latency.snapshot(),
                    }
                })
                .collect(),
            evict: self.evict.snapshot(),
            restore: self.restore.snapshot(),
            checkpoint: self.checkpoint.snapshot(),
            transport: self.transport.snapshot(),
            quanta: self.quanta.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            shards: self.shards.iter().map(ShardGauges::snapshot).collect(),
        }
    }
}

/// Counters for one request kind at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Stable kind name (`"create"`, `"event"`, …).
    pub kind: &'static str,
    /// Requests answered with `"status":"ok"`.
    pub ok: u64,
    /// Non-zero error counts as `(code, count)` pairs, in [`ERROR_CODES`]
    /// order.
    pub errors: Vec<(&'static str, u64)>,
    /// Latency over all responses of this kind (ok and error alike).
    pub latency: HistogramSnapshot,
}

impl RequestStats {
    /// Total error count across all codes.
    pub fn errors_total(&self) -> u64 {
        self.errors.iter().map(|(_, n)| n).sum()
    }
}

/// Plain-data copy of the whole registry at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Snapshot shape version ([`METRICS_VERSION`]).
    pub version: u64,
    /// One entry per [`RequestKind`], in [`RequestKind::ALL`] order.
    pub requests: Vec<RequestStats>,
    /// Latency of session evictions.
    pub evict: HistogramSnapshot,
    /// Latency of session restores.
    pub restore: HistogramSnapshot,
    /// Latency of durable checkpoints.
    pub checkpoint: HistogramSnapshot,
    /// Latency of TCP read→reply spans.
    pub transport: HistogramSnapshot,
    /// Scheduler quanta granted.
    pub quanta: u64,
    /// Scheduler parks (quantum exhausted mid-event).
    pub parks: u64,
    /// One gauge set per shard.
    pub shards: Vec<ShardGaugesSnapshot>,
}

impl MetricsSnapshot {
    /// The per-kind stats for `kind`, if present.
    pub fn request(&self, kind: RequestKind) -> Option<&RequestStats> {
        self.requests.iter().find(|r| r.kind == kind.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_of_is_log2_with_zero_in_bucket_zero() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_cover_their_buckets() {
        for idx in 0..BUCKETS {
            let bound = bucket_bound(idx);
            if idx + 1 < BUCKETS {
                assert!(bucket_of(bound) == idx, "bound {bound} not in bucket {idx}");
                assert!(bucket_bound(idx + 1) > bound);
            }
        }
    }

    #[test]
    fn histogram_counts_and_percentiles() {
        let h = Histogram::new();
        for ms in [1u64, 2, 3, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 5);
        assert_eq!(snap.max_ns, 100_000_000);
        assert!(snap.mean_ns() >= 1_000_000);
        // p50 falls in the 2–4 ms octaves; p100 clamps to the max.
        assert!(snap.percentile(50) < 100_000_000);
        assert_eq!(snap.percentile(100), 100_000_000);
        assert_eq!(HistogramSnapshot::default().percentile(99), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn request_counters_split_ok_and_error_by_code() {
        let m = Metrics::new(2);
        m.record_request(RequestKind::Event, None, Duration::from_micros(10));
        m.record_request(RequestKind::Event, None, Duration::from_micros(20));
        m.record_request(
            RequestKind::Event,
            Some("unknown_session"),
            Duration::from_micros(5),
        );
        m.record_request(
            RequestKind::Event,
            Some("not-a-real-code"),
            Duration::from_micros(5),
        );
        let snap = m.snapshot();
        let event = snap.request(RequestKind::Event).unwrap();
        assert_eq!(event.ok, 2);
        assert_eq!(event.errors, vec![("unknown_session", 1), ("other", 1)]);
        assert_eq!(event.errors_total(), 2);
        assert_eq!(event.latency.count, 4);
        assert_eq!(snap.request(RequestKind::Create).unwrap().ok, 0);
        assert_eq!(snap.shards.len(), 2);
    }

    #[test]
    fn gauges_round_trip_and_shard_index_clamps() {
        let m = Metrics::new(1);
        m.shard(0).set_queue_depth(7);
        m.shard(0).set_parked_sessions(2);
        m.shard(0).set_sessions(3, 4, 5);
        m.shard(0).set_store_io(10, 1, 2048, 6, 1);
        // Out-of-range shard indices clamp instead of panicking.
        m.shard(99).set_queue_depth(9);
        let snap = m.snapshot();
        assert_eq!(
            snap.shards[0],
            ShardGaugesSnapshot {
                queue_depth: 9,
                parked_sessions: 2,
                live_sessions: 3,
                evicted_sessions: 4,
                dirty_sessions: 5,
                store_puts: 10,
                store_removes: 1,
                store_bytes: 2048,
                store_fsyncs: 6,
                store_compactions: 1,
            }
        );
    }

    #[test]
    fn scheduler_counters_accumulate() {
        let m = Metrics::new(1);
        m.record_quantum();
        m.record_quantum();
        m.record_park();
        let snap = m.snapshot();
        assert_eq!(snap.quanta, 2);
        assert_eq!(snap.parks, 1);
    }
}
