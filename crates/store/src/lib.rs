//! Persistent snapshot stores: the durability substrate sessions are
//! spilled to.
//!
//! A [`SnapshotStore`] is a tiny keyed record store over the wire JSON
//! subset ([`webrobot_data::Value`]): the `webrobot_service` crate spills
//! serialized session snapshots into it on eviction, flushes live
//! sessions on `checkpoint`, and a manager opened over a non-empty store
//! adopts whatever the store already holds — that is how a whole manager
//! survives a process restart (see `PROTOCOL.md` § Durability and
//! `tests/persistence.rs`).
//!
//! Three implementations ship:
//!
//! - [`MemoryStore`] — an in-process map, for tests and for deployments
//!   that want checkpoint semantics without a filesystem;
//! - [`FileStore`] — one JSON file per record in a directory, written
//!   atomically (write-temp-then-rename); the compat backend;
//! - [`SegmentStore`] — the log-structured store: an append-only segment
//!   log with length+checksum framing, **group commit** (batched fsync),
//!   a manifest of live segments, and compaction of mostly-dead segments.
//!   Opening a `FileStore` directory migrates it in place.
//!
//! All layouts are **shard-count-stable**: records are keyed by session
//! id only, so the same directory serves a `SessionManager` or a
//! `ShardedManager` at any shard count, each shard adopting exactly the
//! ids it owns.
//!
//! Every failure mode is a typed [`StoreError`] — tampered or truncated
//! records surface as `snapshot_corrupt` wire errors, never panics.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;

use webrobot_data::{parse_json, Value};

mod segment;

pub use segment::{SegmentConfig, SegmentHandle, SegmentStore};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying medium failed (I/O error, invalid key, unwritable
    /// directory).
    Io {
        /// Human-readable detail.
        detail: String,
    },
    /// A record exists but cannot be decoded (truncated file, tampered
    /// JSON, wrong shape or version).
    Corrupt {
        /// The record's key.
        key: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl StoreError {
    /// Builds an [`StoreError::Io`] from a detail message.
    pub fn io(detail: impl Into<String>) -> StoreError {
        StoreError::Io {
            detail: detail.into(),
        }
    }

    /// Builds a [`StoreError::Corrupt`] for `key` from a detail message.
    pub fn corrupt(key: impl Into<String>, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            key: key.into(),
            detail: detail.into(),
        }
    }

    /// Stable machine-readable error code (the wire protocol's
    /// `error.code` field): `store_io` or `snapshot_corrupt`.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "store_io",
            StoreError::Corrupt { .. } => "snapshot_corrupt",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { detail } => write!(f, "snapshot store i/o failure: {detail}"),
            StoreError::Corrupt { key, detail } => {
                write!(f, "store record '{key}' is corrupt: {detail}")
            }
        }
    }
}

impl Error for StoreError {}

/// Cumulative I/O totals a [`SnapshotStore`] has performed since it was
/// opened. Scraped by the service's observability layer into per-shard
/// gauges; stores that do not track I/O report the all-zero default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Successful `put` calls.
    pub puts: u64,
    /// Successful `remove` calls.
    pub removes: u64,
    /// Serialized record bytes handed to the medium by `put` (and, for a
    /// log-structured store, tombstones and rewrites).
    pub bytes_written: u64,
    /// Durability syncs issued (`fsync`/`fdatasync`); 0 for stores whose
    /// writes are synchronous or in-memory.
    pub fsyncs: u64,
    /// Segment compactions completed; 0 for non-log stores.
    pub compactions: u64,
}

/// A keyed, durable record store for serialized session snapshots and
/// manager metadata.
///
/// Keys are short identifiers (`s-<n>` for sessions, `shard-<k>-of-<n>`
/// for manager metadata); values are records in the wire JSON subset.
/// Implementations must be `Send + Sync` (a store rides inside its
/// manager, which moves onto — and is shared behind — shard worker
/// threads; mutation goes through `&mut self`, so `Sync` costs an
/// implementation nothing) and total: every failure is a [`StoreError`],
/// never a panic.
pub trait SnapshotStore: fmt::Debug + Send + Sync {
    /// Writes (or replaces) one record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium rejects the write or the key is
    /// not a valid store key.
    fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError>;

    /// Reads one record; `Ok(None)` when the key is absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the record exists but does not parse;
    /// [`StoreError::Io`] when the medium fails.
    fn get(&self, key: &str) -> Result<Option<Value>, StoreError>;

    /// Deletes one record. Deleting an absent key succeeds.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium rejects the delete.
    fn remove(&mut self, key: &str) -> Result<(), StoreError>;

    /// Every key currently in the store, sorted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium cannot be enumerated.
    fn keys(&self) -> Result<Vec<String>, StoreError>;

    /// Makes every write accepted so far durable.
    ///
    /// Stores whose `put` is already durable ([`MemoryStore`],
    /// [`FileStore`]) use this default no-op; a group-committing store
    /// ([`SegmentStore`]) forces its pending batch to disk. The manager
    /// calls this at the end of every `checkpoint`, so "checkpoint
    /// replied ok" always means "on disk".
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium rejects the sync.
    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Cumulative I/O totals since the store was opened.
    ///
    /// The default reports all zeros, so minimal test doubles need not
    /// track anything; the shipped stores override it.
    fn io_stats(&self) -> StoreIoStats {
        StoreIoStats::default()
    }
}

/// Store keys are embedded in file names, so restrict them to a safe
/// alphabet (no separators, no leading dot — rules out path traversal and
/// hidden files by construction).
fn check_key(key: &str) -> Result<(), StoreError> {
    let valid = !key.is_empty()
        && !key.starts_with('.')
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    if valid {
        Ok(())
    } else {
        Err(StoreError::io(format!("invalid store key '{key}'")))
    }
}

/// An in-process [`SnapshotStore`]: records live in a map for the life of
/// the process.
///
/// Records are kept in their serialized form (exactly what a
/// [`FileStore`] would write to disk), so the two implementations share
/// byte-level behavior — including the ability to hold a corrupt record,
/// which [`MemoryStore::insert_raw`] exists to inject for tests.
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: BTreeMap<String, String>,
    io: StoreIoStats,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// How many records the store holds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts a raw serialized record verbatim — the moral equivalent of
    /// editing a [`FileStore`] file by hand. Exists so tests can prove
    /// that tampered records surface as typed [`StoreError::Corrupt`]
    /// failures rather than panics.
    pub fn insert_raw(&mut self, key: impl Into<String>, raw: impl Into<String>) {
        self.records.insert(key.into(), raw.into());
    }
}

impl SnapshotStore for MemoryStore {
    fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError> {
        check_key(key)?;
        let raw = record.to_json();
        self.io.puts += 1;
        self.io.bytes_written += raw.len() as u64;
        self.records.insert(key.to_string(), raw);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
        match self.records.get(key) {
            None => Ok(None),
            Some(raw) => parse_json(raw)
                .map(Some)
                .map_err(|e| StoreError::corrupt(key, format!("invalid record json: {e}"))),
        }
    }

    fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        self.records.remove(key);
        self.io.removes += 1;
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.records.keys().cloned().collect())
    }

    fn io_stats(&self) -> StoreIoStats {
        self.io
    }
}

/// A directory-backed [`SnapshotStore`]: one `<key>.json` file per
/// record.
///
/// Writes go to a `.tmp` sibling first and are renamed into place, so a
/// crash mid-write leaves the previous record intact instead of a
/// truncated one. The layout carries no shard topology: reopening the
/// same directory with a different shard count redistributes sessions by
/// id alone (see the module docs).
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    io: StoreIoStats,
}

impl FileStore {
    /// Opens (creating if necessary) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create '{}': {e}", dir.display())))?;
        // Sweep temp files orphaned by a crash between write and rename,
        // so a crash-looping process cannot grow the directory
        // unboundedly. Only *stale* temp files are touched: an in-flight
        // `put` by another process sharing the directory (the `recover`
        // hand-off scenario) holds its temp for milliseconds, so an
        // age gate keeps the sweep from racing a live writer's rename.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                // Temp names end ".json.tmp<pid>"; a *record* for a key
                // that merely contains that substring (keys may contain
                // dots) still ends ".json" and must never be swept.
                let is_tmp = entry
                    .file_name()
                    .to_str()
                    .is_some_and(|name| name.contains(".json.tmp") && !name.ends_with(".json"));
                let stale = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age.as_secs() >= 60);
                if is_tmp && stale {
                    fs::remove_file(entry.path()).ok();
                }
            }
        }
        Ok(FileStore {
            dir,
            io: StoreIoStats::default(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_of(&self, key: &str) -> Result<PathBuf, StoreError> {
        check_key(key)?;
        Ok(self.dir.join(format!("{key}.json")))
    }
}

impl SnapshotStore for FileStore {
    fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError> {
        let path = self.path_of(key)?;
        // Per-process temp name: two processes sharing a directory (the
        // `recover` hand-off scenario) must not interleave writes into
        // one temp file and rename mixed content into place.
        let tmp = self
            .dir
            .join(format!("{key}.json.tmp{}", std::process::id()));
        let raw = record.to_json();
        fs::write(&tmp, &raw)
            .map_err(|e| StoreError::io(format!("write '{}': {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| StoreError::io(format!("rename into '{}': {e}", path.display())))?;
        self.io.puts += 1;
        self.io.bytes_written += raw.len() as u64;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
        let path = self.path_of(key)?;
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(format!("read '{}': {e}", path.display()))),
        };
        parse_json(&raw)
            .map(Some)
            .map_err(|e| StoreError::corrupt(key, format!("invalid record json: {e}")))
    }

    fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        let path = self.path_of(key)?;
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io(format!("remove '{}': {e}", path.display()))),
        }
        self.io.removes += 1;
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| StoreError::io(format!("list '{}': {e}", self.dir.display())))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::io(format!("list '{}': {e}", self.dir.display())))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = name.strip_suffix(".json") {
                if check_key(key).is_ok() {
                    keys.push(key.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn io_stats(&self) -> StoreIoStats {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: i64) -> Value {
        Value::object([("n".to_string(), Value::Int(n))])
    }

    fn exercise(store: &mut dyn SnapshotStore) {
        assert_eq!(store.get("s-1").unwrap(), None);
        store.put("s-1", &record(1)).unwrap();
        store.put("s-2", &record(2)).unwrap();
        store.put("shard-1-of-1", &record(0)).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(1)));
        assert_eq!(
            store.keys().unwrap(),
            vec!["s-1", "s-2", "shard-1-of-1"],
            "sorted keys"
        );
        // Overwrite, then delete (idempotently).
        store.put("s-1", &record(7)).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(7)));
        store.remove("s-1").unwrap();
        store.remove("s-1").unwrap();
        assert_eq!(store.get("s-1").unwrap(), None);
        // Hostile keys are typed errors, not path escapes.
        for bad in ["", "..", "a/b", "a\\b", ".hidden", "s 1"] {
            assert!(matches!(
                store.put(bad, &record(0)),
                Err(StoreError::Io { .. })
            ));
        }
        store.flush().unwrap();
        let io = store.io_stats();
        assert_eq!(io.puts, 4, "three keys plus one overwrite");
        assert_eq!(io.removes, 2, "idempotent remove still counts the call");
        assert!(io.bytes_written > 0);
    }

    #[test]
    fn memory_store_round_trips() {
        let mut store = MemoryStore::new();
        exercise(&mut store);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn file_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("webrobot-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = FileStore::open(&dir).unwrap();
        exercise(&mut store);
        // A second handle on the same directory sees the same records —
        // the reopen path a process restart takes.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.get("s-2").unwrap(), Some(record(2)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("webrobot-store-seg-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = SegmentStore::open(&dir).unwrap();
        exercise(&mut store);
        // A reopen from the log sees exactly the flushed records.
        drop(store);
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.get("s-2").unwrap(), Some(record(2)));
        assert_eq!(reopened.keys().unwrap(), vec!["s-2", "shard-1-of-1"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_orphaned_temp_files_only() {
        let dir = std::env::temp_dir().join(format!("webrobot-store-tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = FileStore::open(&dir).unwrap();
            store.put("s-1", &record(1)).unwrap();
        }
        // A crash between write and rename left this temp file behind
        // hours ago…
        let orphan = dir.join("s-2.json.tmp4242");
        fs::write(&orphan, "partial").unwrap();
        fs::File::options()
            .write(true)
            .open(&orphan)
            .unwrap()
            .set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(7200))
            .unwrap();
        // …while this one belongs to another process's put in flight
        // right now.
        let in_flight = dir.join("s-3.json.tmp7777");
        fs::write(&in_flight, "mid-write").unwrap();

        let store = FileStore::open(&dir).unwrap();
        assert!(!orphan.exists(), "stale orphan swept on open");
        assert!(in_flight.exists(), "fresh temp (live writer) untouched");
        assert_eq!(store.get("s-1").unwrap(), Some(record(1)), "records kept");
        assert_eq!(store.keys().unwrap(), vec!["s-1"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_typed_errors() {
        let mut store = MemoryStore::new();
        store.insert_raw("s-1", "{\"truncated\":");
        let err = store.get("s-1").unwrap_err();
        assert_eq!(err.code(), "snapshot_corrupt");
        assert!(err.to_string().contains("s-1"));

        let dir = std::env::temp_dir().join(format!("webrobot-store-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        fs::write(dir.join("s-9.json"), "not json at all").unwrap();
        assert_eq!(store.get("s-9").unwrap_err().code(), "snapshot_corrupt");
        let _ = fs::remove_dir_all(&dir);
    }
}
