//! The log-structured [`SegmentStore`]: an append-only segment log with
//! group commit, a manifest of live segments, and compaction.
//!
//! # Layout
//!
//! A store directory holds:
//!
//! - `manifest.json` — `{"v": 1, "kind": "manifest", "segments": [ids]}`,
//!   the authoritative, atomically-swapped (write-temp-then-rename) list
//!   of live segments, ascending; the last id is the **active** segment;
//! - `seg-<id>.log` — binary frames, appended in write order:
//!
//! ```text
//! PUT    'P' | key len u32 | value len u32 | key | value | crc32
//! DEL    'D' | key len u32 | key | crc32
//! COMMIT 'C' | sequence u64 | crc32
//! ```
//!
//! each crc32 (IEEE) covering every preceding byte of its frame.
//!
//! # Group commit
//!
//! `put`/`remove` append frames immediately (so reads see them) but
//! defer the fsync: once the pending batch crosses the configured op or
//! byte threshold — or the commit interval elapses — one `COMMIT` frame
//! is appended and the segment is synced. [`SnapshotStore::flush`]
//! forces the commit, which is what `checkpoint` calls. **Recovery lands
//! exactly at the last commit**: on open, frames after the final valid
//! `COMMIT` are discarded and the file is truncated back to it. A torn
//! tail is therefore normal shutdown debris; an invalid frame *followed
//! by* a valid `COMMIT` can only mean corruption of committed data and
//! is a typed [`StoreError::Corrupt`], never a panic.
//!
//! # Compaction
//!
//! Overwrites and deletes leave dead frames behind. Sealed segments
//! whose live-record ratio falls below the configured threshold are
//! rewritten: live records are re-appended to the active segment,
//! committed, and only then is the manifest swapped without the victim
//! and its file deleted — so a crash at any point leaves either the old
//! manifest (duplicate records, newest wins on replay) or the new one
//! (orphan file, swept on open).
//!
//! # Migration
//!
//! Opening a directory in the [`FileStore`](crate::FileStore)
//! one-file-per-record layout (no manifest present) imports every
//! `<key>.json` record into the log, commits, writes the manifest and
//! removes the imported files — deployments upgrade in place. The layout
//! stays shard-count-stable because keys, not shards, are the unit of
//! storage; concurrent shard workers share one log through cloned
//! [`SegmentHandle`]s. A segment directory has a **single writing
//! process**: the multi-process hand-off that `FileStore` tolerates is
//! not supported here.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use webrobot_data::{parse_json, Value};

use crate::{check_key, SnapshotStore, StoreError, StoreIoStats};

const TAG_PUT: u8 = b'P';
const TAG_DEL: u8 = b'D';
const TAG_COMMIT: u8 = b'C';
/// Plausibility cap on a key during recovery scans (keys are short ids).
const MAX_KEY: usize = 4096;
/// Plausibility cap on a record payload (matches the wire frame cap).
const MAX_RECORD: usize = 16 * 1024 * 1024;
/// A commit frame is tag + sequence + crc.
const COMMIT_FRAME: usize = 1 + 8 + 4;
const MANIFEST: &str = "manifest.json";

/// CRC-32 (IEEE 802.3, reflected) — bitwise, dependency-free; record
/// payloads are kilobytes, so table-free is fast enough.
fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn be64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id}.log"))
}

/// Tuning knobs for a [`SegmentStore`]. The defaults suit the session
/// workload (kilobyte records, bursty checkpoints); benches sweep them.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Commit once this many operations are pending.
    pub commit_ops: usize,
    /// Commit once this many bytes are pending.
    pub commit_bytes: u64,
    /// Commit when the oldest pending operation is this old (checked on
    /// each write — the store has no background thread).
    pub commit_interval: Duration,
    /// Seal the active segment and start a new one beyond this size.
    pub max_segment_bytes: u64,
    /// Compact a sealed segment when live records fall to this
    /// percentage of its total records or below.
    pub compact_live_percent: u32,
    /// Never compact segments with fewer records than this.
    pub compact_min_records: u64,
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            commit_ops: 8,
            commit_bytes: 256 * 1024,
            commit_interval: Duration::from_millis(25),
            max_segment_bytes: 4 * 1024 * 1024,
            compact_live_percent: 50,
            compact_min_records: 16,
        }
    }
}

/// Where a live record's value bytes sit.
#[derive(Debug, Clone, Copy)]
struct Location {
    seg: u64,
    offset: u64,
    len: u32,
}

/// Per-segment accounting for compaction decisions.
#[derive(Debug, Default)]
struct SegmentInfo {
    /// PUT frames ever written to the segment (committed ones on reopen).
    records: u64,
    /// Index entries currently pointing into the segment.
    live: u64,
}

/// One committed operation recovered from a segment scan.
enum ScanOp {
    Put { key: String, offset: u64, len: u32 },
    Del { key: String },
}

/// What a segment scan found: operations covered by a commit, in order.
struct Scan {
    ops: Vec<ScanOp>,
    committed_len: u64,
    records: u64,
    last_seq: u64,
}

enum Frame {
    Put { key: String, offset: u64, len: u32 },
    Del { key: String },
    Commit { seq: u64 },
}

/// Parses the frame at `pos`; `Err(())` for anything that is not a
/// complete, checksummed, plausible frame.
fn parse_frame(buf: &[u8], pos: usize) -> Result<(Frame, usize), ()> {
    let rem = &buf[pos..];
    let check = |total: usize| -> Result<(), ()> {
        if rem.len() < total || crc32(&rem[..total - 4]) != be32(&rem[total - 4..total]) {
            Err(())
        } else {
            Ok(())
        }
    };
    let key_at = |at: usize, klen: usize| -> Result<String, ()> {
        let key = std::str::from_utf8(&rem[at..at + klen]).map_err(|_| ())?;
        check_key(key).map_err(|_| ())?;
        Ok(key.to_string())
    };
    match rem.first() {
        Some(&TAG_PUT) => {
            if rem.len() < 9 {
                return Err(());
            }
            let klen = be32(&rem[1..5]) as usize;
            let vlen = be32(&rem[5..9]) as usize;
            if klen == 0 || klen > MAX_KEY || vlen > MAX_RECORD {
                return Err(());
            }
            let total = 9 + klen + vlen + 4;
            check(total)?;
            Ok((
                Frame::Put {
                    key: key_at(9, klen)?,
                    offset: (pos + 9 + klen) as u64,
                    len: vlen as u32,
                },
                pos + total,
            ))
        }
        Some(&TAG_DEL) => {
            if rem.len() < 5 {
                return Err(());
            }
            let klen = be32(&rem[1..5]) as usize;
            if klen == 0 || klen > MAX_KEY {
                return Err(());
            }
            let total = 5 + klen + 4;
            check(total)?;
            Ok((
                Frame::Del {
                    key: key_at(5, klen)?,
                },
                pos + total,
            ))
        }
        Some(&TAG_COMMIT) => {
            check(COMMIT_FRAME)?;
            Ok((
                Frame::Commit {
                    seq: be64(&rem[1..9]),
                },
                pos + COMMIT_FRAME,
            ))
        }
        _ => Err(()),
    }
}

/// `true` when a valid commit frame exists anywhere at or after `from` —
/// which means a fault at `from` sits in *committed* territory.
fn later_commit_exists(buf: &[u8], from: usize) -> bool {
    (from..buf.len().saturating_sub(COMMIT_FRAME - 1)).any(|q| {
        buf[q] == TAG_COMMIT
            && crc32(&buf[q..q + COMMIT_FRAME - 4])
                == be32(&buf[q + COMMIT_FRAME - 4..q + COMMIT_FRAME])
    })
}

/// Scans one segment, applying the group-commit recovery contract: only
/// frames covered by a valid `COMMIT` count; a fault in the uncommitted
/// tail of the active segment truncates, a fault anywhere else is typed
/// corruption.
fn scan_segment(buf: &[u8], name: &str, sealed: bool) -> Result<Scan, StoreError> {
    let mut pos = 0usize;
    let mut pending: Vec<ScanOp> = Vec::new();
    let mut pending_records = 0u64;
    let mut scan = Scan {
        ops: Vec::new(),
        committed_len: 0,
        records: 0,
        last_seq: 0,
    };
    while pos < buf.len() {
        match parse_frame(buf, pos) {
            Ok((Frame::Put { key, offset, len }, next)) => {
                pending.push(ScanOp::Put { key, offset, len });
                pending_records += 1;
                pos = next;
            }
            Ok((Frame::Del { key }, next)) => {
                pending.push(ScanOp::Del { key });
                pos = next;
            }
            Ok((Frame::Commit { seq }, next)) => {
                scan.ops.append(&mut pending);
                scan.records += pending_records;
                pending_records = 0;
                scan.last_seq = seq;
                scan.committed_len = next as u64;
                pos = next;
            }
            Err(()) => {
                if sealed {
                    return Err(StoreError::corrupt(
                        name,
                        format!("invalid frame at byte {pos} of a sealed segment"),
                    ));
                }
                if later_commit_exists(buf, pos) {
                    return Err(StoreError::corrupt(
                        name,
                        format!("invalid frame at byte {pos} before a later group commit"),
                    ));
                }
                // A torn, uncommitted tail: normal hard-kill debris.
                return Ok(scan);
            }
        }
    }
    if sealed && !pending.is_empty() {
        return Err(StoreError::corrupt(
            name,
            "sealed segment ends with uncommitted frames",
        ));
    }
    Ok(scan)
}

fn put_frame(key: &str, value: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(9 + key.len() + value.len() + 4);
    frame.push(TAG_PUT);
    frame.extend_from_slice(&(key.len() as u32).to_be_bytes());
    frame.extend_from_slice(&(value.len() as u32).to_be_bytes());
    frame.extend_from_slice(key.as_bytes());
    frame.extend_from_slice(value);
    frame.extend_from_slice(&crc32(&frame).to_be_bytes());
    frame
}

fn del_frame(key: &str) -> Vec<u8> {
    let mut frame = Vec::with_capacity(5 + key.len() + 4);
    frame.push(TAG_DEL);
    frame.extend_from_slice(&(key.len() as u32).to_be_bytes());
    frame.extend_from_slice(key.as_bytes());
    frame.extend_from_slice(&crc32(&frame).to_be_bytes());
    frame
}

fn commit_frame(seq: u64) -> Vec<u8> {
    let mut frame = Vec::with_capacity(COMMIT_FRAME);
    frame.push(TAG_COMMIT);
    frame.extend_from_slice(&seq.to_be_bytes());
    frame.extend_from_slice(&crc32(&frame).to_be_bytes());
    frame
}

fn read_manifest(dir: &Path) -> Result<Option<Vec<u64>>, StoreError> {
    let path = dir.join(MANIFEST);
    let raw = match fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(format!("read '{}': {e}", path.display()))),
    };
    let corrupt = |detail: String| StoreError::corrupt("manifest", detail);
    let value = parse_json(&raw).map_err(|e| corrupt(format!("invalid manifest json: {e}")))?;
    if value.field("v").and_then(Value::as_int) != Some(1) {
        return Err(corrupt("unsupported manifest version".to_string()));
    }
    if value.field("kind").and_then(Value::as_str) != Some("manifest") {
        return Err(corrupt("wrong record kind".to_string()));
    }
    let segments = value
        .field("segments")
        .and_then(Value::as_array)
        .ok_or_else(|| corrupt("field 'segments' must be an array".to_string()))?;
    let mut ids = Vec::with_capacity(segments.len());
    for entry in segments {
        let id = entry
            .as_int()
            .filter(|&id| id >= 1)
            .ok_or_else(|| corrupt("segment ids must be positive integers".to_string()))?;
        ids.push(id as u64);
    }
    if ids.is_empty() || ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(corrupt(
            "segment ids must be non-empty and strictly ascending".to_string(),
        ));
    }
    Ok(Some(ids))
}

fn write_manifest(dir: &Path, ids: &[u64]) -> Result<(), StoreError> {
    let value = Value::Object(vec![
        ("v".to_string(), Value::Int(1)),
        ("kind".to_string(), Value::str("manifest")),
        (
            "segments".to_string(),
            Value::Array(ids.iter().map(|&id| Value::Int(id as i64)).collect()),
        ),
    ]);
    let tmp = dir.join(format!("{MANIFEST}.tmp{}", std::process::id()));
    let path = dir.join(MANIFEST);
    let fail = |stage: &str, e: std::io::Error| StoreError::io(format!("{stage} manifest: {e}"));
    let mut file = File::create(&tmp).map_err(|e| fail("create", e))?;
    file.write_all(value.to_json().as_bytes())
        .map_err(|e| fail("write", e))?;
    file.sync_data().map_err(|e| fail("sync", e))?;
    drop(file);
    fs::rename(&tmp, &path).map_err(|e| fail("swap", e))
}

/// Reads (and validates) every `<key>.json` record of a legacy
/// [`FileStore`](crate::FileStore) directory, sorted by key.
fn legacy_records(dir: &Path) -> Result<Vec<(String, String)>, StoreError> {
    let entries =
        fs::read_dir(dir).map_err(|e| StoreError::io(format!("list '{}': {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(format!("list '{}': {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(key) = name.strip_suffix(".json") else {
            continue;
        };
        if check_key(key).is_err() {
            continue;
        }
        let raw = fs::read_to_string(entry.path())
            .map_err(|e| StoreError::io(format!("read '{name}': {e}")))?;
        let value = parse_json(&raw).map_err(|e| {
            StoreError::corrupt(key, format!("invalid record json during migration: {e}"))
        })?;
        out.push((key.to_string(), value.to_json()));
    }
    out.sort();
    Ok(out)
}

/// The log-structured [`SnapshotStore`]: see the module-level source
/// docs (`segment.rs`) and `ARCHITECTURE.md` for the layout,
/// group-commit and compaction contracts.
///
/// `put`/`remove` are visible immediately but durable only at the next
/// group commit ([`SnapshotStore::flush`], a crossed batch threshold, or
/// drop). Share one log between shard workers with
/// [`SegmentStore::into_shared`].
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    cfg: SegmentConfig,
    index: BTreeMap<String, Location>,
    segments: BTreeMap<u64, SegmentInfo>,
    active: u64,
    writer: File,
    active_len: u64,
    commit_seq: u64,
    pending_ops: usize,
    pending_bytes: u64,
    last_commit: Instant,
    io: StoreIoStats,
}

impl SegmentStore {
    /// Opens (creating or migrating if necessary) the store rooted at
    /// `dir` with default tuning.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or log cannot be accessed;
    /// [`StoreError::Corrupt`] when the manifest or a committed frame
    /// fails validation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore, StoreError> {
        SegmentStore::with_config(SegmentConfig::default(), dir)
    }

    /// [`SegmentStore::open`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// As [`SegmentStore::open`].
    pub fn with_config(
        cfg: SegmentConfig,
        dir: impl Into<PathBuf>,
    ) -> Result<SegmentStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create '{}': {e}", dir.display())))?;
        match read_manifest(&dir)? {
            None => SegmentStore::create(cfg, dir),
            Some(ids) => SegmentStore::recover(cfg, dir, &ids),
        }
    }

    /// Fresh directory (or legacy `FileStore` layout): import, commit,
    /// then publish the manifest — a crash before the manifest lands
    /// leaves the legacy files untouched and the import restarts.
    fn create(cfg: SegmentConfig, dir: PathBuf) -> Result<SegmentStore, StoreError> {
        let legacy = legacy_records(&dir)?;
        let path = seg_path(&dir, 1);
        let writer = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StoreError::io(format!("create '{}': {e}", path.display())))?;
        let mut store = SegmentStore {
            dir,
            cfg,
            index: BTreeMap::new(),
            segments: BTreeMap::from([(1, SegmentInfo::default())]),
            active: 1,
            writer,
            active_len: 0,
            commit_seq: 0,
            pending_ops: 0,
            pending_bytes: 0,
            last_commit: Instant::now(),
            io: StoreIoStats::default(),
        };
        for (key, raw) in &legacy {
            store.append_put(key, raw)?;
        }
        store.commit()?;
        store
            .writer
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync seg-1: {e}")))?;
        store.io.fsyncs += 1;
        write_manifest(&store.dir, &[1])?;
        for (key, _) in &legacy {
            fs::remove_file(store.dir.join(format!("{key}.json"))).ok();
        }
        Ok(store)
    }

    /// Existing manifest: replay every segment, truncate the active
    /// segment's uncommitted tail, sweep debris.
    fn recover(cfg: SegmentConfig, dir: PathBuf, ids: &[u64]) -> Result<SegmentStore, StoreError> {
        let active = *ids.last().expect("manifest ids are non-empty");
        let mut index = BTreeMap::new();
        let mut segments = BTreeMap::new();
        let mut commit_seq = 0u64;
        let mut committed_len = 0u64;
        for &id in ids {
            let path = seg_path(&dir, id);
            let buf = match fs::read(&path) {
                Ok(buf) => buf,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(StoreError::corrupt(
                        "manifest",
                        format!("manifest references missing segment seg-{id}"),
                    ));
                }
                Err(e) => {
                    return Err(StoreError::io(format!("read '{}': {e}", path.display())));
                }
            };
            let scan = scan_segment(&buf, &format!("seg-{id}"), id != active)?;
            commit_seq = commit_seq.max(scan.last_seq);
            for op in scan.ops {
                match op {
                    ScanOp::Put { key, offset, len } => {
                        index.insert(
                            key,
                            Location {
                                seg: id,
                                offset,
                                len,
                            },
                        );
                    }
                    ScanOp::Del { key } => {
                        index.remove(&key);
                    }
                }
            }
            segments.insert(
                id,
                SegmentInfo {
                    records: scan.records,
                    live: 0,
                },
            );
            if id == active {
                committed_len = scan.committed_len;
            }
        }
        for loc in index.values() {
            if let Some(info) = segments.get_mut(&loc.seg) {
                info.live += 1;
            }
        }
        // Truncate the active segment's uncommitted tail and position the
        // writer at the last group commit.
        let path = seg_path(&dir, active);
        let mut writer = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io(format!("open '{}': {e}", path.display())))?;
        writer
            .set_len(committed_len)
            .and_then(|()| writer.seek(SeekFrom::Start(committed_len)))
            .map_err(|e| StoreError::io(format!("truncate '{}': {e}", path.display())))?;
        // Sweep debris: segments dropped from the manifest by an
        // interrupted compaction, manifest temp files, and record files
        // left behind by an interrupted (already-committed) migration.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let orphan_seg = name
                    .strip_prefix("seg-")
                    .and_then(|rest| rest.strip_suffix(".log"))
                    .and_then(|id| id.parse::<u64>().ok())
                    .is_some_and(|id| !ids.contains(&id));
                let stale_tmp = name.starts_with("manifest.json.tmp");
                let leftover_record = name != MANIFEST
                    && name
                        .strip_suffix(".json")
                        .is_some_and(|key| check_key(key).is_ok());
                if orphan_seg || stale_tmp || leftover_record {
                    fs::remove_file(entry.path()).ok();
                }
            }
        }
        Ok(SegmentStore {
            dir,
            cfg,
            index,
            segments,
            active,
            writer,
            active_len: committed_len,
            commit_seq,
            pending_ops: 0,
            pending_bytes: 0,
            last_commit: Instant::now(),
            io: StoreIoStats::default(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The ids of the segments currently in the manifest (ascending; the
    /// last is active). Exposed for compaction tests and tooling.
    pub fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }

    /// Wraps the store for sharing: cloned handles serialize through one
    /// mutex, which is how shard workers of one deployment share a
    /// single log directory.
    pub fn into_shared(self) -> SegmentHandle {
        SegmentHandle {
            inner: Arc::new(Mutex::new(self)),
        }
    }

    fn append_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        self.writer
            .write_all(frame)
            .map_err(|e| StoreError::io(format!("append to seg-{}: {e}", self.active)))?;
        self.active_len += frame.len() as u64;
        self.pending_ops += 1;
        self.pending_bytes += frame.len() as u64;
        self.io.bytes_written += frame.len() as u64;
        Ok(())
    }

    fn append_put(&mut self, key: &str, raw: &str) -> Result<(), StoreError> {
        let offset = self.active_len + 9 + key.len() as u64;
        self.append_frame(&put_frame(key, raw.as_bytes()))?;
        let location = Location {
            seg: self.active,
            offset,
            len: raw.len() as u32,
        };
        if let Some(old) = self.index.insert(key.to_string(), location) {
            if let Some(info) = self.segments.get_mut(&old.seg) {
                info.live -= 1;
            }
        }
        if let Some(info) = self.segments.get_mut(&self.active) {
            info.live += 1;
            info.records += 1;
        }
        Ok(())
    }

    /// Writes the `COMMIT` frame and syncs — the group-commit barrier.
    fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending_ops == 0 {
            return Ok(());
        }
        self.commit_seq += 1;
        let frame = commit_frame(self.commit_seq);
        self.writer
            .write_all(&frame)
            .map_err(|e| StoreError::io(format!("commit to seg-{}: {e}", self.active)))?;
        self.active_len += frame.len() as u64;
        self.writer
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync seg-{}: {e}", self.active)))?;
        self.io.bytes_written += frame.len() as u64;
        self.io.fsyncs += 1;
        self.pending_ops = 0;
        self.pending_bytes = 0;
        self.last_commit = Instant::now();
        Ok(())
    }

    /// Commits when the pending batch crosses a group-commit threshold,
    /// then performs any due maintenance. Called after every write.
    fn after_write(&mut self) -> Result<(), StoreError> {
        if self.pending_ops >= self.cfg.commit_ops
            || self.pending_bytes >= self.cfg.commit_bytes
            || self.last_commit.elapsed() >= self.cfg.commit_interval
        {
            self.commit()?;
            self.maintain()?;
        }
        Ok(())
    }

    /// Rolls an oversized active segment and compacts at most one
    /// mostly-dead sealed segment. Only valid with nothing pending.
    fn maintain(&mut self) -> Result<(), StoreError> {
        if self.active_len >= self.cfg.max_segment_bytes {
            self.roll()?;
        }
        self.compact_one()
    }

    /// Seals the active segment (it already ends on a commit) and starts
    /// the next one: create the file first, then publish it in the
    /// manifest — a crash in between leaves an orphan that open sweeps.
    fn roll(&mut self) -> Result<(), StoreError> {
        let next = self.active + 1;
        let path = seg_path(&self.dir, next);
        let writer = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StoreError::io(format!("create '{}': {e}", path.display())))?;
        writer
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync '{}': {e}", path.display())))?;
        let mut ids: Vec<u64> = self.segments.keys().copied().collect();
        ids.push(next);
        write_manifest(&self.dir, &ids)?;
        self.segments.insert(next, SegmentInfo::default());
        self.active = next;
        self.writer = writer;
        self.active_len = 0;
        Ok(())
    }

    /// Compacts one sealed segment below the liveness threshold, if any:
    /// re-append its live records, commit, then swap the manifest and
    /// delete the file (in that order — see the module docs for the
    /// crash-window argument).
    fn compact_one(&mut self) -> Result<(), StoreError> {
        let victim = self
            .segments
            .iter()
            .filter(|&(&id, _)| id != self.active)
            .find(|&(_, info)| {
                info.records >= self.cfg.compact_min_records
                    && info.live * 100 <= u64::from(self.cfg.compact_live_percent) * info.records
            })
            .map(|(&id, _)| id);
        let Some(victim) = victim else {
            return Ok(());
        };
        let keys: Vec<String> = self
            .index
            .iter()
            .filter(|&(_, loc)| loc.seg == victim)
            .map(|(key, _)| key.clone())
            .collect();
        for key in keys {
            let raw = self
                .read_raw(&key)?
                .ok_or_else(|| StoreError::corrupt(&*key, "index points at a vanished record"))?;
            self.append_put(&key, &raw)?;
        }
        self.commit()?;
        let ids: Vec<u64> = self
            .segments
            .keys()
            .copied()
            .filter(|&id| id != victim)
            .collect();
        write_manifest(&self.dir, &ids)?;
        self.segments.remove(&victim);
        fs::remove_file(seg_path(&self.dir, victim)).ok();
        self.io.compactions += 1;
        Ok(())
    }

    /// Reads a live record's raw bytes straight off its segment.
    fn read_raw(&self, key: &str) -> Result<Option<String>, StoreError> {
        let Some(loc) = self.index.get(key) else {
            return Ok(None);
        };
        let path = seg_path(&self.dir, loc.seg);
        let fail = |e: std::io::Error| StoreError::io(format!("read '{}': {e}", path.display()));
        let mut file = File::open(&path).map_err(fail)?;
        file.seek(SeekFrom::Start(loc.offset)).map_err(fail)?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf).map_err(fail)?;
        String::from_utf8(buf)
            .map(Some)
            .map_err(|_| StoreError::corrupt(key, "record bytes are not utf-8"))
    }
}

impl SnapshotStore for SegmentStore {
    fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError> {
        check_key(key)?;
        self.append_put(key, &record.to_json())?;
        self.io.puts += 1;
        self.after_write()
    }

    fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
        check_key(key)?;
        match self.read_raw(key)? {
            None => Ok(None),
            Some(raw) => parse_json(&raw)
                .map(Some)
                .map_err(|e| StoreError::corrupt(key, format!("invalid record json: {e}"))),
        }
    }

    fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        check_key(key)?;
        self.io.removes += 1;
        let Some(old) = self.index.remove(key) else {
            return Ok(()); // removing an absent key needs no log entry
        };
        if let Some(info) = self.segments.get_mut(&old.seg) {
            info.live -= 1;
        }
        self.append_frame(&del_frame(key))?;
        self.after_write()
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.index.keys().cloned().collect())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.commit()?;
        self.maintain()
    }

    fn io_stats(&self) -> StoreIoStats {
        self.io
    }
}

impl Drop for SegmentStore {
    /// Best-effort final commit, mirroring the manager's flush-on-drop
    /// contract. A hard kill skips this — that is what recovery is for.
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

/// A cloneable, mutex-serialized handle to one shared [`SegmentStore`] —
/// how every shard worker of one deployment writes the same log. Created
/// by [`SegmentStore::into_shared`].
#[derive(Debug, Clone)]
pub struct SegmentHandle {
    inner: Arc<Mutex<SegmentStore>>,
}

impl SegmentHandle {
    fn lock(&self) -> MutexGuard<'_, SegmentStore> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl SnapshotStore for SegmentHandle {
    fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError> {
        self.lock().put(key, record)
    }

    fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
        self.lock().get(key)
    }

    fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        self.lock().remove(key)
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        self.lock().keys()
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.lock().flush()
    }

    fn io_stats(&self) -> StoreIoStats {
        self.lock().io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("webrobot-segment-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn record(n: i64) -> Value {
        Value::object([("n".to_string(), Value::Int(n))])
    }

    /// A config that never auto-commits, so tests control commit points.
    fn manual() -> SegmentConfig {
        SegmentConfig {
            commit_ops: usize::MAX,
            commit_bytes: u64::MAX,
            commit_interval: Duration::from_secs(3600),
            ..SegmentConfig::default()
        }
    }

    #[test]
    fn recovery_lands_exactly_at_the_last_group_commit() {
        let dir = TempDir::new("group-commit");
        let mut store = SegmentStore::with_config(manual(), dir.path()).unwrap();
        store.put("s-1", &record(1)).unwrap();
        store.put("s-2", &record(2)).unwrap();
        store.flush().unwrap(); // the group commit
        store.put("s-2", &record(99)).unwrap();
        store.put("s-3", &record(3)).unwrap();
        // Reads see the uncommitted writes…
        assert_eq!(store.get("s-2").unwrap(), Some(record(99)));
        // …but a hard kill (no drop) loses exactly the uncommitted tail.
        std::mem::forget(store);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(1)));
        assert_eq!(store.get("s-2").unwrap(), Some(record(2)));
        assert_eq!(store.get("s-3").unwrap(), None);
        assert_eq!(store.keys().unwrap(), vec!["s-1", "s-2"]);
    }

    #[test]
    fn torn_tail_bytes_are_truncated() {
        let dir = TempDir::new("torn");
        let mut store = SegmentStore::with_config(manual(), dir.path()).unwrap();
        store.put("s-1", &record(1)).unwrap();
        store.flush().unwrap();
        std::mem::forget(store);
        // A torn frame: a PUT header promising more bytes than exist.
        let seg = seg_path(dir.path(), 1);
        let mut bytes = fs::read(&seg).unwrap();
        let committed = bytes.len();
        bytes.extend_from_slice(&[TAG_PUT, 0, 0, 0, 3, 0, 0, 1, 0, b's']);
        fs::write(&seg, &bytes).unwrap();
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(1)));
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            committed as u64,
            "tail truncated back to the commit"
        );
    }

    #[test]
    fn bit_flip_before_a_commit_is_typed_corruption() {
        let dir = TempDir::new("bitflip");
        let mut store = SegmentStore::with_config(manual(), dir.path()).unwrap();
        store.put("s-1", &record(1)).unwrap();
        store.put("s-2", &record(2)).unwrap();
        store.flush().unwrap();
        std::mem::forget(store);
        let seg = seg_path(dir.path(), 1);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[12] ^= 0x40; // inside the first committed record
        fs::write(&seg, &bytes).unwrap();
        match SegmentStore::open(dir.path()) {
            Err(StoreError::Corrupt { key, .. }) => assert_eq!(key, "seg-1"),
            other => panic!("expected typed corruption, got {other:?}"),
        }
    }

    #[test]
    fn stale_manifest_is_typed_corruption() {
        let dir = TempDir::new("stale-manifest");
        drop(SegmentStore::open(dir.path()).unwrap());
        fs::write(
            dir.path().join(MANIFEST),
            r#"{"v": 1, "kind": "manifest", "segments": [1, 7]}"#,
        )
        .unwrap();
        match SegmentStore::open(dir.path()) {
            Err(StoreError::Corrupt { key, detail }) => {
                assert_eq!(key, "manifest");
                assert!(detail.contains("seg-7"), "{detail}");
            }
            other => panic!("expected typed corruption, got {other:?}"),
        }
        // Garbage manifests are typed too.
        fs::write(dir.path().join(MANIFEST), "}{ not json").unwrap();
        assert_eq!(
            SegmentStore::open(dir.path()).unwrap_err().code(),
            "snapshot_corrupt"
        );
    }

    #[test]
    fn group_commit_batches_by_op_count() {
        let dir = TempDir::new("batch");
        let cfg = SegmentConfig {
            commit_ops: 4,
            ..manual()
        };
        let mut store = SegmentStore::with_config(cfg, dir.path()).unwrap();
        for i in 0..7 {
            store.put(&format!("s-{i}"), &record(i)).unwrap();
        }
        // 7 puts with a batch of 4: one commit has fired, covering the
        // first four; the last three ride in the pending batch.
        std::mem::forget(store);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.keys().unwrap().len(), 4);
    }

    #[test]
    fn compaction_reclaims_dead_segments() {
        let dir = TempDir::new("compact");
        let cfg = SegmentConfig {
            commit_ops: 1,
            max_segment_bytes: 512,
            compact_min_records: 2,
            compact_live_percent: 50,
            ..SegmentConfig::default()
        };
        let mut store = SegmentStore::with_config(cfg, dir.path()).unwrap();
        // Overwrite two keys many times: every sealed segment ends up
        // mostly dead and gets compacted away.
        for round in 0..64 {
            store.put("s-1", &record(round)).unwrap();
            store.put("s-2", &record(-round)).unwrap();
        }
        store.flush().unwrap();
        assert!(
            store.segment_ids().len() <= 3,
            "dead segments reclaimed, manifest holds {:?}",
            store.segment_ids()
        );
        drop(store);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(63)));
        assert_eq!(store.get("s-2").unwrap(), Some(record(-63)));
        assert_eq!(store.keys().unwrap(), vec!["s-1", "s-2"]);
    }

    #[test]
    fn file_store_layout_migrates_in_place() {
        let dir = TempDir::new("migrate");
        {
            let mut legacy = crate::FileStore::open(dir.path()).unwrap();
            legacy.put("s-1", &record(1)).unwrap();
            legacy.put("s-2", &record(2)).unwrap();
            legacy.put("shard-1-of-1", &record(0)).unwrap();
        }
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("s-1").unwrap(), Some(record(1)));
        assert_eq!(store.get("s-2").unwrap(), Some(record(2)));
        assert_eq!(store.keys().unwrap(), vec!["s-1", "s-2", "shard-1-of-1"]);
        assert!(
            !dir.path().join("s-1.json").exists(),
            "legacy records removed after the committed import"
        );
        // The migrated log round-trips across another reopen.
        drop(store);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("shard-1-of-1").unwrap(), Some(record(0)));
    }

    #[test]
    fn corrupt_legacy_records_fail_migration_typed() {
        let dir = TempDir::new("migrate-bad");
        fs::write(dir.path().join("s-1.json"), "{\"truncated\":").unwrap();
        match SegmentStore::open(dir.path()) {
            Err(StoreError::Corrupt { key, .. }) => assert_eq!(key, "s-1"),
            other => panic!("expected typed corruption, got {other:?}"),
        }
        assert!(
            dir.path().join("s-1.json").exists(),
            "failed migration leaves the legacy file untouched"
        );
    }

    #[test]
    fn shared_handles_serialize_one_log() {
        let dir = TempDir::new("shared");
        let store = SegmentStore::open(dir.path()).unwrap();
        let mut a = store.into_shared();
        let mut b = a.clone();
        a.put("s-1", &record(1)).unwrap();
        b.put("s-2", &record(2)).unwrap();
        assert_eq!(a.get("s-2").unwrap(), Some(record(2)));
        a.flush().unwrap();
        drop(a);
        drop(b);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.keys().unwrap(), vec!["s-1", "s-2"]);
    }

    #[test]
    fn removes_survive_reopen() {
        let dir = TempDir::new("removes");
        let mut store = SegmentStore::with_config(manual(), dir.path()).unwrap();
        store.put("s-1", &record(1)).unwrap();
        store.put("s-2", &record(2)).unwrap();
        store.remove("s-1").unwrap();
        store.remove("s-1").unwrap(); // idempotent
        store.flush().unwrap();
        drop(store);
        let store = SegmentStore::open(dir.path()).unwrap();
        assert_eq!(store.get("s-1").unwrap(), None);
        assert_eq!(store.keys().unwrap(), vec!["s-2"]);
    }
}
