//! **WebRobot**: web robotic process automation using interactive
//! programming-by-demonstration — a from-scratch Rust reproduction of the
//! PLDI 2022 paper by Dong, Huang, Lam, Chen and Wang.
//!
//! WebRobot watches a user demonstrate a web task (entering data, scraping,
//! navigating, paginating) and synthesizes a program in an expressive web
//! RPA DSL that *generalizes* the demonstration: it reproduces every
//! recorded action and predicts what comes next. The synthesizer is built
//! on **speculative rewriting** — guess loops from their first two
//! iterations, then validate them against a formal *trace semantics*.
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`webrobot_dom`] | DOM trees, XPath-subset selectors, alternative-selector search |
//! | [`webrobot_data`] | JSON-like data sources and value paths |
//! | [`webrobot_lang`] | The web RPA DSL (paper Fig. 6) and action language |
//! | [`webrobot_semantics`] | Trace semantics (Figs. 7–9), satisfaction & generalization |
//! | [`webrobot_synth`] | Speculate + validate synthesis engine (paper §5) |
//! | [`webrobot_browser`] | Simulated websites, live execution, trace recording |
//! | [`webrobot_interact`] | Demo/authorize/automate sessions (paper §6): typed [`Event`]/[`SessionError`] state machine, delta snapshot/restore |
//! | [`webrobot_service`] | Multi-tenant [`SessionManager`], sharding, persistent [`SnapshotStore`]s + the v1 JSON wire protocol (`PROTOCOL.md`) |
//!
//! This facade re-exports the most important types and offers [`WebRobot`],
//! a batteries-included entry point.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use webrobot::{Action, Value, WebRobot};
//! use webrobot_dom::parse_html;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A page with five headlines; the user scrapes the first two.
//! let page = Arc::new(parse_html(
//!     "<html><h3>A</h3><h3>B</h3><h3>C</h3><h3>D</h3><h3>E</h3></html>",
//! )?);
//! let mut robot = WebRobot::on_page(page.clone(), Value::Object(vec![]));
//! robot.observe(Action::ScrapeText("/h3[1]".parse()?), page.clone());
//! robot.observe(Action::ScrapeText("/h3[2]".parse()?), page);
//!
//! let result = robot.synthesize();
//! let best = result.programs.first().expect("a loop generalizes");
//! assert_eq!(best.program.loop_depth(), 1);
//! assert_eq!(best.prediction.to_string(), "ScrapeText(/h3[3])");
//! # Ok(())
//! # }
//! ```
//!
//! # Serving sessions over the wire protocol
//!
//! The same workflow is available as a multi-tenant service: a
//! [`SessionManager`] owns many concurrent sessions and speaks the
//! versioned v1 JSON protocol (string in, string out — see `PROTOCOL.md`
//! for the full shapes and error codes):
//!
//! ```
//! use std::sync::Arc;
//! use webrobot::{ServiceConfig, SessionManager, SiteBuilder, Value};
//! use webrobot_dom::parse_html;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SiteBuilder::new();
//! let home = b.add_page("https://x.test/", parse_html(
//!     "<html><h3>A</h3><h3>B</h3><h3>C</h3></html>")?);
//! let mut manager = SessionManager::new(ServiceConfig::default());
//! manager.register_site("news", Arc::new(b.start_at(home).finish()),
//!     Value::Object(vec![]));
//!
//! let reply = manager.handle_json(r#"{"v": 1, "kind": "create", "site": "news"}"#);
//! assert!(reply.contains(r#""session":"s-1""#), "{reply}");
//! let reply = manager.handle_json(
//!     r#"{"v": 1, "kind": "event", "session": "s-1", "event":
//!        {"type": "demonstrate", "action": {"op": "scrape_text", "selector": "/h3[1]"}}}"#,
//! );
//! assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use webrobot_dom::Dom;

pub use webrobot_browser::{
    record_demonstration, run_program, Browser, BrowserError, Output, RecordLimits, Recording,
    Site, SiteBuilder,
};
pub use webrobot_interact::{
    Event, Mode, Session, SessionConfig, SessionError, SessionSnapshot, StepOutcome,
};
pub use webrobot_lang::{parse_program, Action, Program, Selector, Statement, Value, ValuePath};
pub use webrobot_semantics::{
    action_consistent, execute, generalizes, satisfies, trace_consistent, Stepper, Trace,
};
pub use webrobot_service::{
    ConfigError, FileStore, MemoryStore, Metrics, MetricsSnapshot, Request, Response,
    SegmentConfig, SegmentHandle, SegmentStore, ServiceConfig, ServiceConfigBuilder, ServiceError,
    ServiceStats, SessionId, SessionManager, ShardedManager, SnapshotStore, StatsV2, StoreError,
    PROTOCOL_VERSION,
};
pub use webrobot_synth::{EngineDigest, RankedProgram, SynthConfig, SynthResult, Synthesizer};

/// High-level synthesizer handle: observe demonstrated actions, ask for
/// generalizing programs and predictions.
///
/// This is a thin, ergonomic wrapper over [`Synthesizer`]; use the latter
/// directly for fine-grained control (custom deadlines, worklist
/// inspection).
#[derive(Debug)]
pub struct WebRobot {
    synth: Synthesizer,
}

impl WebRobot {
    /// Starts a robot from a demonstration beginning on `initial_page`,
    /// with data source `input`, using the default configuration.
    pub fn on_page(initial_page: Arc<Dom>, input: Value) -> WebRobot {
        WebRobot::with_config(SynthConfig::default(), initial_page, input)
    }

    /// Starts a robot with an explicit configuration.
    pub fn with_config(cfg: SynthConfig, initial_page: Arc<Dom>, input: Value) -> WebRobot {
        WebRobot {
            synth: Synthesizer::new(cfg, Trace::new(initial_page, input)),
        }
    }

    /// Wraps an existing synthesizer.
    pub fn from_synthesizer(synth: Synthesizer) -> WebRobot {
        WebRobot { synth }
    }

    /// Records one demonstrated (or authorized) action and the DOM the
    /// page transitioned to.
    pub fn observe(&mut self, action: Action, resulting_dom: Arc<Dom>) {
        self.synth.observe(action, resulting_dom);
    }

    /// Runs (incremental) synthesis and returns generalizing programs with
    /// their predictions, best first.
    pub fn synthesize(&mut self) -> SynthResult {
        self.synth.synthesize()
    }

    /// The demonstration observed so far.
    pub fn trace(&self) -> &Trace {
        self.synth.trace()
    }

    /// Access to the underlying engine.
    pub fn synthesizer(&mut self) -> &mut Synthesizer {
        &mut self.synth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_dom::parse_html;

    #[test]
    fn facade_round_trip() {
        let page = Arc::new(parse_html("<html><a>1</a><a>2</a><a>3</a></html>").unwrap());
        let mut robot = WebRobot::on_page(page.clone(), Value::Object(vec![]));
        robot.observe(Action::ScrapeText("/a[1]".parse().unwrap()), page.clone());
        robot.observe(Action::ScrapeText("/a[2]".parse().unwrap()), page);
        let result = robot.synthesize();
        assert!(!result.programs.is_empty());
        assert_eq!(robot.trace().len(), 2);
    }

    #[test]
    fn ablation_configs_are_reachable() {
        let page = Arc::new(parse_html("<html><a>1</a></html>").unwrap());
        let robot = WebRobot::with_config(SynthConfig::no_selector(), page, Value::Object(vec![]));
        assert!(!robot.synth.config().alternative_selectors);
    }
}
