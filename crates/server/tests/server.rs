//! End-to-end tests for the TCP front end: framing, multiplexed
//! connections, overload behavior at the socket, and drain composing
//! with the snapshot store.

use std::io::Cursor;
use std::sync::Arc;

use webrobot_browser::{Site, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::parse_html;
use webrobot_server::{read_frame, write_frame, Client, Server, MAX_FRAME};
use webrobot_service::{ServiceConfig, ShardedManager, SnapshotStore};

fn anchor_site(n: usize) -> Arc<Site> {
    let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://anchors.test/",
        parse_html(&format!("<html>{body}</html>")).unwrap(),
    );
    Arc::new(b.start_at(home).finish())
}

fn server(shards: usize) -> Server {
    let manager = ShardedManager::new(ServiceConfig::default(), shards);
    manager.register_site("anchors", anchor_site(6), Value::Object(vec![]));
    Server::bind(manager, "127.0.0.1:0").unwrap()
}

fn demonstrate(session: &str, i: usize) -> String {
    format!(
        r#"{{"v": 1, "kind": "event", "session": "{session}", "event":
           {{"type": "demonstrate", "action": {{"op": "scrape_text", "selector": "/a[{i}]"}}}}}}"#
    )
}

#[test]
fn frames_roundtrip_and_reject_oversize() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello").unwrap();
    write_frame(&mut buf, b"").unwrap();
    let mut r = Cursor::new(buf);
    assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
    assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
    assert_eq!(
        read_frame(&mut r).unwrap(),
        None,
        "clean EOF between frames"
    );

    // A header announcing more than MAX_FRAME is corrupt, not an
    // allocation request.
    let huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
    assert!(read_frame(&mut Cursor::new(huge)).is_err());
    // EOF inside a header is an error, not a clean close.
    assert!(read_frame(&mut Cursor::new(vec![0u8, 0])).is_err());
}

#[test]
fn concurrent_connections_multiplex_onto_one_service() {
    let server = server(2);
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.run());

    // Two clients create their own sessions and drive them concurrently;
    // a third checks the aggregate afterwards.
    let drivers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let created = client
                    .call(r#"{"v": 1, "kind": "create", "site": "anchors"}"#)
                    .unwrap();
                assert!(created.contains(r#""session":"s-"#), "{created}");
                let session: String = created
                    .split(r#""session":""#)
                    .nth(1)
                    .unwrap()
                    .chars()
                    .take_while(|c| *c != '"')
                    .collect();
                for i in 1..=2 {
                    let reply = client.call(&demonstrate(&session, i)).unwrap();
                    assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
                }
                session
            })
        })
        .collect();
    let mut sessions: Vec<String> = drivers.into_iter().map(|d| d.join().unwrap()).collect();
    sessions.sort();
    assert_eq!(sessions, ["s-1", "s-2"]);

    let mut client = Client::connect(addr).unwrap();
    let stats = client.call(r#"{"v": 1, "kind": "stats"}"#).unwrap();
    assert!(stats.contains(r#""events_ok":4"#), "{stats}");

    let drained = client.drain().unwrap();
    assert!(drained.contains(r#""kind":"drained""#), "{drained}");
    serving.join().unwrap().unwrap();

    // The drained server is gone: new connections fail or close.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.call(r#"{"v": 1, "kind": "stats"}"#).is_err());
    }
}

#[test]
fn drain_checkpoints_sessions_into_the_store() {
    let dir = std::env::temp_dir().join(format!(
        "webrobot-server-drain-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let open_stores = || -> Vec<Box<dyn SnapshotStore>> {
        (0..2)
            .map(|_| {
                Box::new(webrobot_service::FileStore::open(&dir).unwrap()) as Box<dyn SnapshotStore>
            })
            .collect()
    };

    {
        let manager = ShardedManager::with_stores(ServiceConfig::default(), open_stores()).unwrap();
        manager.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        let server = Server::bind(manager, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let serving = std::thread::spawn(move || server.run());
        let mut client = Client::connect(addr).unwrap();
        client
            .call(r#"{"v": 1, "kind": "create", "site": "anchors"}"#)
            .unwrap();
        for i in 1..=2 {
            client.call(&demonstrate("s-1", i)).unwrap();
        }
        let drained = client.drain().unwrap();
        assert!(drained.contains(r#""sessions":1"#), "{drained}");
        serving.join().unwrap().unwrap();
    }

    // A fresh deployment over the same store resumes the session where
    // the drain left it.
    let manager = ShardedManager::with_stores(ServiceConfig::default(), open_stores()).unwrap();
    manager.register_site("anchors", anchor_site(6), Value::Object(vec![]));
    let reply = manager.handle_json(r#"{"v": 1, "kind": "outputs", "session": "s-1"}"#);
    assert!(reply.contains("item 1"), "{reply}");
    assert!(reply.contains("item 2"), "{reply}");
    let _ = std::fs::remove_dir_all(&dir);
}
