//! TCP front end for the WebRobot session service.
//!
//! [`webrobot_service::ShardedManager`] is transport-agnostic: strings in,
//! strings out. This crate puts it on a socket — the `webrobot-server`
//! binary listens on TCP loopback and speaks the v1 JSON protocol with
//! **length-prefixed framing** (see `PROTOCOL.md` § Transport):
//!
//! * every frame is a 4-byte big-endian payload length followed by that
//!   many bytes of UTF-8 JSON — hand-rolled, no new dependencies, the
//!   same discipline as the `webrobot_data` codec;
//! * each connection is served by its own thread, all threads sharing one
//!   [`ShardedManager`] (it is `Sync` by design), so any number of
//!   clients multiplex onto the shard workers;
//! * requests on one connection are answered in order; concurrency comes
//!   from opening multiple connections;
//! * overload is a *typed reply*, not a hang: when a shard's admission
//!   queue is full the client receives the protocol's `overloaded` error
//!   and is expected to back off;
//! * the transport-level `{"v": 1, "kind": "drain"}` frame triggers a
//!   graceful shutdown: the listener stops accepting, live sessions are
//!   checkpointed (when a store is attached), every idle connection is
//!   closed, and the draining client receives
//!   `{"v": 1, "kind": "drained", "sessions": n}` before its connection
//!   closes too.
//!
//! The [`Server`]/[`Client`] pair is the embeddable form used by the
//! integration tests and the `--smoke` self-check; `src/main.rs` wraps it
//! in a binary.

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use webrobot_data::{parse_json, Value};
use webrobot_service::{Request, Response, ShardedManager};

/// Hard cap on a single frame's payload (16 MiB). A length prefix beyond
/// this is treated as a corrupt stream and the connection is dropped —
/// a misbehaving client must not make the server allocate unboundedly.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame: 4-byte big-endian payload length,
/// then the payload, then a flush.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when `payload` exceeds [`MAX_FRAME`];
/// otherwise any I/O error from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean close
/// (EOF on a frame boundary).
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends mid-frame,
/// [`io::ErrorKind::InvalidData`] when the announced length exceeds
/// [`MAX_FRAME`]; otherwise any I/O error from the underlying reader.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Connection-shared server state.
struct Shared {
    manager: ShardedManager,
    draining: AtomicBool,
    addr: SocketAddr,
    /// One cloned handle per live connection, so a drain can close idle
    /// connections that are blocked reading their next frame.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Executes a drain: stop accepting, checkpoint what can be
    /// checkpointed, close every other connection, wake the accept loop.
    /// Returns the JSON reply owed to the draining client.
    fn drain(&self) -> String {
        self.draining.store(true, Ordering::SeqCst);
        let reply = match self.manager.handle(Request::Checkpoint) {
            Response::Checkpointed { sessions } => drained_reply(sessions),
            // A storeless deployment has nothing to flush; the drain
            // still succeeds (sessions simply end with the process).
            Response::Error { ref code, .. } if code == "no_store" => drained_reply(0),
            error => error.to_json(),
        };
        // Close the *read* side of every connection: threads blocked in
        // `read_frame` see EOF and exit after finishing their current
        // request; replies already in flight still go out.
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            conn.shutdown(Shutdown::Read).ok();
        }
        // Wake the accept loop so `run` can return.
        TcpStream::connect(self.addr).ok();
        reply
    }
}

/// The `{"v": 1, "kind": "drained", "sessions": n}` reply frame.
fn drained_reply(sessions: usize) -> String {
    Value::Object(vec![
        ("v".to_string(), Value::Int(1)),
        ("kind".to_string(), Value::str("drained")),
        ("sessions".to_string(), Value::Int(sessions as i64)),
    ])
    .to_json()
}

/// `true` for the transport-level drain frame, which is intercepted
/// before [`Request::from_json`] ever sees it.
fn is_drain(text: &str) -> bool {
    matches!(
        parse_json(text).ok().as_ref().and_then(|v| v.field("kind")),
        Some(Value::Str(kind)) if kind == "drain"
    )
}

/// A TCP listener bound to a [`ShardedManager`]: accepts connections and
/// serves length-prefixed v1 JSON frames until drained.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    /// Register the sites the manager should serve *before* calling
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn bind(manager: ShardedManager, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                manager,
                draining: AtomicBool::new(false),
                addr,
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Any I/O error from querying the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The manager behind the socket, e.g. to register sites.
    pub fn manager(&self) -> &ShardedManager {
        &self.shared.manager
    }

    /// Accepts and serves connections until a client sends the drain
    /// frame, then joins every connection thread and returns. Dropping
    /// the returned server flushes store-backed sessions (the manager's
    /// flush-on-drop contract).
    ///
    /// # Errors
    ///
    /// Any I/O error from the accept loop itself; per-connection errors
    /// only terminate that connection.
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            // A frame is two small writes (header + payload); without
            // TCP_NODELAY, Nagle holding the second write for the peer's
            // delayed ACK adds ~40ms per round trip on loopback.
            stream.set_nodelay(true).ok();
            let shared = self.shared.clone();
            workers.push(std::thread::spawn(move || {
                serve_connection(stream, &shared)
            }));
        }
        for worker in workers {
            worker.join().ok();
        }
        Ok(())
    }
}

/// One connection: frames in, frames out, in order, until the client
/// closes, a framing error occurs, or a drain ends the world.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    if let Ok(handle) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
    // A clean close, a truncated frame, and a drain-initiated shutdown
    // all end the connection the same way: stop reading.
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let started = Instant::now();
        let text = String::from_utf8_lossy(&frame);
        if is_drain(&text) {
            let reply = shared.drain();
            write_frame(&mut stream, reply.as_bytes()).ok();
            break;
        }
        let reply = shared.manager.handle_json(&text);
        let written = write_frame(&mut stream, reply.as_bytes());
        // The transport histogram spans frame-received → reply-written:
        // service handling plus reply serialization and socket write,
        // but never the idle wait for the client's next frame.
        shared.manager.metrics().record_transport(started.elapsed());
        if written.is_err() {
            break;
        }
    }
    stream.shutdown(Shutdown::Both).ok();
}

/// A blocking client for the framed protocol — one request, one reply,
/// in order. Used by the integration tests, the `--smoke` self-check,
/// and any Rust-side tooling that wants to drive a running server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Mirror of the server side: the header/payload write pair must
        // not wait out Nagle + delayed ACK.
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one JSON request frame and awaits the reply frame.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when the server closes before
    /// replying; otherwise any I/O error from the socket.
    pub fn call(&mut self, request: &str) -> io::Result<String> {
        write_frame(&mut self.stream, request.as_bytes())?;
        match read_frame(&mut self.stream)? {
            Some(reply) => Ok(String::from_utf8_lossy(&reply).into_owned()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )),
        }
    }

    /// Asks the server to drain and returns its `drained` reply.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn drain(&mut self) -> io::Result<String> {
        self.call(r#"{"v": 1, "kind": "drain"}"#)
    }
}
