//! `webrobot-server` — the WebRobot session service on a TCP socket.
//!
//! ```text
//! webrobot-server [--addr 127.0.0.1:7411] [--shards N] [--store DIR] [--smoke]
//! ```
//!
//! Speaks the v1 JSON protocol with 4-byte big-endian length-prefixed
//! frames (`PROTOCOL.md` § Transport). A built-in demo site `"anchors"`
//! is registered so the server is drivable out of the box. `--store DIR`
//! attaches one [`webrobot_service::FileStore`] per shard (all sharing
//! `DIR`), making sessions survive a restart; `--smoke` runs an
//! end-to-end self-check (bind an ephemeral port, drive one session over
//! real TCP, drain) and exits non-zero on any mismatch — the form CI
//! runs.

use std::process::ExitCode;
use std::sync::Arc;

use webrobot_browser::{Site, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::parse_html;
use webrobot_server::{Client, Server};
use webrobot_service::{ServiceConfig, ShardedManager, SnapshotStore};

struct Options {
    addr: String,
    shards: usize,
    store: Option<String>,
    smoke: bool,
}

const USAGE: &str =
    "usage: webrobot-server [--addr HOST:PORT] [--shards N] [--store DIR] [--smoke]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7411".to_string(),
        shards: 2,
        store: None,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--shards" => {
                opts.shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?
            }
            "--store" => opts.store = Some(it.next().ok_or("--store needs a value")?.clone()),
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// The demo site: one page of anchors, enough to demonstrate, authorize
/// and automate a scrape loop over the wire.
fn anchor_site() -> Arc<Site> {
    let body: String = (1..=8).map(|i| format!("<a>item {i}</a>")).collect();
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://anchors.test/",
        parse_html(&format!("<html>{body}</html>")).expect("demo site parses"),
    );
    Arc::new(b.start_at(home).finish())
}

fn build_manager(opts: &Options) -> Result<ShardedManager, String> {
    let manager = match &opts.store {
        Some(dir) => {
            let stores = (0..opts.shards.max(1))
                .map(|_| {
                    webrobot_service::FileStore::open(dir)
                        .map(|s| Box::new(s) as Box<dyn SnapshotStore>)
                })
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("open store '{dir}': {e}"))?;
            ShardedManager::with_stores(ServiceConfig::default(), stores)
                .map_err(|e| format!("reopen store '{dir}': {e}"))?
        }
        None => ShardedManager::new(ServiceConfig::default(), opts.shards),
    };
    manager.register_site("anchors", anchor_site(), Value::Object(vec![]));
    Ok(manager)
}

fn serve(opts: &Options) -> Result<(), String> {
    let manager = build_manager(opts)?;
    let server =
        Server::bind(manager, &opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "webrobot-server listening on {addr} ({} shards)",
        opts.shards
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

/// End-to-end self-check over real TCP: create → demonstrate ×2 →
/// accept → outputs → drain, asserting each reply.
fn smoke(opts: &Options) -> Result<(), String> {
    let manager = build_manager(opts)?;
    let server = Server::bind(manager, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let serving = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut call = |request: &str, expect: &str| -> Result<(), String> {
        let reply = client.call(request).map_err(|e| format!("call: {e}"))?;
        if reply.contains(expect) {
            Ok(())
        } else {
            Err(format!(
                "expected '{expect}' in reply to {request}, got {reply}"
            ))
        }
    };
    call(
        r#"{"v": 1, "kind": "create", "site": "anchors"}"#,
        r#""session":"s-1""#,
    )?;
    for i in 1..=2 {
        call(
            &format!(
                r#"{{"v": 1, "kind": "event", "session": "s-1", "event":
                   {{"type": "demonstrate", "action": {{"op": "scrape_text", "selector": "/a[{i}]"}}}}}}"#
            ),
            r#""outcome":"recorded""#,
        )?;
    }
    call(
        r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": 0}}"#,
        r#""outputs":3"#,
    )?;
    call(r#"{"v": 1, "kind": "outputs", "session": "s-1"}"#, "item 3")?;
    let drained = Client::connect(addr)
        .and_then(|mut c| c.drain())
        .map_err(|e| format!("drain: {e}"))?;
    if !drained.contains(r#""kind":"drained""#) {
        return Err(format!("expected drained reply, got {drained}"));
    }
    match serving.join() {
        Ok(Ok(())) => {
            println!("smoke ok: session driven and drained on {addr}");
            Ok(())
        }
        Ok(Err(e)) => Err(format!("server exited with {e}")),
        Err(_) => Err("server thread panicked".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = if opts.smoke {
        smoke(&opts)
    } else {
        serve(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("webrobot-server: {message}");
            ExitCode::FAILURE
        }
    }
}
