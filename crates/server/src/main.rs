//! `webrobot-server` — the WebRobot session service on a TCP socket.
//!
//! ```text
//! webrobot-server [--addr 127.0.0.1:7411] [--shards N] [--store DIR]
//!                 [--backend file|segment] [--gen-sites SEED]
//!                 [--smoke] [--resilience]
//! ```
//!
//! Speaks the v1 JSON protocol with 4-byte big-endian length-prefixed
//! frames (`PROTOCOL.md` § Transport). A built-in demo site `"anchors"`
//! is registered so the server is drivable out of the box, and
//! `--gen-sites SEED` additionally registers one procedurally generated
//! site per [`webrobot_benchmarks::GenFamily`] (named
//! `gen-<family>-<seed>`), giving load harnesses richer workloads than
//! the anchor page. `--store DIR`
//! attaches a persistent store rooted at `DIR`, making sessions survive a
//! restart: `--backend file` (the default) opens one
//! [`webrobot_service::FileStore`] per shard, `--backend segment` opens a
//! single log-structured [`webrobot_service::SegmentStore`] shared by all
//! shards. `--smoke` runs an end-to-end self-check (bind an ephemeral
//! port, drive one session over real TCP, drain); `--resilience` goes
//! further — it spawns *this binary* as a store-backed child server,
//! checkpoints a session over TCP, kills the child with SIGKILL, restarts
//! it on the same store and asserts the session's outputs are
//! byte-identical across the kill. Both exit non-zero on any mismatch —
//! the forms CI runs.

use std::process::ExitCode;
use std::sync::Arc;

use webrobot_browser::{Site, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::parse_html;
use webrobot_server::{Client, Server};
use webrobot_service::{SegmentStore, ServiceConfig, ShardedManager, SnapshotStore};

/// Which persistent store `--store DIR` opens.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Backend {
    File,
    Segment,
}

impl Backend {
    fn as_str(self) -> &'static str {
        match self {
            Backend::File => "file",
            Backend::Segment => "segment",
        }
    }
}

struct Options {
    addr: String,
    shards: usize,
    store: Option<String>,
    backend: Backend,
    gen_sites: Option<u64>,
    smoke: bool,
    resilience: bool,
}

const USAGE: &str = "usage: webrobot-server [--addr HOST:PORT] [--shards N] [--store DIR] \
                     [--backend file|segment] [--gen-sites SEED] [--smoke] [--resilience]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7411".to_string(),
        shards: 2,
        store: None,
        backend: Backend::File,
        gen_sites: None,
        smoke: false,
        resilience: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--shards" => {
                opts.shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?
            }
            "--store" => opts.store = Some(it.next().ok_or("--store needs a value")?.clone()),
            "--backend" => {
                opts.backend = match it.next().ok_or("--backend needs a value")?.as_str() {
                    "file" => Backend::File,
                    "segment" => Backend::Segment,
                    other => {
                        return Err(format!("unknown backend '{other}' (expected file|segment)"))
                    }
                }
            }
            "--gen-sites" => {
                opts.gen_sites = Some(
                    it.next()
                        .ok_or("--gen-sites needs a value")?
                        .parse()
                        .map_err(|_| "--gen-sites needs a u64 seed".to_string())?,
                )
            }
            "--smoke" => opts.smoke = true,
            "--resilience" => opts.resilience = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// The demo site: one page of anchors, enough to demonstrate, authorize
/// and automate a scrape loop over the wire.
fn anchor_site() -> Arc<Site> {
    let body: String = (1..=8).map(|i| format!("<a>item {i}</a>")).collect();
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://anchors.test/",
        parse_html(&format!("<html>{body}</html>")).expect("demo site parses"),
    );
    Arc::new(b.start_at(home).finish())
}

fn build_manager(opts: &Options) -> Result<ShardedManager, String> {
    let cfg = ServiceConfig::builder()
        .build()
        .map_err(|e| format!("config: {e}"))?;
    let manager = match &opts.store {
        Some(dir) => {
            let shards = opts.shards.max(1);
            let stores: Vec<Box<dyn SnapshotStore>> = match opts.backend {
                Backend::File => (0..shards)
                    .map(|_| {
                        webrobot_service::FileStore::open(dir)
                            .map(|s| Box::new(s) as Box<dyn SnapshotStore>)
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("open store '{dir}': {e}"))?,
                Backend::Segment => {
                    // One log for the whole deployment; the shards share
                    // it through cloned handles.
                    let handle = SegmentStore::open(dir)
                        .map_err(|e| format!("open store '{dir}': {e}"))?
                        .into_shared();
                    (0..shards)
                        .map(|_| Box::new(handle.clone()) as Box<dyn SnapshotStore>)
                        .collect()
                }
            };
            ShardedManager::with_stores(cfg, stores)
                .map_err(|e| format!("reopen store '{dir}': {e}"))?
        }
        None => ShardedManager::new(cfg, opts.shards),
    };
    manager.register_site("anchors", anchor_site(), Value::Object(vec![]));
    if let Some(seed) = opts.gen_sites {
        for family in webrobot_benchmarks::GenFamily::ALL {
            let b = webrobot_benchmarks::generated(family, seed);
            manager.register_site(format!("gen-{}-{seed}", family.key()), b.site, b.input);
        }
    }
    Ok(manager)
}

fn serve(opts: &Options) -> Result<(), String> {
    let manager = build_manager(opts)?;
    let server =
        Server::bind(manager, &opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "webrobot-server listening on {addr} ({} shards)",
        opts.shards
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

/// End-to-end self-check over real TCP: create → demonstrate ×2 →
/// accept → outputs → drain, asserting each reply.
fn smoke(opts: &Options) -> Result<(), String> {
    let manager = build_manager(opts)?;
    let server = Server::bind(manager, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let serving = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut call = |request: &str, expect: &str| -> Result<(), String> {
        let reply = client.call(request).map_err(|e| format!("call: {e}"))?;
        if reply.contains(expect) {
            Ok(())
        } else {
            Err(format!(
                "expected '{expect}' in reply to {request}, got {reply}"
            ))
        }
    };
    call(
        r#"{"v": 1, "kind": "create", "site": "anchors"}"#,
        r#""session":"s-1""#,
    )?;
    for i in 1..=2 {
        call(
            &format!(
                r#"{{"v": 1, "kind": "event", "session": "s-1", "event":
                   {{"type": "demonstrate", "action": {{"op": "scrape_text", "selector": "/a[{i}]"}}}}}}"#
            ),
            r#""outcome":"recorded""#,
        )?;
    }
    call(
        r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": 0}}"#,
        r#""outputs":3"#,
    )?;
    call(r#"{"v": 1, "kind": "outputs", "session": "s-1"}"#, "item 3")?;
    let drained = Client::connect(addr)
        .and_then(|mut c| c.drain())
        .map_err(|e| format!("drain: {e}"))?;
    if !drained.contains(r#""kind":"drained""#) {
        return Err(format!("expected drained reply, got {drained}"));
    }
    match serving.join() {
        Ok(Ok(())) => {
            println!("smoke ok: session driven and drained on {addr}");
            Ok(())
        }
        Ok(Err(e)) => Err(format!("server exited with {e}")),
        Err(_) => Err("server thread panicked".to_string()),
    }
}

/// Spawns this binary as a store-backed child server on an ephemeral
/// port and returns the child plus the address it printed in its banner.
fn spawn_child_server(
    dir: &std::path::Path,
    backend: Backend,
) -> Result<(std::process::Child, String), String> {
    use std::io::BufRead as _;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir_arg = dir.to_string_lossy().into_owned();
    let mut child = std::process::Command::new(exe)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--store",
            dir_arg.as_str(),
            "--backend",
            backend.as_str(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn child server: {e}"))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut banner = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut banner)
        .map_err(|e| format!("read child banner: {e}"))?;
    // "webrobot-server listening on 127.0.0.1:PORT (2 shards)"
    match banner.split_whitespace().nth(3) {
        Some(addr) => Ok((child, addr.to_string())),
        None => {
            child.kill().ok();
            child.wait().ok();
            Err(format!("unexpected child banner: {banner:?}"))
        }
    }
}

fn checked_call(client: &mut Client, request: &str, expect: &str) -> Result<String, String> {
    let reply = client.call(request).map_err(|e| format!("call: {e}"))?;
    if reply.contains(expect) {
        Ok(reply)
    } else {
        Err(format!(
            "expected '{expect}' in reply to {request}, got {reply}"
        ))
    }
}

/// First life of the child: drive a session to having outputs, checkpoint
/// it (which flushes the store), and return the outputs reply verbatim.
fn resilience_before_kill(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    checked_call(
        &mut client,
        r#"{"v": 1, "kind": "create", "site": "anchors"}"#,
        r#""session":"s-1""#,
    )?;
    for i in 1..=2 {
        checked_call(
            &mut client,
            &format!(
                r#"{{"v": 1, "kind": "event", "session": "s-1", "event":
                   {{"type": "demonstrate", "action": {{"op": "scrape_text", "selector": "/a[{i}]"}}}}}}"#
            ),
            r#""outcome":"recorded""#,
        )?;
    }
    checked_call(
        &mut client,
        r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": 0}}"#,
        r#""outputs":3"#,
    )?;
    checked_call(
        &mut client,
        r#"{"v": 1, "kind": "checkpoint"}"#,
        r#""kind":"checkpointed""#,
    )?;
    checked_call(
        &mut client,
        r#"{"v": 1, "kind": "outputs", "session": "s-1"}"#,
        "item 3",
    )
}

/// Second life: the restarted child must serve the exact same outputs,
/// continue the workflow, and drain cleanly.
fn resilience_after_restart(addr: &str, outputs_before: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let outputs_after = checked_call(
        &mut client,
        r#"{"v": 1, "kind": "outputs", "session": "s-1"}"#,
        "item 3",
    )?;
    if outputs_before != outputs_after {
        return Err(format!(
            "outputs diverged across the kill:\n  before: {outputs_before}\n  after:  {outputs_after}"
        ));
    }
    checked_call(
        &mut client,
        r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": 0}}"#,
        r#""outcome":"recorded""#,
    )?;
    let drained = Client::connect(addr)
        .and_then(|mut c| c.drain())
        .map_err(|e| format!("drain: {e}"))?;
    if !drained.contains(r#""kind":"drained""#) {
        return Err(format!("expected drained reply, got {drained}"));
    }
    Ok(())
}

/// Crash-resilience self-check: child server, TCP load, checkpoint, kill
/// -9, restart on the same store, byte-identity. Exercises the real
/// recovery path — no drop-flush, no in-process shortcuts.
fn resilience(opts: &Options) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("webrobot-resilience-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let (mut child, addr) = spawn_child_server(&dir, opts.backend)?;
    let before = resilience_before_kill(&addr);
    // SIGKILL, deliberately while the server is live: only what the
    // checkpoint committed may survive — and everything it committed must.
    child.kill().map_err(|e| format!("kill child: {e}"))?;
    child.wait().map_err(|e| format!("reap child: {e}"))?;
    let before = before?;

    let (mut child, addr) = spawn_child_server(&dir, opts.backend)?;
    let verdict = resilience_after_restart(&addr, &before);
    if verdict.is_err() {
        child.kill().ok();
    }
    child.wait().map_err(|e| format!("reap child: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);
    verdict?;

    println!(
        "resilience ok: session survived kill -9 byte-identically on the {} backend",
        opts.backend.as_str()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = if opts.resilience {
        resilience(&opts)
    } else if opts.smoke {
        smoke(&opts)
    } else {
        serve(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("webrobot-server: {message}");
            ExitCode::FAILURE
        }
    }
}
