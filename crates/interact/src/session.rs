//! Demo/authorize/automate sessions.

use std::sync::Arc;

use webrobot_browser::{Browser, BrowserError, Site};
use webrobot_data::Value;
use webrobot_lang::Action;
use webrobot_semantics::{satisfies, Trace};
use webrobot_synth::{SynthConfig, Synthesizer};

/// Session phase (paper §6 "Demo-auth-auto workflow").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The user performs actions manually.
    Demonstrate,
    /// Predictions await user approval.
    Authorize,
    /// The synthesized program executes without confirmation.
    Automate,
    /// The session has ended.
    Done,
}

/// Session tuning.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Synthesizer configuration.
    pub synth: SynthConfig,
    /// Consecutive accepted predictions before switching to automation
    /// (the paper's "after a couple of rounds, WebRobot takes over").
    pub accepts_before_automation: usize,
    /// Hard cap on automated actions (runaway protection).
    pub max_automation_steps: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            synth: SynthConfig::default(),
            accepts_before_automation: 2,
            max_automation_steps: 10_000,
        }
    }
}

/// What a session step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The action was executed and recorded; predictions may be available.
    Recorded,
    /// Automation executed this action.
    Automated(Action),
    /// No program generalizes: the ball is back in the user's court.
    NeedDemonstration,
    /// The current program produced no further action (task segment done).
    ProgramFinished,
}

/// An interactive programming-by-demonstration session over a simulated
/// website.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_interact::{Mode, Session, SessionConfig};
/// # use webrobot_lang::{Action, Value};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let site = Arc::new(b.start_at(home).finish());
/// let mut session = Session::new(site, Value::Object(vec![]), SessionConfig::default());
/// session.demonstrate(&Action::ScrapeText("/a[1]".parse()?))?;
/// session.demonstrate(&Action::ScrapeText("/a[2]".parse()?))?;
/// assert_eq!(session.mode(), Mode::Authorize);
/// assert!(!session.predictions().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    cfg: SessionConfig,
    browser: Browser,
    synth: Synthesizer,
    mode: Mode,
    predictions: Vec<Action>,
    consecutive_accepts: usize,
    executed: Vec<Action>,
    automated_steps: usize,
    last_program: Option<webrobot_lang::Program>,
}

impl Session {
    /// Opens a session on the site's start page.
    pub fn new(site: Arc<Site>, input: Value, cfg: SessionConfig) -> Session {
        let browser = Browser::new(site, input.clone());
        let trace = Trace::new(browser.snapshot(), input);
        let synth = Synthesizer::new(cfg.synth.clone(), trace);
        Session {
            cfg,
            browser,
            synth,
            mode: Mode::Demonstrate,
            predictions: Vec::new(),
            consecutive_accepts: 0,
            executed: Vec::new(),
            automated_steps: 0,
            last_program: None,
        }
    }

    /// Current phase.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The live browser (current page, outputs scraped so far).
    pub fn browser(&self) -> &Browser {
        &self.browser
    }

    /// Every action executed so far (demonstrated, authorized, automated),
    /// in absolute-XPath form.
    pub fn executed(&self) -> &[Action] {
        &self.executed
    }

    /// Current predictions, best first (paper §6 "Navigating across
    /// multiple predictions").
    pub fn predictions(&self) -> &[Action] {
        &self.predictions
    }

    /// The best generalizing program, if any. Once the task has run to
    /// completion nothing generalizes the finished trace any more (Def. 4.2
    /// demands one further action), so this falls back to the most recent
    /// generalizing program — but only while it still *satisfies* the
    /// trace (Def. 4.1); a cached program invalidated by a later
    /// demonstration, or discarded by an explicit rejection, is not
    /// returned.
    pub fn current_program(&self) -> Option<webrobot_lang::Program> {
        self.synth
            .best_program()
            .map(webrobot_lang::Program::new)
            .or_else(|| {
                self.last_program
                    .clone()
                    .filter(|p| satisfies(p.statements(), self.synth.trace()))
            })
    }

    /// Rewrites an action's selector to the absolute XPath of the node it
    /// denotes on the current page (what the front-end records).
    fn absolutize(&self, action: &Action) -> Result<Action, BrowserError> {
        let Some(path) = action.selector() else {
            return Ok(action.clone());
        };
        let node =
            path.resolve(self.browser.dom())
                .ok_or_else(|| BrowserError::SelectorNotFound {
                    action: action.to_string(),
                })?;
        let abs = self.browser.dom().absolute_path(node);
        Ok(match action.clone() {
            Action::Click(_) => Action::Click(abs),
            Action::ScrapeText(_) => Action::ScrapeText(abs),
            Action::ScrapeLink(_) => Action::ScrapeLink(abs),
            Action::Download(_) => Action::Download(abs),
            Action::SendKeys(_, s) => Action::SendKeys(abs, s),
            Action::EnterData(_, v) => Action::EnterData(abs, v),
            Action::GoBack | Action::ExtractUrl => unreachable!("no selector"),
        })
    }

    /// Executes `action` on the browser and records it in the trace.
    fn perform_and_record(&mut self, action: &Action) -> Result<Action, BrowserError> {
        let absolute = self.absolutize(action)?;
        self.browser.perform(&absolute)?;
        self.synth
            .observe(absolute.clone(), self.browser.snapshot());
        self.executed.push(absolute.clone());
        Ok(absolute)
    }

    /// Step 1 of Fig. 3: the user demonstrates one action. Synthesis runs
    /// afterwards; if a program generalizes, the session moves to
    /// [`Mode::Authorize`] with predictions to inspect.
    ///
    /// # Errors
    ///
    /// Returns [`BrowserError`] when the action cannot be replayed.
    pub fn demonstrate(&mut self, action: &Action) -> Result<StepOutcome, BrowserError> {
        self.perform_and_record(action)?;
        self.consecutive_accepts = 0;
        self.refresh_predictions();
        Ok(StepOutcome::Recorded)
    }

    fn refresh_predictions(&mut self) {
        let result = self.synth.synthesize();
        if let Some(best) = result.programs.first() {
            self.last_program = Some(best.program.clone());
        }
        self.predictions = result.predictions;
        self.mode = if self.predictions.is_empty() {
            Mode::Demonstrate
        } else {
            Mode::Authorize
        };
    }

    /// Step 4 of Fig. 3: the user accepts prediction `index` (it executes
    /// and is recorded as if demonstrated) or rejects them all
    /// (`None` → back to demonstration).
    ///
    /// # Errors
    ///
    /// Returns [`BrowserError`] when the accepted prediction fails to
    /// replay.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range of [`Session::predictions`].
    pub fn authorize(&mut self, index: Option<usize>) -> Result<StepOutcome, BrowserError> {
        match index {
            None => {
                self.predictions.clear();
                self.consecutive_accepts = 0;
                self.last_program = None;
                self.mode = Mode::Demonstrate;
                Ok(StepOutcome::NeedDemonstration)
            }
            Some(i) => {
                let action = self.predictions[i].clone();
                self.perform_and_record(&action)?;
                self.consecutive_accepts += 1;
                self.refresh_predictions();
                if self.mode == Mode::Authorize
                    && self.consecutive_accepts >= self.cfg.accepts_before_automation
                {
                    self.mode = Mode::Automate;
                }
                Ok(StepOutcome::Recorded)
            }
        }
    }

    /// Step 6 of Fig. 3: one automated step — execute the best program's
    /// next predicted action without confirmation.
    ///
    /// Returns [`StepOutcome::ProgramFinished`] when the program produces
    /// no further action (e.g. the loop ran off the last item), putting the
    /// session back into demonstration mode.
    ///
    /// # Errors
    ///
    /// Returns [`BrowserError`] when the predicted action fails to replay.
    pub fn automate_step(&mut self) -> Result<StepOutcome, BrowserError> {
        if self.automated_steps >= self.cfg.max_automation_steps {
            self.mode = Mode::Done;
            return Ok(StepOutcome::ProgramFinished);
        }
        let Some(action) = self.predictions.first().cloned() else {
            self.mode = Mode::Demonstrate;
            self.consecutive_accepts = 0;
            return Ok(StepOutcome::ProgramFinished);
        };
        self.perform_and_record(&action)?;
        self.automated_steps += 1;
        self.refresh_predictions();
        if self.mode == Mode::Authorize {
            // Stay in automation while predictions keep coming.
            self.mode = Mode::Automate;
        }
        Ok(StepOutcome::Automated(action))
    }

    /// The user interrupts automation (paper §2: "if at any point the user
    /// spots anything abnormal, they can interrupt").
    pub fn interrupt(&mut self) {
        self.predictions.clear();
        self.consecutive_accepts = 0;
        self.mode = Mode::Demonstrate;
    }

    /// Ends the session.
    pub fn finish(&mut self) {
        self.mode = Mode::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn scrape(i: usize) -> Action {
        Action::ScrapeText(format!("/a[{i}]").parse().unwrap())
    }

    #[test]
    fn demo_auth_auto_workflow() {
        let mut s = Session::new(
            anchor_site(6),
            Value::Object(vec![]),
            SessionConfig::default(),
        );
        assert_eq!(s.mode(), Mode::Demonstrate);
        s.demonstrate(&scrape(1)).unwrap();
        assert_eq!(s.mode(), Mode::Demonstrate, "one action cannot generalize");
        s.demonstrate(&scrape(2)).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        // Accept twice → automation takes over.
        s.authorize(Some(0)).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        s.authorize(Some(0)).unwrap();
        assert_eq!(s.mode(), Mode::Automate);
        // Automation scrapes the remaining items, then the loop finishes.
        let mut automated = 0;
        while s.mode() == Mode::Automate {
            match s.automate_step().unwrap() {
                StepOutcome::Automated(_) => automated += 1,
                StepOutcome::ProgramFinished => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(automated, 2, "items 5 and 6");
        assert_eq!(s.executed().len(), 6);
        assert_eq!(s.browser().outputs().len(), 6);
        assert_eq!(s.mode(), Mode::Demonstrate);
    }

    #[test]
    fn reject_returns_to_demonstration() {
        let mut s = Session::new(
            anchor_site(4),
            Value::Object(vec![]),
            SessionConfig::default(),
        );
        s.demonstrate(&scrape(1)).unwrap();
        s.demonstrate(&scrape(2)).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        s.authorize(None).unwrap();
        assert_eq!(s.mode(), Mode::Demonstrate);
        assert!(s.predictions().is_empty());
    }

    #[test]
    fn interrupt_stops_automation() {
        let mut s = Session::new(
            anchor_site(8),
            Value::Object(vec![]),
            SessionConfig::default(),
        );
        s.demonstrate(&scrape(1)).unwrap();
        s.demonstrate(&scrape(2)).unwrap();
        s.authorize(Some(0)).unwrap();
        s.authorize(Some(0)).unwrap();
        assert_eq!(s.mode(), Mode::Automate);
        s.automate_step().unwrap();
        s.interrupt();
        assert_eq!(s.mode(), Mode::Demonstrate);
        assert_eq!(s.executed().len(), 5);
    }

    #[test]
    fn failed_demonstration_is_an_error() {
        let mut s = Session::new(
            anchor_site(2),
            Value::Object(vec![]),
            SessionConfig::default(),
        );
        assert!(s.demonstrate(&scrape(9)).is_err());
        assert!(s.executed().is_empty());
    }
}
