//! Demo/authorize/automate sessions.
//!
//! A [`Session`] is a *total, typed state machine*: every input is an
//! [`Event`] dispatched through [`Session::handle`], every invalid input is
//! a [`SessionError`] (never a panic), and nothing executes after the
//! session reaches [`Mode::Done`]. The legacy method surface
//! ([`Session::demonstrate`], [`Session::authorize`], …) is kept as thin
//! wrappers over `handle`.
//!
//! Sessions can be suspended and resumed: [`Session::snapshot`] captures a
//! compact, replayable description (no synthesizer worklists, no live DOM)
//! and [`Session::restore`] rebuilds an equivalent live session from it —
//! the mechanism behind `webrobot_service`'s eviction of idle sessions.

use std::sync::Arc;
use std::time::Duration;

use webrobot_browser::{Browser, BrowserError, Site};
use webrobot_data::Value;
use webrobot_lang::Action;
use webrobot_semantics::{satisfies, Trace};
use webrobot_synth::{EngineDigest, SynthConfig, Synthesizer};

use crate::error::SessionError;

/// Session phase (paper §6 "Demo-auth-auto workflow").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The user performs actions manually.
    Demonstrate,
    /// Predictions await user approval.
    Authorize,
    /// The synthesized program executes without confirmation.
    Automate,
    /// The session has ended.
    Done,
}

impl Mode {
    /// Stable lowercase rendering (the wire protocol's `mode` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Demonstrate => "demonstrate",
            Mode::Authorize => "authorize",
            Mode::Automate => "automate",
            Mode::Done => "done",
        }
    }
}

/// One user input to the session state machine.
///
/// The event/mode validity table (rows are events, columns the mode the
/// session is in when the event arrives; `✓` = accepted):
///
/// | Event          | Demonstrate | Authorize | Automate | Done |
/// |----------------|-------------|-----------|----------|------|
/// | `Demonstrate`  | ✓           | ✓ (keeps demonstrating past the predictions) | `WrongMode` | `SessionClosed` |
/// | `Accept`       | `WrongMode` | ✓ (index must be in range) | `WrongMode` | `SessionClosed` |
/// | `RejectAll`    | `WrongMode` | ✓         | `WrongMode` | `SessionClosed` |
/// | `AutomateStep` | `WrongMode` | `WrongMode` | ✓      | `SessionClosed` |
/// | `Interrupt`    | ✓ (still discards the cached program) | ✓ | ✓ | `SessionClosed` |
/// | `Finish`       | ✓           | ✓         | ✓        | `SessionClosed` |
///
/// `Interrupt` is the user's emergency stop (paper §2: "if at any point the
/// user spots anything abnormal, they can interrupt"), so it is accepted in
/// every open mode. Like `RejectAll`, it *discards* the cached
/// last-generalizing program: a program the user interrupted must not
/// resurface through [`Session::current_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The user demonstrates one action (step 1 of Fig. 3).
    Demonstrate(Action),
    /// The user accepts prediction `index` (step 4 of Fig. 3).
    Accept {
        /// Index into [`Session::predictions`].
        index: usize,
    },
    /// The user rejects all current predictions (back to demonstration).
    RejectAll,
    /// Execute the best program's next predicted action without
    /// confirmation (step 6 of Fig. 3).
    AutomateStep,
    /// Emergency stop: abandon predictions and the cached program.
    Interrupt,
    /// End the session.
    Finish,
}

impl Event {
    /// Stable lowercase name (the wire protocol's `event.type` field and
    /// the `WrongMode` error payload).
    pub fn name(&self) -> &'static str {
        match self {
            Event::Demonstrate(_) => "demonstrate",
            Event::Accept { .. } => "accept",
            Event::RejectAll => "reject_all",
            Event::AutomateStep => "automate_step",
            Event::Interrupt => "interrupt",
            Event::Finish => "finish",
        }
    }
}

/// Session tuning.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Synthesizer configuration.
    pub synth: SynthConfig,
    /// Consecutive accepted predictions before switching to automation
    /// (the paper's "after a couple of rounds, WebRobot takes over").
    pub accepts_before_automation: usize,
    /// Hard cap on automated actions (runaway protection). Reaching the
    /// cap finishes the session.
    pub max_automation_steps: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            synth: SynthConfig::default(),
            accepts_before_automation: 2,
            max_automation_steps: 10_000,
        }
    }
}

/// What a session step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The action was executed and recorded; predictions may be available.
    Recorded,
    /// Automation executed this action.
    Automated(Action),
    /// No program generalizes: the ball is back in the user's court.
    NeedDemonstration,
    /// The current program produced no further action (task segment done).
    ProgramFinished,
    /// The user interrupted; predictions and the cached program are gone.
    Interrupted,
    /// The session ended.
    Finished,
}

/// The half-finished step a parked synthesis quantum left behind: the
/// action has already been performed and recorded; the prediction
/// refresh and the mode transition run when the search concludes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PendingStep {
    /// A demonstration (outcome [`StepOutcome::Recorded`]).
    Demonstrated,
    /// An accepted prediction — `Recorded` plus the authorize→automate
    /// transition check on completion.
    Accepted,
    /// An automated action (outcome [`StepOutcome::Automated`]).
    Automated(Action),
}

impl StepOutcome {
    /// Stable lowercase rendering (the wire protocol's `outcome` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            StepOutcome::Recorded => "recorded",
            StepOutcome::Automated(_) => "automated",
            StepOutcome::NeedDemonstration => "need_demonstration",
            StepOutcome::ProgramFinished => "program_finished",
            StepOutcome::Interrupted => "interrupted",
            StepOutcome::Finished => "finished",
        }
    }
}

/// A compact, replayable description of a [`Session`] — everything needed
/// to rebuild an equivalent live session, and nothing else (no synthesizer
/// worklists, no memo tables, no live DOM copy).
///
/// Produced by [`Session::snapshot`], consumed by [`Session::restore`].
/// Restoration replays the executed actions through a fresh browser and
/// synthesizer; since both are deterministic, the restored session
/// produces the same predictions and outputs as the original (see the
/// snapshot round-trip tests and `tests/service.rs`).
///
/// # Delta snapshots
///
/// Next to the replayable action history, a snapshot records the engine's
/// **re-synthesis schedule** ([`SessionSnapshot::resynth`]): the trace
/// lengths at which the original session's synthesizer actually ran its
/// worklist instead of answering from the incremental fast path. Between
/// two scheduled points the engine's stored state provably does not move
/// (the fast path returns before touching the worklist), so
/// [`Session::restore`] replays the actions observe-only and re-enters the
/// engine only at the scheduled points — the *delta* of synthesis work
/// since the engine's last full run — finishing with one fast-path call
/// that resumes the cached programs through the engine's own
/// `resume_incremental`/refresh machinery. A snapshot whose schedule was
/// stripped ([`SessionSnapshot::without_schedule`], or a persisted v1
/// record without a `resynth` field) restores through the legacy path:
/// one full synthesis per replayed action.
///
/// The fields are public so `webrobot_service` can persist snapshots in
/// the wire JSON subset and rebuild them when a store is reopened. There
/// is no hidden invariant to break: [`Session::restore`] re-validates a
/// snapshot by replaying it, so a hand-built (or tampered-with) snapshot
/// surfaces as a typed [`SessionError`], never a panic.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The site the session runs on.
    pub site: Arc<Site>,
    /// The session's data source.
    pub input: Value,
    /// The session's configuration (including its synthesis deadline).
    pub cfg: SessionConfig,
    /// Every action executed so far, in absolute-XPath form — what
    /// restoration replays.
    pub executed: Vec<Action>,
    /// The mode the session was in when snapshotted.
    pub mode: Mode,
    /// The predictions on offer when snapshotted.
    pub predictions: Vec<Action>,
    /// Consecutive accepted predictions at snapshot time.
    pub consecutive_accepts: usize,
    /// Automated actions executed at snapshot time.
    pub automated_steps: usize,
    /// The cached last-generalizing program, if any.
    pub last_program: Option<webrobot_lang::Program>,
    /// The delta-restore schedule: the strictly increasing trace lengths
    /// at which the synthesizer ran a full (non-fast-path) worklist pass.
    /// `None` marks a legacy snapshot that restores via full per-action
    /// replay.
    pub resynth: Option<Vec<usize>>,
    /// The synthesizer's stored search state (worklist, processed
    /// rewrites, generalizing programs), captured as an adoptable
    /// [`EngineDigest`]. When both this and [`resynth`] are present,
    /// restoration replays the history observe-only and *adopts* the
    /// engine state instead of re-running any scheduled worklist pass —
    /// the restore floor drops from "replay + scheduled synthesis" to
    /// "replay". `None` (a pre-digest record, or a digest stripped by
    /// [`SessionSnapshot::without_digest`]) restores through the
    /// schedule as before.
    ///
    /// [`resynth`]: SessionSnapshot::resynth
    pub engine: Option<EngineDigest>,
}

impl SessionSnapshot {
    /// The actions executed so far (what restoration replays).
    pub fn executed(&self) -> &[Action] {
        &self.executed
    }

    /// The mode the session was in when snapshotted.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Strips the delta-restore schedule (and with it the engine digest,
    /// which is only usable alongside the schedule), producing a snapshot
    /// that [`Session::restore`] rebuilds through the legacy full-replay
    /// path (one synthesis run per executed action). Used by the eviction
    /// benchmarks to price delta restoration against full replay, and by
    /// the service layer when `delta_restore` is disabled.
    pub fn without_schedule(mut self) -> SessionSnapshot {
        self.resynth = None;
        self.engine = None;
        self
    }

    /// Strips only the engine digest, producing a snapshot that restores
    /// through the schedule-driven delta path (replay observe-only,
    /// re-synthesize at the recorded points). Used to price digest
    /// adoption against scheduled re-synthesis, and by the service layer
    /// when `engine_digest` is disabled.
    pub fn without_digest(mut self) -> SessionSnapshot {
        self.engine = None;
        self
    }
}

/// An interactive programming-by-demonstration session over a simulated
/// website.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_interact::{Event, Mode, Session, SessionConfig};
/// # use webrobot_lang::{Action, Value};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let site = Arc::new(b.start_at(home).finish());
/// let mut session = Session::new(site, Value::Object(vec![]), SessionConfig::default());
/// session.handle(Event::Demonstrate(Action::ScrapeText("/a[1]".parse()?)))?;
/// session.handle(Event::Demonstrate(Action::ScrapeText("/a[2]".parse()?)))?;
/// assert_eq!(session.mode(), Mode::Authorize);
/// assert!(!session.predictions().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    cfg: SessionConfig,
    site: Arc<Site>,
    input: Value,
    browser: Browser,
    synth: Synthesizer,
    mode: Mode,
    predictions: Vec<Action>,
    consecutive_accepts: usize,
    executed: Vec<Action>,
    automated_steps: usize,
    last_program: Option<webrobot_lang::Program>,
    /// Trace lengths at which `refresh_predictions` ran a full
    /// (non-fast-path) synthesis — the delta-restore schedule carried by
    /// [`SessionSnapshot::resynth`]. Strictly increasing: each executed
    /// action triggers exactly one synthesis call.
    resynth: Vec<usize>,
    /// The half-finished step of a parked sliced synthesis (see
    /// [`Session::handle_quantum`]); `None` whenever the session is
    /// driven through the unsliced [`Session::handle`].
    pending: Option<PendingStep>,
}

// One session = one browser + one synthesizer, share-nothing, so a whole
// session can be owned by (and moved between) shard worker threads.
// Compile-time enforced — regressing any layer back to `Rc`/`RefCell`
// fails `cargo check` here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

impl Session {
    /// Opens a session on the site's start page.
    pub fn new(site: Arc<Site>, input: Value, cfg: SessionConfig) -> Session {
        let browser = Browser::new(site.clone(), input.clone());
        let trace = Trace::new(browser.snapshot(), input.clone());
        let synth = Synthesizer::new(cfg.synth.clone(), trace);
        Session {
            cfg,
            site,
            input,
            browser,
            synth,
            mode: Mode::Demonstrate,
            predictions: Vec::new(),
            consecutive_accepts: 0,
            executed: Vec::new(),
            automated_steps: 0,
            last_program: None,
            resynth: Vec::new(),
            pending: None,
        }
    }

    /// Current phase.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The site this session runs on.
    pub fn site(&self) -> &Arc<Site> {
        &self.site
    }

    /// The live browser (current page, outputs scraped so far).
    pub fn browser(&self) -> &Browser {
        &self.browser
    }

    /// Every action executed so far (demonstrated, authorized, automated),
    /// in absolute-XPath form.
    pub fn executed(&self) -> &[Action] {
        &self.executed
    }

    /// Current predictions, best first (paper §6 "Navigating across
    /// multiple predictions").
    pub fn predictions(&self) -> &[Action] {
        &self.predictions
    }

    /// The best generalizing program, if any. Once the task has run to
    /// completion nothing generalizes the finished trace any more (Def. 4.2
    /// demands one further action), so this falls back to the most recent
    /// generalizing program — but only while it still *satisfies* the
    /// trace (Def. 4.1); a cached program invalidated by a later
    /// demonstration, or discarded by an explicit rejection or interrupt,
    /// is not returned.
    pub fn current_program(&self) -> Option<webrobot_lang::Program> {
        self.synth
            .best_program()
            .map(webrobot_lang::Program::new)
            .or_else(|| {
                self.last_program
                    .clone()
                    .filter(|p| satisfies(p.statements(), self.synth.trace()))
            })
    }

    /// Dispatches one event through the state machine. This is the single
    /// entry point every legacy wrapper delegates to; the validity table
    /// lives on [`Event`].
    ///
    /// # Errors
    ///
    /// - [`SessionError::SessionClosed`] for any event once the session is
    ///   [`Mode::Done`];
    /// - [`SessionError::WrongMode`] when the event is not valid in the
    ///   current mode;
    /// - [`SessionError::InvalidPrediction`] for an out-of-range accept;
    /// - [`SessionError::Browser`] when an action fails to replay.
    pub fn handle(&mut self, event: Event) -> Result<StepOutcome, SessionError> {
        if self.mode == Mode::Done {
            return Err(SessionError::SessionClosed);
        }
        match event {
            Event::Demonstrate(ref action) => match self.mode {
                Mode::Demonstrate | Mode::Authorize => self.do_demonstrate(action),
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::Accept { index } => match self.mode {
                Mode::Authorize => self.do_accept(index),
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::RejectAll => match self.mode {
                Mode::Authorize => Ok(self.do_reject_all()),
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::AutomateStep => match self.mode {
                Mode::Automate => self.do_automate_step(),
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::Interrupt => Ok(self.do_interrupt()),
            Event::Finish => {
                self.mode = Mode::Done;
                Ok(StepOutcome::Finished)
            }
        }
    }

    /// Dispatches one event like [`Session::handle`], but bounds the
    /// synthesis work to `budget` of wall-clock time.
    ///
    /// Returns `Ok(Some(outcome))` when the step completed within the
    /// budget — with an outcome identical to what `handle` would have
    /// produced, since quantum-sliced synthesis is exactly equal to
    /// unsliced synthesis — and `Ok(None)` when the action was performed
    /// but the synthesis search parked mid-worklist. A parked session
    /// ([`Session::has_pending`]) must be driven to completion with
    /// [`Session::continue_quantum`] before the next event; the quantum
    /// scheduler in `webrobot_service` round-robins these continuations
    /// across a shard's ready sessions.
    ///
    /// Events that never synthesize (`RejectAll`, `Interrupt`, `Finish`,
    /// and the error paths) always complete immediately.
    ///
    /// # Errors
    ///
    /// Same as [`Session::handle`]; errors only surface before any
    /// synthesis starts, so a failed event never leaves a pending step.
    pub fn handle_quantum(
        &mut self,
        event: Event,
        budget: Duration,
    ) -> Result<Option<StepOutcome>, SessionError> {
        debug_assert!(
            self.pending.is_none(),
            "finish the parked step before dispatching the next event"
        );
        if self.mode == Mode::Done {
            return Err(SessionError::SessionClosed);
        }
        match event {
            Event::Demonstrate(ref action) => match self.mode {
                Mode::Demonstrate | Mode::Authorize => {
                    self.perform_and_record(action)?;
                    self.consecutive_accepts = 0;
                    self.pending = Some(PendingStep::Demonstrated);
                    Ok(self.run_quantum(budget))
                }
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::Accept { index } => match self.mode {
                Mode::Authorize => {
                    let Some(action) = self.predictions.get(index).cloned() else {
                        return Err(SessionError::InvalidPrediction {
                            index,
                            available: self.predictions.len(),
                        });
                    };
                    self.perform_and_record(&action)?;
                    self.consecutive_accepts += 1;
                    self.pending = Some(PendingStep::Accepted);
                    Ok(self.run_quantum(budget))
                }
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            Event::AutomateStep => match self.mode {
                Mode::Automate => {
                    if self.automated_steps >= self.cfg.max_automation_steps {
                        self.mode = Mode::Done;
                        return Ok(Some(StepOutcome::ProgramFinished));
                    }
                    let Some(action) = self.predictions.first().cloned() else {
                        self.mode = Mode::Demonstrate;
                        self.consecutive_accepts = 0;
                        return Ok(Some(StepOutcome::ProgramFinished));
                    };
                    self.perform_and_record(&action)?;
                    self.automated_steps += 1;
                    self.pending = Some(PendingStep::Automated(action));
                    Ok(self.run_quantum(budget))
                }
                mode => Err(SessionError::WrongMode {
                    event: event.name(),
                    mode,
                }),
            },
            // Synthesis-free events complete through the unsliced path.
            other => self.handle(other).map(Some),
        }
    }

    /// Continues a parked step with another `budget` of synthesis work.
    /// Returns the completed outcome, or `None` if the search parked
    /// again. A no-op (returning `None`) when nothing is pending; the
    /// scheduler checks [`Session::has_pending`] before calling.
    pub fn continue_quantum(&mut self, budget: Duration) -> Option<StepOutcome> {
        debug_assert!(self.pending.is_some(), "no parked step to continue");
        self.run_quantum(budget)
    }

    /// `true` while a sliced step is parked mid-synthesis: the action
    /// was performed, but predictions and the mode transition are still
    /// pending. A pending session must not be snapshotted or receive
    /// further events until [`Session::continue_quantum`] completes it.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// One synthesis quantum for the pending step; on completion, runs
    /// the step's deferred tail (prediction refresh + mode transition)
    /// exactly as the unsliced event handler would.
    fn run_quantum(&mut self, budget: Duration) -> Option<StepOutcome> {
        self.pending.as_ref()?;
        let result = self.synth.synthesize_quantum(budget);
        if result.stats.parked {
            return None;
        }
        let pending = self.pending.take()?;
        self.apply_synthesis(result);
        Some(match pending {
            PendingStep::Demonstrated => StepOutcome::Recorded,
            PendingStep::Accepted => {
                if self.mode == Mode::Authorize
                    && self.consecutive_accepts >= self.cfg.accepts_before_automation
                {
                    self.mode = Mode::Automate;
                }
                StepOutcome::Recorded
            }
            PendingStep::Automated(action) => {
                if self.mode == Mode::Authorize {
                    // Stay in automation while predictions keep coming.
                    self.mode = Mode::Automate;
                }
                StepOutcome::Automated(action)
            }
        })
    }

    /// Rewrites an action's selector to the absolute XPath of the node it
    /// denotes on the current page (what the front-end records). Actions
    /// without a selector pass through unchanged.
    fn absolutize(&self, action: &Action) -> Result<Action, BrowserError> {
        let Some(path) = action.selector() else {
            return Ok(action.clone());
        };
        let node =
            path.resolve(self.browser.dom())
                .ok_or_else(|| BrowserError::SelectorNotFound {
                    action: action.to_string(),
                })?;
        let abs = self.browser.dom().absolute_path(node);
        Ok(match action.clone() {
            Action::Click(_) => Action::Click(abs),
            Action::ScrapeText(_) => Action::ScrapeText(abs),
            Action::ScrapeLink(_) => Action::ScrapeLink(abs),
            Action::Download(_) => Action::Download(abs),
            Action::SendKeys(_, s) => Action::SendKeys(abs, s),
            Action::EnterData(_, v) => Action::EnterData(abs, v),
            // Selector-free actions were returned above already.
            a @ (Action::GoBack | Action::ExtractUrl) => a,
        })
    }

    /// Executes `action` on the browser and records it in the trace.
    fn perform_and_record(&mut self, action: &Action) -> Result<Action, BrowserError> {
        let absolute = self.absolutize(action)?;
        self.browser.perform(&absolute)?;
        self.synth
            .observe(absolute.clone(), self.browser.snapshot());
        self.executed.push(absolute.clone());
        Ok(absolute)
    }

    fn do_demonstrate(&mut self, action: &Action) -> Result<StepOutcome, SessionError> {
        self.perform_and_record(action)?;
        self.consecutive_accepts = 0;
        self.refresh_predictions();
        Ok(StepOutcome::Recorded)
    }

    fn refresh_predictions(&mut self) {
        let result = self.synth.synthesize();
        self.apply_synthesis(result);
    }

    /// The shared tail of every synthesis — sliced or not: schedule
    /// bookkeeping, cached program, predictions, and the
    /// demonstrate/authorize mode split.
    fn apply_synthesis(&mut self, result: webrobot_synth::SynthResult) {
        if !result.stats.fast_path {
            // The worklist actually ran at this trace length: record it in
            // the delta-restore schedule. Everywhere else the engine
            // answered from its cached programs without touching stored
            // state, so a restore may skip the call entirely.
            self.resynth.push(self.executed.len());
        }
        if let Some(best) = result.programs.first() {
            self.last_program = Some(best.program.clone());
        }
        self.predictions = result.predictions;
        self.mode = if self.predictions.is_empty() {
            Mode::Demonstrate
        } else {
            Mode::Authorize
        };
    }

    fn do_accept(&mut self, index: usize) -> Result<StepOutcome, SessionError> {
        let Some(action) = self.predictions.get(index).cloned() else {
            return Err(SessionError::InvalidPrediction {
                index,
                available: self.predictions.len(),
            });
        };
        self.perform_and_record(&action)?;
        self.consecutive_accepts += 1;
        self.refresh_predictions();
        if self.mode == Mode::Authorize
            && self.consecutive_accepts >= self.cfg.accepts_before_automation
        {
            self.mode = Mode::Automate;
        }
        Ok(StepOutcome::Recorded)
    }

    fn do_reject_all(&mut self) -> StepOutcome {
        self.predictions.clear();
        self.consecutive_accepts = 0;
        self.last_program = None;
        self.mode = Mode::Demonstrate;
        StepOutcome::NeedDemonstration
    }

    fn do_automate_step(&mut self) -> Result<StepOutcome, SessionError> {
        if self.automated_steps >= self.cfg.max_automation_steps {
            self.mode = Mode::Done;
            return Ok(StepOutcome::ProgramFinished);
        }
        let Some(action) = self.predictions.first().cloned() else {
            self.mode = Mode::Demonstrate;
            self.consecutive_accepts = 0;
            return Ok(StepOutcome::ProgramFinished);
        };
        self.perform_and_record(&action)?;
        self.automated_steps += 1;
        self.refresh_predictions();
        if self.mode == Mode::Authorize {
            // Stay in automation while predictions keep coming.
            self.mode = Mode::Automate;
        }
        Ok(StepOutcome::Automated(action))
    }

    /// Interrupt semantics (pinned by `interrupt_discards_cached_program`):
    /// an interrupt is a rejection of the *running program*, not just of
    /// the pending predictions, so the cached last-generalizing program is
    /// discarded too — it must not resurface via
    /// [`Session::current_program`].
    fn do_interrupt(&mut self) -> StepOutcome {
        self.predictions.clear();
        self.consecutive_accepts = 0;
        self.last_program = None;
        self.mode = Mode::Demonstrate;
        StepOutcome::Interrupted
    }

    // ───────────────────── legacy wrappers ─────────────────────

    /// Step 1 of Fig. 3: the user demonstrates one action. Thin wrapper
    /// over [`Session::handle`] with [`Event::Demonstrate`].
    ///
    /// # Errors
    ///
    /// See [`Session::handle`].
    #[deprecated(
        since = "0.1.0",
        note = "use Session::handle(Event::Demonstrate(action))"
    )]
    pub fn demonstrate(&mut self, action: &Action) -> Result<StepOutcome, SessionError> {
        self.handle(Event::Demonstrate(action.clone()))
    }

    /// Step 4 of Fig. 3: the user accepts prediction `index` or rejects
    /// them all (`None`). Thin wrapper over [`Session::handle`] with
    /// [`Event::Accept`] / [`Event::RejectAll`].
    ///
    /// # Errors
    ///
    /// See [`Session::handle`]. An out-of-range index is
    /// [`SessionError::InvalidPrediction`] (it used to be a panic).
    #[deprecated(
        since = "0.1.0",
        note = "use Session::handle(Event::Accept { index }) / Session::handle(Event::RejectAll)"
    )]
    pub fn authorize(&mut self, index: Option<usize>) -> Result<StepOutcome, SessionError> {
        match index {
            Some(index) => self.handle(Event::Accept { index }),
            None => self.handle(Event::RejectAll),
        }
    }

    /// Step 6 of Fig. 3: one automated step. Thin wrapper over
    /// [`Session::handle`] with [`Event::AutomateStep`].
    ///
    /// # Errors
    ///
    /// See [`Session::handle`].
    #[deprecated(since = "0.1.0", note = "use Session::handle(Event::AutomateStep)")]
    pub fn automate_step(&mut self) -> Result<StepOutcome, SessionError> {
        self.handle(Event::AutomateStep)
    }

    /// The user interrupts (paper §2). Thin wrapper over
    /// [`Session::handle`] with [`Event::Interrupt`].
    ///
    /// # Errors
    ///
    /// [`SessionError::SessionClosed`] if the session already finished.
    #[deprecated(since = "0.1.0", note = "use Session::handle(Event::Interrupt)")]
    pub fn interrupt(&mut self) -> Result<StepOutcome, SessionError> {
        self.handle(Event::Interrupt)
    }

    /// Ends the session. Thin wrapper over [`Session::handle`] with
    /// [`Event::Finish`].
    ///
    /// # Errors
    ///
    /// [`SessionError::SessionClosed`] if the session already finished.
    #[deprecated(since = "0.1.0", note = "use Session::handle(Event::Finish)")]
    pub fn finish(&mut self) -> Result<StepOutcome, SessionError> {
        self.handle(Event::Finish)
    }

    // ───────────────────── snapshot / restore ─────────────────────

    /// Captures a compact, replayable snapshot of this session (site
    /// handle, input, config, executed actions, the delta-restore schedule,
    /// and the user-visible state: mode, predictions, accept/automation
    /// counters, cached program).
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            site: self.site.clone(),
            input: self.input.clone(),
            cfg: self.cfg.clone(),
            executed: self.executed.clone(),
            mode: self.mode,
            predictions: self.predictions.clone(),
            consecutive_accepts: self.consecutive_accepts,
            automated_steps: self.automated_steps,
            last_program: self.last_program.clone(),
            resynth: Some(self.resynth.clone()),
            // An empty history needs no digest: restoration builds a
            // fresh synthesizer, which *is* the state at trace length 0.
            // (`digest()` itself returns `None` only for a parked sliced
            // search, which the service never snapshots.)
            engine: if self.executed.is_empty() {
                None
            } else {
                self.synth.digest()
            },
        }
    }

    /// Rebuilds a live session from a snapshot, then restores the
    /// user-visible state. Browser and synthesizer are deterministic, so
    /// the restored session behaves like the original (modulo synthesis
    /// deadline truncation under extreme load; see `SynthConfig::timeout`).
    ///
    /// With a delta snapshot (`resynth` present — the default) the
    /// executed actions are replayed through the browser and fed to the
    /// synthesizer observe-only; the engine runs only at the recorded
    /// schedule points, plus one final call that resumes the cached
    /// programs through the incremental fast path. This is equivalent to
    /// the legacy full replay because the engine's stored state does not
    /// move during fast-path calls, and refreshing cached programs over a
    /// batch of observations makes exactly the per-observation retention
    /// decisions (pinned by `delta_restore_matches_full_replay` here and
    /// the eviction differentials in `tests/service.rs`) — while skipping
    /// the one-synthesis-per-action cascade that made restoration cost
    /// scale with the whole history.
    ///
    /// A legacy snapshot (`resynth: None`) replays with one synthesis run
    /// per action, exactly as the original session ran; the restored
    /// session re-derives its schedule along the way.
    ///
    /// A snapshot carrying an [`EngineDigest`]
    /// ([`SessionSnapshot::engine`], captured by default) goes one step
    /// further: the replay is entirely observe-only and the engine state
    /// is adopted from the digest, skipping even the scheduled worklist
    /// runs. A digest the adoption check rejects (tampered by hand)
    /// degrades to one full synthesis over the complete trace rather
    /// than failing the restore — the replayed history, not the digest,
    /// is authoritative.
    ///
    /// # Errors
    ///
    /// [`SessionError::Browser`] when a recorded action no longer replays
    /// (only possible for snapshots tampered with by hand).
    pub fn restore(snap: &SessionSnapshot) -> Result<Session, SessionError> {
        let mut session = Session::new(snap.site.clone(), snap.input.clone(), snap.cfg.clone());
        match &snap.resynth {
            // Digest restore: replay the history observe-only — zero
            // synthesize calls — then adopt the captured engine state
            // directly. Equivalent to the schedule-driven path because
            // the digest *is* the state that path would re-derive, and
            // strictly cheaper: the scheduled worklist runs (the restore
            // floor on flat sites, where the schedule front-loads) are
            // skipped entirely.
            Some(schedule) if snap.engine.is_some() && !snap.executed.is_empty() => {
                for action in &snap.executed {
                    session.perform_and_record(action)?;
                }
                let digest = snap.engine.as_ref().expect("guarded by the match arm");
                if !session.synth.adopt_digest(digest) {
                    // A digest inconsistent with the replayed history
                    // (hand-tampered record): fall back to one full
                    // synthesis over the complete trace. Incremental ≡
                    // from-scratch (the differential harness pins it), so
                    // the observable session state is still correct.
                    let _ = session.synth.synthesize();
                }
                session.resynth = schedule.clone();
            }
            Some(schedule) => {
                let mut next = schedule.iter().peekable();
                for (i, action) in snap.executed.iter().enumerate() {
                    session.perform_and_record(action)?;
                    if next.peek() == Some(&&(i + 1)) {
                        next.next();
                        let _ = session.synth.synthesize();
                    }
                }
                // Sync the cached generalizing programs to the full trace
                // unless the last replayed step already ran the engine; by
                // construction this call hits the fast path (the original
                // session's last synthesis did).
                if !snap.executed.is_empty() && schedule.last() != Some(&snap.executed.len()) {
                    let _ = session.synth.synthesize();
                }
                session.resynth = schedule.clone();
            }
            None => {
                for action in &snap.executed {
                    session.perform_and_record(action)?;
                    session.refresh_predictions();
                }
            }
        }
        session.mode = snap.mode;
        session.predictions = snap.predictions.clone();
        session.consecutive_accepts = snap.consecutive_accepts;
        session.automated_steps = snap.automated_steps;
        session.last_program = snap.last_program.clone();
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn session(n: usize) -> Session {
        Session::new(
            anchor_site(n),
            Value::Object(vec![]),
            SessionConfig::default(),
        )
    }

    fn scrape(i: usize) -> Action {
        Action::ScrapeText(format!("/a[{i}]").parse().unwrap())
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_still_delegate_to_handle() {
        // The PR-3 convenience wrappers are deprecated but must keep
        // behaving exactly like the `handle` calls they forward to.
        let mut s = session(6);
        s.demonstrate(&scrape(1)).unwrap();
        s.demonstrate(&scrape(2)).unwrap();
        s.authorize(Some(0)).unwrap();
        s.authorize(Some(0)).unwrap();
        s.automate_step().unwrap();
        assert_eq!(s.interrupt(), Ok(StepOutcome::Interrupted));
        assert_eq!(s.finish(), Ok(StepOutcome::Finished));
        assert_eq!(s.authorize(None), Err(SessionError::SessionClosed));
    }

    #[test]
    fn demo_auth_auto_workflow() {
        let mut s = session(6);
        assert_eq!(s.mode(), Mode::Demonstrate);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        assert_eq!(s.mode(), Mode::Demonstrate, "one action cannot generalize");
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        // Accept twice → automation takes over.
        s.handle(Event::Accept { index: 0 }).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        s.handle(Event::Accept { index: 0 }).unwrap();
        assert_eq!(s.mode(), Mode::Automate);
        // Automation scrapes the remaining items, then the loop finishes.
        let mut automated = 0;
        while s.mode() == Mode::Automate {
            match s.handle(Event::AutomateStep).unwrap() {
                StepOutcome::Automated(_) => automated += 1,
                StepOutcome::ProgramFinished => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(automated, 2, "items 5 and 6");
        assert_eq!(s.executed().len(), 6);
        assert_eq!(s.browser().outputs().len(), 6);
        assert_eq!(s.mode(), Mode::Demonstrate);
    }

    #[test]
    fn reject_returns_to_demonstration() {
        let mut s = session(4);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        assert_eq!(
            s.handle(Event::RejectAll),
            Ok(StepOutcome::NeedDemonstration)
        );
        assert_eq!(s.mode(), Mode::Demonstrate);
        assert!(s.predictions().is_empty());
    }

    #[test]
    fn interrupt_stops_automation() {
        let mut s = session(8);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        assert_eq!(s.mode(), Mode::Automate);
        s.handle(Event::AutomateStep).unwrap();
        assert_eq!(s.handle(Event::Interrupt), Ok(StepOutcome::Interrupted));
        assert_eq!(s.mode(), Mode::Demonstrate);
        assert_eq!(s.executed().len(), 5);
    }

    #[test]
    fn failed_demonstration_is_an_error() {
        let mut s = session(2);
        assert!(matches!(
            s.handle(Event::Demonstrate(scrape(9))),
            Err(SessionError::Browser(_))
        ));
        assert!(s.executed().is_empty());
    }

    /// Regression (used to panic): accepting an out-of-range prediction is
    /// a typed error and leaves the session untouched.
    #[test]
    fn out_of_range_accept_is_a_typed_error() {
        let mut s = session(4);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        let available = s.predictions().len();
        let err = s
            .handle(Event::Accept {
                index: available + 5,
            })
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::InvalidPrediction {
                index: available + 5,
                available
            }
        );
        // Nothing executed, session still usable.
        assert_eq!(s.executed().len(), 2);
        assert_eq!(s.mode(), Mode::Authorize);
        s.handle(Event::Accept { index: 0 }).unwrap();
        assert_eq!(s.executed().len(), 3);
    }

    /// Regression (used to execute silently): no event is accepted after
    /// the session finished, and nothing touches the browser.
    #[test]
    fn events_after_finish_are_rejected() {
        let mut s = session(4);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        assert_eq!(s.handle(Event::Finish), Ok(StepOutcome::Finished));
        assert_eq!(s.mode(), Mode::Done);
        let executed = s.executed().len();
        let outputs = s.browser().outputs().len();
        assert_eq!(
            s.handle(Event::Demonstrate(scrape(2))),
            Err(SessionError::SessionClosed)
        );
        assert_eq!(
            s.handle(Event::AutomateStep),
            Err(SessionError::SessionClosed)
        );
        assert_eq!(
            s.handle(Event::Accept { index: 0 }),
            Err(SessionError::SessionClosed)
        );
        assert_eq!(s.handle(Event::RejectAll), Err(SessionError::SessionClosed));
        assert_eq!(s.handle(Event::Interrupt), Err(SessionError::SessionClosed));
        assert_eq!(s.handle(Event::Finish), Err(SessionError::SessionClosed));
        assert_eq!(s.executed().len(), executed, "no side effects after Done");
        assert_eq!(s.browser().outputs().len(), outputs);
    }

    /// Events outside their mode are `WrongMode`, not executed.
    #[test]
    fn wrong_mode_events_are_rejected() {
        let mut s = session(6);
        // Demonstrate mode: accept / reject / automate are invalid.
        for (event, name) in [
            (Event::Accept { index: 0 }, "accept"),
            (Event::RejectAll, "reject_all"),
            (Event::AutomateStep, "automate_step"),
        ] {
            assert_eq!(
                s.handle(event),
                Err(SessionError::WrongMode {
                    event: name,
                    mode: Mode::Demonstrate
                })
            );
        }
        // Automate mode: demonstrating without interrupting first is invalid.
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        assert_eq!(s.mode(), Mode::Automate);
        assert_eq!(
            s.handle(Event::Demonstrate(scrape(1))),
            Err(SessionError::WrongMode {
                event: "demonstrate",
                mode: Mode::Automate
            })
        );
        assert_eq!(s.executed().len(), 4);
    }

    /// The user may keep demonstrating past pending predictions (paper §6:
    /// predictions are suggestions, not obligations).
    #[test]
    fn demonstrating_past_predictions_is_allowed() {
        let mut s = session(6);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        assert_eq!(s.mode(), Mode::Authorize);
        s.handle(Event::Demonstrate(scrape(3))).unwrap();
        assert_eq!(s.executed().len(), 3);
    }

    /// Pinned semantics: an interrupt discards the cached program — a
    /// program the user rejected by interrupting must not resurface via
    /// `current_program`. (It used to survive the interrupt.)
    #[test]
    fn interrupt_discards_cached_program() {
        let mut s = session(4);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        // Run automation to the end of the list: the trace is complete, so
        // nothing generalizes it and `current_program` falls back to the
        // cached last program.
        while s.mode() == Mode::Automate {
            if s.handle(Event::AutomateStep).unwrap() == StepOutcome::ProgramFinished {
                break;
            }
        }
        assert!(
            s.current_program().is_some(),
            "completed run keeps its program"
        );
        s.handle(Event::Interrupt).unwrap();
        assert_eq!(
            s.current_program(),
            None,
            "interrupt must discard the cached program"
        );
    }

    /// Snapshot → restore round-trips mid-workflow: the restored session
    /// produces the same predictions and continues identically.
    #[test]
    fn snapshot_restore_round_trips() {
        let mut original = session(8);
        original.handle(Event::Demonstrate(scrape(1))).unwrap();
        original.handle(Event::Demonstrate(scrape(2))).unwrap();
        original.handle(Event::Accept { index: 0 }).unwrap();
        let snap = original.snapshot();
        assert_eq!(snap.executed().len(), 3);
        assert_eq!(snap.mode(), Mode::Authorize);

        let mut restored = Session::restore(&snap).unwrap();
        assert_eq!(restored.mode(), original.mode());
        assert_eq!(restored.executed(), original.executed());
        assert_eq!(restored.predictions(), original.predictions());
        assert_eq!(
            restored.browser().outputs(),
            original.browser().outputs(),
            "scraped outputs replay identically"
        );

        // Both sessions continue identically to the end of the task.
        loop {
            let (a, b) = (
                original.handle(Event::Accept { index: 0 }),
                restored.handle(Event::Accept { index: 0 }),
            );
            assert_eq!(a, b);
            assert_eq!(original.mode(), restored.mode());
            assert_eq!(original.predictions(), restored.predictions());
            if original.mode() != Mode::Authorize {
                break;
            }
        }
        while original.mode() == Mode::Automate {
            assert_eq!(
                original.handle(Event::AutomateStep),
                restored.handle(Event::AutomateStep)
            );
        }
        assert_eq!(original.browser().outputs(), restored.browser().outputs());
        assert_eq!(original.executed(), restored.executed());
    }

    /// The delta-restore schedule records exactly the non-fast-path
    /// synthesis points and rides along in the snapshot.
    #[test]
    fn resynth_schedule_is_recorded_and_snapshotted() {
        let mut s = session(6);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        let snap = s.snapshot();
        let schedule = snap.resynth.clone().expect("delta snapshots by default");
        // The first synthesis can never answer from an (empty) program
        // cache, so the schedule always starts at trace length 1.
        assert_eq!(schedule.first(), Some(&1));
        assert!(
            schedule.windows(2).all(|w| w[0] < w[1]),
            "strictly increasing: one synthesis per executed action"
        );
        // Steady-state accepts ride the fast path: the schedule stops
        // growing while the cached program keeps predicting.
        let before = schedule.len();
        s.handle(Event::Accept { index: 0 }).unwrap();
        s.handle(Event::Accept { index: 0 }).unwrap();
        let after = s.snapshot().resynth.unwrap();
        assert_eq!(&after[..before], &schedule[..]);
        assert_eq!(after.len(), before, "accepts answered from the fast path");
    }

    /// Delta restoration ≡ legacy full replay ≡ the original session: all
    /// three continue identically to the end of the task, and the legacy
    /// path re-derives the same schedule the delta path carried over.
    #[test]
    fn delta_restore_matches_full_replay() {
        let mut original = session(8);
        original.handle(Event::Demonstrate(scrape(1))).unwrap();
        original.handle(Event::Demonstrate(scrape(2))).unwrap();
        original.handle(Event::Accept { index: 0 }).unwrap();
        let snap = original.snapshot();
        let mut delta = Session::restore(&snap).unwrap();
        let mut full = Session::restore(&snap.clone().without_schedule()).unwrap();

        for s in [&delta, &full] {
            assert_eq!(s.mode(), original.mode());
            assert_eq!(s.executed(), original.executed());
            assert_eq!(s.predictions(), original.predictions());
            assert_eq!(s.browser().outputs(), original.browser().outputs());
            assert_eq!(s.current_program(), original.current_program());
        }

        loop {
            let a = original.handle(Event::Accept { index: 0 });
            assert_eq!(a, delta.handle(Event::Accept { index: 0 }));
            assert_eq!(a, full.handle(Event::Accept { index: 0 }));
            assert_eq!(original.predictions(), delta.predictions());
            assert_eq!(original.predictions(), full.predictions());
            if original.mode() != Mode::Authorize {
                break;
            }
        }
        while original.mode() == Mode::Automate {
            let a = original.handle(Event::AutomateStep);
            assert_eq!(a, delta.handle(Event::AutomateStep));
            assert_eq!(a, full.handle(Event::AutomateStep));
        }
        assert_eq!(original.browser().outputs(), delta.browser().outputs());
        assert_eq!(original.browser().outputs(), full.browser().outputs());
        assert_eq!(original.executed(), delta.executed());
        assert_eq!(original.snapshot().resynth, delta.snapshot().resynth);
        assert_eq!(original.snapshot().resynth, full.snapshot().resynth);
    }

    /// Digest restore ≡ schedule-driven delta restore ≡ legacy full
    /// replay: all three rebuild a session that continues identically,
    /// and the digest variant is the only one that runs zero synthesize
    /// calls during replay (witnessed by the adopted engine answering
    /// the next event from the fast path exactly like the original).
    #[test]
    fn digest_restore_matches_schedule_and_full_replay() {
        let mut original = session(8);
        original.handle(Event::Demonstrate(scrape(1))).unwrap();
        original.handle(Event::Demonstrate(scrape(2))).unwrap();
        original.handle(Event::Accept { index: 0 }).unwrap();
        let snap = original.snapshot();
        assert!(snap.engine.is_some(), "snapshots carry a digest by default");
        let mut digest = Session::restore(&snap).unwrap();
        let mut sched = Session::restore(&snap.clone().without_digest()).unwrap();
        let mut full = Session::restore(&snap.clone().without_schedule()).unwrap();

        for s in [&digest, &sched, &full] {
            assert_eq!(s.mode(), original.mode());
            assert_eq!(s.executed(), original.executed());
            assert_eq!(s.predictions(), original.predictions());
            assert_eq!(s.browser().outputs(), original.browser().outputs());
            assert_eq!(s.current_program(), original.current_program());
        }

        loop {
            let a = original.handle(Event::Accept { index: 0 });
            assert_eq!(a, digest.handle(Event::Accept { index: 0 }));
            assert_eq!(a, sched.handle(Event::Accept { index: 0 }));
            assert_eq!(a, full.handle(Event::Accept { index: 0 }));
            assert_eq!(original.predictions(), digest.predictions());
            if original.mode() != Mode::Authorize {
                break;
            }
        }
        while original.mode() == Mode::Automate {
            let a = original.handle(Event::AutomateStep);
            assert_eq!(a, digest.handle(Event::AutomateStep));
            assert_eq!(a, sched.handle(Event::AutomateStep));
            assert_eq!(a, full.handle(Event::AutomateStep));
        }
        assert_eq!(original.browser().outputs(), digest.browser().outputs());
        assert_eq!(original.snapshot().resynth, digest.snapshot().resynth);
        assert_eq!(original.snapshot().engine, digest.snapshot().engine);
    }

    /// A tampered digest degrades to a correct (re-synthesized) restore
    /// instead of failing: the replayed history is authoritative.
    #[test]
    fn tampered_digest_degrades_to_resynthesis() {
        let mut s = session(6);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        let mut snap = s.snapshot();
        let digest = snap.engine.as_mut().unwrap();
        digest.synced_len = 99; // inconsistent with any replayed trace
        let restored = Session::restore(&snap).unwrap();
        assert_eq!(restored.mode(), s.mode());
        assert_eq!(restored.predictions(), s.predictions());
        assert_eq!(restored.current_program(), s.current_program());
    }

    /// Re-eviction after a delta restore keeps working: snapshot → delta
    /// restore → snapshot → delta restore round-trips (the thrash pattern
    /// the service's LRU eviction produces).
    #[test]
    fn repeated_delta_snapshot_cycles_round_trip() {
        let mut reference = session(7);
        let mut thrashed = Session::restore(&session(7).snapshot()).unwrap();
        let drive = |s: &mut Session, event: Event| s.handle(event);
        for i in 1..=2 {
            assert_eq!(
                drive(&mut reference, Event::Demonstrate(scrape(i))),
                drive(&mut thrashed, Event::Demonstrate(scrape(i)))
            );
            // Evict + delta-restore the subject between every event.
            thrashed = Session::restore(&thrashed.snapshot()).unwrap();
        }
        while reference.mode() == Mode::Authorize {
            assert_eq!(
                drive(&mut reference, Event::Accept { index: 0 }),
                drive(&mut thrashed, Event::Accept { index: 0 })
            );
            assert_eq!(reference.predictions(), thrashed.predictions());
            thrashed = Session::restore(&thrashed.snapshot()).unwrap();
        }
        while reference.mode() == Mode::Automate {
            assert_eq!(
                reference.handle(Event::AutomateStep),
                thrashed.handle(Event::AutomateStep)
            );
            thrashed = Session::restore(&thrashed.snapshot()).unwrap();
        }
        assert_eq!(reference.browser().outputs(), thrashed.browser().outputs());
        assert_eq!(reference.executed(), thrashed.executed());
    }

    /// Drives an event through the sliced path to completion (one
    /// worklist item per quantum — maximal slicing) and reports whether
    /// the step ever parked.
    fn drive_quantum(s: &mut Session, event: Event) -> (Result<StepOutcome, SessionError>, bool) {
        match s.handle_quantum(event, Duration::ZERO) {
            Err(e) => (Err(e), false),
            Ok(Some(outcome)) => (Ok(outcome), false),
            Ok(None) => loop {
                assert!(s.has_pending());
                if let Some(outcome) = s.continue_quantum(Duration::ZERO) {
                    assert!(!s.has_pending());
                    return (Ok(outcome), true);
                }
            },
        }
    }

    /// The sliced event path is observably identical to the unsliced
    /// one across a whole demo→authorize→automate workflow, including
    /// error probes, even when every search is parked after every item.
    #[test]
    fn quantum_workflow_matches_unsliced() {
        let mut sliced = session(6);
        let mut unsliced = session(6);
        let mut ever_parked = false;
        let probe = |s: &Session| {
            (
                s.mode(),
                s.predictions().to_vec(),
                s.executed().len(),
                s.browser().outputs().to_vec(),
                s.snapshot().resynth,
            )
        };
        let events: Vec<Event> = vec![
            Event::Demonstrate(scrape(1)),
            Event::AutomateStep, // WrongMode probe
            Event::Demonstrate(scrape(2)),
            Event::Accept { index: 7 }, // InvalidPrediction probe
            Event::Accept { index: 0 },
            Event::Accept { index: 0 },
            Event::AutomateStep,
            Event::AutomateStep,
            Event::AutomateStep, // past the last anchor: ProgramFinished
            Event::Finish,
        ];
        for event in events {
            let (got, parked) = drive_quantum(&mut sliced, event.clone());
            let want = unsliced.handle(event);
            assert_eq!(got, want);
            assert_eq!(probe(&mut sliced), probe(&mut unsliced));
            ever_parked |= parked;
        }
        assert!(ever_parked, "zero-budget quanta actually sliced a search");
    }

    /// Synthesis-free events complete in one quantum regardless of
    /// budget.
    #[test]
    fn synthesis_free_events_never_park() {
        let mut s = session(5);
        assert_eq!(
            s.handle_quantum(Event::Demonstrate(scrape(1)), Duration::from_secs(60)),
            Ok(Some(StepOutcome::Recorded))
        );
        let (out, _) = drive_quantum(&mut s, Event::Demonstrate(scrape(2)));
        assert_eq!(out, Ok(StepOutcome::Recorded));
        assert_eq!(s.mode(), Mode::Authorize);
        assert_eq!(
            s.handle_quantum(Event::RejectAll, Duration::ZERO),
            Ok(Some(StepOutcome::NeedDemonstration))
        );
        assert_eq!(
            s.handle_quantum(Event::Interrupt, Duration::ZERO),
            Ok(Some(StepOutcome::Interrupted))
        );
        assert_eq!(
            s.handle_quantum(Event::Finish, Duration::ZERO),
            Ok(Some(StepOutcome::Finished))
        );
        assert_eq!(
            s.handle_quantum(Event::Finish, Duration::ZERO),
            Err(SessionError::SessionClosed)
        );
    }

    /// A snapshot taken right after a rejection restores with cleared
    /// predictions (the replay alone would re-derive them).
    #[test]
    fn snapshot_preserves_rejection_state() {
        let mut s = session(5);
        s.handle(Event::Demonstrate(scrape(1))).unwrap();
        s.handle(Event::Demonstrate(scrape(2))).unwrap();
        s.handle(Event::RejectAll).unwrap();
        let restored = Session::restore(&s.snapshot()).unwrap();
        assert_eq!(restored.mode(), Mode::Demonstrate);
        assert!(restored.predictions().is_empty());
        // Rejection clears the cached fallback, not the engine's live
        // results: both sessions agree either way.
        assert_eq!(restored.current_program(), s.current_program());
    }
}
