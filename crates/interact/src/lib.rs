//! The human-in-the-loop interaction model (paper §6) and simulated users
//! (for the §7.3 experiments).
//!
//! A [`Session`] is a *total, typed state machine* over [`Event`]s —
//! every invalid input is a [`SessionError`], never a panic — implementing
//! the schematic workflow of paper Fig. 3:
//!
//! 1. **Demonstrate** — the user performs actions; each is executed on the
//!    live (simulated) browser, recorded with its DOM snapshot, and handed
//!    to the incremental synthesizer;
//! 2. **Synthesize + predict** — after every action the engine proposes the
//!    next action(s);
//! 3. **Authorize** — the user accepts or rejects each prediction; accepted
//!    predictions are executed and fed back as if demonstrated;
//! 4. **Automate** — after enough consecutive accepts the session executes
//!    predictions without asking, until the program stops producing actions
//!    or the user interrupts.
//!
//! Sessions are also *suspendable*: [`Session::snapshot`] captures a
//! compact replayable description and [`Session::restore`] rebuilds an
//! equivalent live session — the substrate for `webrobot_service`'s
//! multi-session eviction.
//!
//! [`OracleUser`] replays a recorded ground-truth demonstration through a
//! session, accepting exactly the correct predictions — the driver for the
//! end-to-end experiment. [`UserModel`] adds per-action latencies and
//! mistake injection for the simulated user study (a substitution for the
//! paper's human participants; see `DESIGN.md` §4).

#![warn(missing_docs)]

mod error;
mod session;
mod user;

pub use error::SessionError;
pub use session::{Event, Mode, Session, SessionConfig, SessionSnapshot, StepOutcome};
// Re-exported so snapshot persistence layers can name the digest type
// (and the worklist items inside it) without depending on the synthesis
// crate directly.
pub use user::{drive_session, LatencyModel, OracleUser, SessionReport, UserModel};
pub use webrobot_synth::{EngineDigest, Item};
