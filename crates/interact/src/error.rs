//! Typed session errors.
//!
//! Every public entry point of this crate is *total*: invalid input is a
//! [`SessionError`], never a panic. The error's [`code`](SessionError::code)
//! doubles as the stable machine-readable identifier used by the
//! `webrobot_service` wire protocol (see `PROTOCOL.md` at the repo root).

use std::error::Error;
use std::fmt;

use webrobot_browser::BrowserError;

use crate::session::Mode;

/// Why a session rejected an [`Event`](crate::Event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `Accept { index }` with `index` out of range of the current
    /// predictions (this used to be a panic).
    InvalidPrediction {
        /// The requested prediction index.
        index: usize,
        /// How many predictions are currently on offer.
        available: usize,
    },
    /// The session is [`Mode::Done`]: no further event is accepted (calls
    /// used to be silently executed).
    SessionClosed,
    /// The event is not valid in the session's current mode (e.g.
    /// `AutomateStep` while demonstrating).
    WrongMode {
        /// The rejected event, rendered (e.g. `"accept"`).
        event: &'static str,
        /// The mode the session was in.
        mode: Mode,
    },
    /// The underlying browser could not replay an action.
    Browser(BrowserError),
}

impl SessionError {
    /// Stable machine-readable error code (the wire protocol's
    /// `error.code` field).
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::InvalidPrediction { .. } => "invalid_prediction",
            SessionError::SessionClosed => "session_closed",
            SessionError::WrongMode { .. } => "wrong_mode",
            SessionError::Browser(_) => "browser_error",
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidPrediction { index, available } => write!(
                f,
                "prediction index {index} is out of range ({available} available)"
            ),
            SessionError::SessionClosed => write!(f, "the session has finished"),
            SessionError::WrongMode { event, mode } => {
                write!(f, "event '{event}' is not valid in mode {mode:?}")
            }
            SessionError::Browser(e) => write!(f, "browser error: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Browser(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BrowserError> for SessionError {
    fn from(e: BrowserError) -> SessionError {
        SessionError::Browser(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(
            SessionError::InvalidPrediction {
                index: 3,
                available: 1
            }
            .code(),
            "invalid_prediction"
        );
        assert_eq!(SessionError::SessionClosed.code(), "session_closed");
        assert_eq!(
            SessionError::WrongMode {
                event: "accept",
                mode: Mode::Demonstrate
            }
            .code(),
            "wrong_mode"
        );
        assert_eq!(
            SessionError::Browser(BrowserError::NoHistory).code(),
            "browser_error"
        );
    }

    #[test]
    fn browser_errors_wrap_with_source() {
        let e = SessionError::from(BrowserError::NoHistory);
        assert!(matches!(e, SessionError::Browser(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("history"));
    }
}
