//! Simulated users: the substitution for the paper's §7.3 human
//! participants (documented in `DESIGN.md` §4).

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use webrobot_browser::Site;
use webrobot_data::Value;
use webrobot_dom::Dom;
use webrobot_lang::{Action, ActionKind};
use webrobot_semantics::{action_consistent, Trace};

use crate::session::{Event, Mode, Session, SessionConfig, StepOutcome};

/// A scripted user that knows the intended action sequence (the recorded
/// ground-truth trace) and authorizes predictions accordingly.
#[derive(Debug, Clone)]
pub struct OracleUser {
    script: Vec<Action>,
    pos: usize,
}

impl OracleUser {
    /// Builds an oracle from the recorded ground-truth trace.
    pub fn new(recording: &Trace) -> OracleUser {
        OracleUser {
            script: recording.actions().to_vec(),
            pos: 0,
        }
    }

    /// The next intended action, if any remain.
    pub fn next_action(&self) -> Option<&Action> {
        self.script.get(self.pos)
    }

    /// Whether `prediction` matches the next intended action on `dom`.
    pub fn approves(&self, prediction: &Action, dom: &Dom) -> bool {
        match self.next_action() {
            Some(want) => action_consistent(prediction, want, dom),
            None => false,
        }
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    /// `true` when the whole script has been executed.
    pub fn done(&self) -> bool {
        self.pos >= self.script.len()
    }
}

/// Per-action latency model for the simulated user study: how long a human
/// takes to perform / approve an action, in milliseconds (sampled
/// uniformly from the given ranges).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Drag-and-drop data entry (paper §6: slow, deliberate).
    pub enter_data_ms: (u64, u64),
    /// Clicks and scrape selections.
    pub click_ms: (u64, u64),
    /// Inspecting + accepting one prediction.
    pub authorize_ms: (u64, u64),
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            enter_data_ms: (2500, 4500),
            click_ms: (900, 2200),
            authorize_ms: (600, 1400),
        }
    }
}

impl LatencyModel {
    fn demonstrate(&self, rng: &mut StdRng, action: &Action) -> Duration {
        let (lo, hi) = match action.kind() {
            ActionKind::EnterData | ActionKind::SendKeys => self.enter_data_ms,
            _ => self.click_ms,
        };
        Duration::from_millis(rng.gen_range(lo..=hi))
    }

    fn authorize(&self, rng: &mut StdRng) -> Duration {
        let (lo, hi) = self.authorize_ms;
        Duration::from_millis(rng.gen_range(lo..=hi))
    }
}

/// A simulated participant: an oracle plus latency and mistake models.
#[derive(Debug, Clone)]
pub struct UserModel {
    /// RNG seed (one per participant).
    pub seed: u64,
    /// Probability of a mis-click per demonstrated action (paper §7.3:
    /// "novice users make mistakes"; a mistake forces a session restart).
    pub mistake_rate: f64,
    /// Latency model.
    pub latency: LatencyModel,
}

impl Default for UserModel {
    fn default() -> UserModel {
        UserModel {
            seed: 7,
            mistake_rate: 0.0,
            latency: LatencyModel::default(),
        }
    }
}

/// Outcome of driving one session to completion.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The entire intended script was executed consistently.
    pub solved: bool,
    /// Actions the user demonstrated manually.
    pub demonstrated: usize,
    /// Predictions accepted one-by-one in the authorization phase.
    pub authorized: usize,
    /// Actions executed by automation.
    pub automated: usize,
    /// Times the user interrupted automation.
    pub interruptions: usize,
    /// Times a mistake forced a session restart.
    pub restarts: usize,
    /// Simulated human time spent demonstrating + authorizing.
    pub human_time: Duration,
}

/// Drives a full session with a simulated user over `site`: demonstrate
/// when the engine has nothing, authorize correct predictions, let
/// automation run, interrupt on divergence — the end-to-end protocol of
/// paper §7.3.
///
/// `max_restarts` bounds mistake-induced restarts before giving up.
pub fn drive_session(
    site: Arc<Site>,
    input: Value,
    recording: &Trace,
    cfg: SessionConfig,
    user: &UserModel,
    max_restarts: usize,
) -> SessionReport {
    let mut rng = StdRng::seed_from_u64(user.seed);
    let mut restarts = 0;
    loop {
        let report = drive_once(
            site.clone(),
            input.clone(),
            recording,
            cfg.clone(),
            user,
            &mut rng,
        );
        match report {
            Ok(mut r) => {
                r.restarts = restarts;
                return r;
            }
            Err(mut r) => {
                restarts += 1;
                if restarts > max_restarts {
                    r.restarts = restarts;
                    return r;
                }
            }
        }
    }
}

/// One attempt; `Err` means a mistake happened and the session restarts.
#[allow(clippy::result_large_err)]
fn drive_once(
    site: Arc<Site>,
    input: Value,
    recording: &Trace,
    cfg: SessionConfig,
    user: &UserModel,
    rng: &mut StdRng,
) -> Result<SessionReport, SessionReport> {
    let mut session = Session::new(site, input, cfg);
    let mut oracle = OracleUser::new(recording);
    let mut report = SessionReport {
        solved: false,
        demonstrated: 0,
        authorized: 0,
        automated: 0,
        interruptions: 0,
        restarts: 0,
        human_time: Duration::ZERO,
    };
    let step_limit = recording.actions().len() * 4 + 64;
    let mut steps = 0;
    loop {
        steps += 1;
        if steps > step_limit {
            return Ok(report); // stuck: unsolved
        }
        match session.mode() {
            Mode::Demonstrate => {
                let Some(action) = oracle.next_action().cloned() else {
                    report.solved = true;
                    session.handle(Event::Finish).ok();
                    return Ok(report);
                };
                report.human_time += user.latency.demonstrate(rng, &action);
                if rng.gen_bool(user.mistake_rate) {
                    // Mis-click: the paper's protocol restarts the tool.
                    return Err(report);
                }
                if session.handle(Event::Demonstrate(action.clone())).is_err() {
                    // Front-end replay failure: unsolved.
                    return Ok(report);
                }
                report.demonstrated += 1;
                oracle.advance();
            }
            Mode::Authorize => {
                report.human_time += user.latency.authorize(rng);
                let choice = session
                    .predictions()
                    .iter()
                    .position(|p| oracle.approves(p, session.browser().dom()));
                match choice {
                    Some(i) => {
                        if session.handle(Event::Accept { index: i }).is_err() {
                            return Ok(report);
                        }
                        report.authorized += 1;
                        oracle.advance();
                    }
                    None => {
                        session.handle(Event::RejectAll).ok();
                    }
                }
            }
            Mode::Automate => {
                // The user watches; a divergent prediction triggers an
                // interrupt before it executes.
                let next_ok = session
                    .predictions()
                    .first()
                    .is_some_and(|p| oracle.approves(p, session.browser().dom()));
                if !next_ok {
                    session.handle(Event::Interrupt).ok();
                    report.interruptions += 1;
                    continue;
                }
                match session.handle(Event::AutomateStep) {
                    Ok(StepOutcome::Automated(_)) => {
                        report.automated += 1;
                        oracle.advance();
                    }
                    Ok(_) => {}
                    Err(_) => return Ok(report),
                }
            }
            Mode::Done => {
                report.solved = oracle.done();
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_benchmarks::benchmark;

    #[test]
    fn oracle_solves_a_simple_benchmark() {
        let b = benchmark(73).unwrap(); // plain headline list
        let rec = b.record().unwrap();
        let report = drive_session(
            b.site.clone(),
            b.input.clone(),
            &rec.trace,
            SessionConfig::default(),
            &UserModel::default(),
            2,
        );
        assert!(report.solved, "{report:?}");
        assert!(report.demonstrated <= 4, "few manual actions: {report:?}");
        assert!(report.automated > 0);
        assert!(report.human_time > Duration::ZERO);
    }

    #[test]
    fn oracle_solves_pagination_with_mid_task_demos() {
        let b = benchmark(7).unwrap(); // tiny paginated list
        let rec = b.record().unwrap();
        let report = drive_session(
            b.site.clone(),
            b.input.clone(),
            &rec.trace,
            SessionConfig::default(),
            &UserModel::default(),
            2,
        );
        assert!(report.solved, "{report:?}");
        assert_eq!(
            report.demonstrated + report.authorized + report.automated,
            rec.trace.len()
        );
    }

    #[test]
    fn disjunctive_benchmark_is_not_solved() {
        let b = benchmark(1).unwrap();
        let rec = b.record().unwrap();
        let report = drive_session(
            b.site.clone(),
            b.input.clone(),
            &rec.trace,
            SessionConfig::default(),
            &UserModel::default(),
            1,
        );
        // The user can always brute-force by demonstrating everything, but
        // then nothing was automated — we count that as unsolved-by-PBD.
        assert!(report.automated < rec.trace.len() / 2, "{report:?}");
    }

    #[test]
    fn mistakes_cause_restarts() {
        let b = benchmark(73).unwrap();
        let rec = b.record().unwrap();
        let user = UserModel {
            mistake_rate: 0.9,
            seed: 3,
            ..UserModel::default()
        };
        let report = drive_session(
            b.site.clone(),
            b.input.clone(),
            &rec.trace,
            SessionConfig::default(),
            &user,
            3,
        );
        assert!(report.restarts >= 1);
    }
}
