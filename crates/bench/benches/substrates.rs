//! Criterion benches for the substrates the synthesizer leans on: trace
//! semantics execution, selector resolution, alternative-selector
//! enumeration, and ground-truth recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webrobot_benchmarks::benchmark;
use webrobot_dom::{alternatives, AltConfig};
use webrobot_semantics::execute;

/// Trace-semantics simulation of a ground truth over its own recording —
/// the inner operation of `Validate` (Alg. 3).
fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantics_execute");
    for id in [73u32, 12, 31, 59] {
        let b = benchmark(id).unwrap();
        let rec = b.record().unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{id}")),
            &rec,
            |bench, r| {
                bench.iter(|| {
                    std::hint::black_box(
                        execute(b.ground_truth.statements(), r.trace.doms(), r.trace.input())
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Alternative-selector enumeration on a recorded action's node (the inner
/// operation of anti-unification and parametrization).
fn bench_alternatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternative_selectors");
    for id in [12u32, 31] {
        let b = benchmark(id).unwrap();
        let rec = b.record().unwrap();
        let action = rec.trace.actions()[0].clone();
        let dom = rec.trace.doms()[0].clone();
        let path = action.selector().unwrap().clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{id}")),
            &dom,
            |bench, d| {
                let cfg = AltConfig::default();
                bench.iter(|| std::hint::black_box(alternatives(d, &path, &cfg)));
            },
        );
    }
    group.finish();
}

/// Cached vs uncached selector resolution over a recording's action
/// paths — the loop-guard hot path the per-DOM resolution cache targets.
/// The cached rows re-resolve against the same DOM snapshot (everything
/// after the first pass is a hit); the uncached rows walk the DOM every
/// time, which is what every resolution cost before the cache landed.
fn bench_path_resolution(c: &mut Criterion) {
    for cached in [true, false] {
        let mut group = c.benchmark_group(if cached {
            "path_resolve_cached"
        } else {
            "path_resolve_uncached"
        });
        for id in [12u32, 31] {
            let b = benchmark(id).unwrap();
            let rec = b.record().unwrap();
            let dom = rec.trace.doms()[0].clone();
            let paths: Vec<_> = rec
                .trace
                .actions()
                .iter()
                .filter_map(|a| a.selector().cloned())
                .collect();
            assert!(!paths.is_empty());
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("b{id}")),
                &dom,
                |bench, d| {
                    bench.iter(|| {
                        for path in &paths {
                            let hit = if cached {
                                path.resolve(d)
                            } else {
                                path.resolve_uncached(d)
                            };
                            std::hint::black_box(hit);
                        }
                    });
                },
            );
        }
        group.finish();
    }
}

/// End-to-end ground-truth recording (live execution + DOM snapshots).
fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_demonstration");
    group.sample_size(20);
    for id in [73u32, 31, 59] {
        let b = benchmark(id).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{id}")),
            &b,
            |bench, b| {
                bench.iter(|| std::hint::black_box(b.record().unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_execute,
    bench_alternatives,
    bench_path_resolution,
    bench_recording
);
criterion_main!(benches);
