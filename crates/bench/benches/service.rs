//! Criterion bench for the multi-tenant session service: how many full
//! demo→authorize→automate workflows per second the session managers
//! sustain over the v1 JSON wire protocol, with sessions interleaved the
//! way concurrent front-ends would interleave them.
//!
//! Groups:
//!
//! - `service_wire` — the single-threaded [`SessionManager`] baseline;
//! - `sharded_service` — the same 8-session workload against a
//!   [`ShardedManager`] at shard counts 1/2/4, one driver thread per
//!   shard. On a multi-core runner the rows scale with the shard count;
//!   on one core they bound the routing/channel overhead instead.
//! - `service_evict` / `service_codec` — eviction thrash (with
//!   digest/no-digest/full-replay restoration ablations) and raw codec.
//! - `service_store` — checkpoint cost shape (O(dirty) vs full rewrite)
//!   and the [`SegmentStore`](webrobot_service::SegmentStore)
//!   group-commit batch sweep.
//! - `service_latency` — per-request latency of a light session's
//!   `outputs` probe on a single quantum-scheduled shard, once under a
//!   *uniform* background load (another light session) and once under a
//!   *skewed* one (a pathological session whose growing demonstrations
//!   keep synthesis expensive). The committed `p99_ns` of the skewed row
//!   staying within the `benchdiff` ratio of the uniform row is the
//!   latency half of the quantum-scheduler story (the exactness half is
//!   `tests/skewed.rs`).
//!
//! Throughput is declared per group (`Throughput::Elements(sessions)`),
//! so the committed `BENCH_service.json` carries explicit
//! `elements_per_sec` — the sessions-per-second baselines.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use webrobot_browser::{Site, SiteBuilder};
use webrobot_data::parse_json;
use webrobot_dom::parse_html;
use webrobot_interact::Event;
use webrobot_lang::{Action, Value};
use webrobot_service::{Request, ServiceConfig, SessionManager, ShardedManager};

const ITEMS_PER_SITE: usize = 6;

fn anchor_site(n: usize) -> Arc<Site> {
    let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://bench.test/",
        parse_html(&format!("<html>{body}</html>")).unwrap(),
    );
    Arc::new(b.start_at(home).finish())
}

fn manager(max_live: usize) -> SessionManager {
    manager_with(max_live, ITEMS_PER_SITE, true, true)
}

/// A manager with `max_live` live slots over an `items`-item site;
/// `delta_restore: false` prices the legacy full-replay restoration the
/// delta snapshots replaced, `engine_digest: false` the schedule-driven
/// delta restore the engine digest replaced.
fn manager_with(
    max_live: usize,
    items: usize,
    delta_restore: bool,
    engine_digest: bool,
) -> SessionManager {
    let mut m = SessionManager::new(
        ServiceConfig::builder()
            .max_live_sessions(max_live)
            .delta_restore(delta_restore)
            .engine_digest(engine_digest)
            .build()
            .expect("valid bench config"),
    );
    m.register_site("anchors", anchor_site(items), Value::Object(vec![]));
    m
}

fn sharded_manager(shards: usize) -> ShardedManager {
    let m = ShardedManager::new(ServiceConfig::default(), shards);
    m.register_site(
        "anchors",
        anchor_site(ITEMS_PER_SITE),
        Value::Object(vec![]),
    );
    m
}

fn event_request(session: &str, event: Event) -> String {
    Request::Event {
        session: session.to_string(),
        event,
    }
    .to_json()
}

fn scrape(i: usize) -> Event {
    Event::Demonstrate(Action::ScrapeText(format!("/a[{i}]").parse().unwrap()))
}

/// One wire client: picks its next request from the mode the previous
/// response reported, exactly as a front-end state machine would. Generic
/// over the transport (`send` is "JSON string in → JSON string out"), so
/// the same state machine drives a `&mut SessionManager` and a shared
/// `&ShardedManager`.
struct Client {
    session: String,
    mode: String,
    demonstrated: usize,
    done: bool,
}

impl Client {
    fn open(send: &mut impl FnMut(&str) -> String) -> Client {
        let reply = send(
            &Request::Create {
                site: "anchors".to_string(),
                input: None,
                deadline_ms: None,
            }
            .to_json(),
        );
        let reply = parse_json(&reply).expect("valid response json");
        Client {
            session: reply
                .field("session")
                .and_then(Value::as_str)
                .expect("created")
                .to_string(),
            mode: "demonstrate".to_string(),
            demonstrated: 0,
            done: false,
        }
    }

    /// Sends one request; returns `false` once the session is closed.
    fn step(&mut self, send: &mut impl FnMut(&str) -> String) -> bool {
        if self.done {
            return false;
        }
        let event = match self.mode.as_str() {
            "demonstrate" if self.demonstrated < 2 => {
                self.demonstrated += 1;
                scrape(self.demonstrated)
            }
            // Automation ran the task to the end: finish and close.
            "demonstrate" => {
                send(&event_request(&self.session, Event::Finish));
                send(
                    &Request::Close {
                        session: self.session.clone(),
                    }
                    .to_json(),
                );
                self.done = true;
                return false;
            }
            "authorize" => Event::Accept { index: 0 },
            _ => Event::AutomateStep,
        };
        let reply = send(&event_request(&self.session, event));
        let reply = parse_json(&reply).expect("valid response json");
        assert_eq!(
            reply.field("status").and_then(Value::as_str),
            Some("ok"),
            "{reply}"
        );
        self.mode = reply
            .field("mode")
            .and_then(Value::as_str)
            .expect("mode")
            .to_string();
        true
    }
}

/// Runs `sessions` full workflows round-robin-interleaved over the wire.
fn run_interleaved(send: &mut impl FnMut(&str) -> String, sessions: usize) {
    let mut clients: Vec<Client> = (0..sessions).map(|_| Client::open(send)).collect();
    loop {
        let mut progressed = false;
        for client in &mut clients {
            progressed |= client.step(send);
        }
        if !progressed {
            break;
        }
    }
}

/// Full interleaved sessions per second through the JSON boundary — the
/// single-threaded headline throughput number.
fn bench_interleaved(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_wire");
    group.sample_size(20);
    for sessions in [2usize, 8] {
        group.throughput(Throughput::Elements(sessions as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("interleaved_s{sessions}")),
            &sessions,
            |bench, &sessions| {
                bench.iter_batched(
                    || manager(64),
                    |mut m| {
                        run_interleaved(&mut |r| m.handle_json(r), sessions);
                        assert_eq!(m.stats().sessions_closed as usize, sessions);
                        m
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// The same 8-session workload against a [`ShardedManager`]: one driver
/// thread per shard, each round-robin-interleaving its share of sessions
/// through the shared `&self` JSON boundary. The manager (and its shard
/// threads) lives across iterations, so the rows measure steady-state
/// routed throughput, not thread spawn/join.
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_service");
    group.sample_size(20);
    const SESSIONS: usize = 8;
    group.throughput(Throughput::Elements(SESSIONS as u64));
    for shards in [1usize, 2, 4] {
        let m = sharded_manager(shards);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("shards_{shards}_s{SESSIONS}")),
            &shards,
            |bench, &shards| {
                bench.iter(|| {
                    let closed_before = m.stats().sessions_closed;
                    std::thread::scope(|scope| {
                        for d in 0..shards {
                            let share = SESSIONS / shards + usize::from(d < SESSIONS % shards);
                            let m = &m;
                            scope.spawn(move || {
                                run_interleaved(&mut |r| m.handle_json(r), share);
                            });
                        }
                    });
                    assert_eq!(
                        (m.stats().sessions_closed - closed_before) as usize,
                        SESSIONS
                    );
                });
            },
        );
    }
    group.finish();
}

/// A 10-record two-field directory (the nested-loop shape of the paper's
/// scraping tasks): synthesis here is an order of magnitude heavier than
/// on the flat anchor site, which is exactly the regime where restoration
/// strategy matters.
fn nested_site() -> Arc<Site> {
    let body: String = (1..=10)
        .map(|i| {
            format!(
                "<div class='person'><h3>Name {i}</h3>\
                 <div class='phone'>555-{i:04}</div></div>"
            )
        })
        .collect();
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://people.bench.test/",
        parse_html(&format!("<html><body>{body}</body></html>")).unwrap(),
    );
    Arc::new(b.start_at(home).finish())
}

/// Eviction/restoration cost, pricing **delta restore** (the default —
/// snapshots carry the engine's re-synthesis schedule, so restoration
/// replays the history observe-only and re-enters the synthesizer only
/// where the original session ran its worklist) against the
/// `*_full_replay` ablation (`delta_restore: false` — one full synthesis
/// call per replayed action, the pre-delta behavior):
///
/// - `thrash_s4` / `thrash_s4_full_replay` — the end-to-end interleaved
///   workload squeezed through a single live slot, so every tenant
///   switch is an evict + restore. Histories stay short (≤ 6 actions on
///   the flat site), so this bounds the *worst-case floor* of each
///   restore rather than the delta advantage.
/// - `restore_nested_h16` / `restore_nested_h16_full_replay` — one
///   evict + restore cycle (driven over the wire as `evict` + `outputs`)
///   of a session 16 actions deep into the nested two-field directory.
///   Full replay pays one synthesis per action over an ever-longer
///   trace; delta restore pays the recorded schedule only, so the gap
///   here grows with session age (see BENCH_NOTES.md).
fn bench_evict_thrash(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_evict");
    group.sample_size(10);
    let sessions = 4usize;
    for (label, delta, digest) in [
        ("thrash_s4", true, true),
        ("thrash_s4_no_digest", true, false),
        ("thrash_s4_full_replay", false, false),
    ] {
        group.throughput(Throughput::Elements(sessions as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &sessions,
            |bench, &sessions| {
                bench.iter_batched(
                    || manager_with(1, ITEMS_PER_SITE, delta, digest),
                    |mut m| {
                        run_interleaved(&mut |r| m.handle_json(r), sessions);
                        let stats = m.stats();
                        assert_eq!(stats.sessions_closed as usize, sessions);
                        assert!(stats.restores > 0, "eviction path exercised");
                        m
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }

    group.throughput(Throughput::Elements(1));
    for (label, delta, digest) in [
        ("restore_nested_h16", true, true),
        ("restore_nested_h16_no_digest", true, false),
        ("restore_nested_h16_full_replay", false, false),
    ] {
        // One session, demonstrated 4 actions and automated to a history
        // of 16, held by a manager with headroom; each iteration forces
        // one evict + one transparent restore through the wire boundary.
        let mut m = SessionManager::new(
            ServiceConfig::builder()
                .delta_restore(delta)
                .engine_digest(digest)
                .build()
                .expect("valid bench config"),
        );
        m.register_site("people", nested_site(), Value::Object(vec![]));
        assert!(m
            .handle_json(r#"{"v": 1, "kind": "create", "site": "people"}"#)
            .contains("\"ok\""));
        for (record, field) in (1..=2).flat_map(|r| [(r, "h3[1]"), (r, "div[1]")]) {
            let reply = m.handle_json(&event_request(
                "s-1",
                Event::Demonstrate(Action::ScrapeText(
                    format!("/body[1]/div[{record}]/{field}").parse().unwrap(),
                )),
            ));
            assert!(reply.contains("\"ok\""), "{reply}");
        }
        let mut history = 4;
        let mut mode = "authorize".to_string();
        while history < 16 {
            let event = if mode == "authorize" {
                Event::Accept { index: 0 }
            } else {
                Event::AutomateStep
            };
            let reply = m.handle_json(&event_request("s-1", event));
            assert!(reply.contains(r#""status":"ok""#), "{reply}");
            mode = parse_json(&reply)
                .unwrap()
                .field("mode")
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            history += 1;
        }
        let outputs_req = Request::Outputs {
            session: "s-1".to_string(),
        }
        .to_json();
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bench, ()| {
            bench.iter(|| {
                assert!(m.evict("s-1".parse().unwrap()));
                let reply = m.handle_json(&outputs_req);
                assert!(reply.contains(r#""status":"ok""#), "{reply}");
            });
        });
    }
    group.finish();
}

/// Light-session request latency on one quantum-scheduled shard, uniform
/// vs skewed background load.
///
/// The probe is an `outputs` read on a pre-built light session — no
/// synthesis, so every nanosecond above the uniform row is queueing
/// delay behind the background tenant's current quantum. Without
/// slicing, the skewed row's p99 would be a whole pathological synthesis
/// call; with it, the wait is bounded by one quantum plus the worklist
/// item in flight.
fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_latency");
    // A deep sample pool: the rows exist for their `p99_ns`, and a
    // nearest-rank p99 needs many samples before it stops being the max.
    group.sample_size(2000);
    for (label, heavy) in [("light_probe_uniform", false), ("light_probe_skewed", true)] {
        // One shard, sliced aggressively, shared by the probe session and
        // the background tenant.
        let m = ShardedManager::new(
            ServiceConfig {
                quantum: Some(std::time::Duration::from_micros(50)),
                ..ServiceConfig::default()
            },
            1,
        );
        m.register_site("light", anchor_site(ITEMS_PER_SITE), Value::Object(vec![]));
        m.register_site("heavy", anchor_site(40), Value::Object(vec![]));
        assert!(m
            .handle_json(r#"{"v": 1, "kind": "create", "site": "light"}"#)
            .contains("\"ok\""));
        for i in 1..=2 {
            let reply = m.handle_json(&event_request("s-1", scrape(i)));
            assert!(reply.contains("\"ok\""), "{reply}");
        }
        let probe = Request::Outputs {
            session: "s-1".to_string(),
        }
        .to_json();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Background tenant: fresh session per pass so the workload
            // stays stationary however long the measurement runs. The
            // heavy pass stops at 12 demonstrations — synthesis stays
            // expensive, but the *per-item* cost (the scheduler's
            // preemption floor: items are atomic) stays bounded.
            let (site, anchors) = if heavy { ("heavy", 24) } else { ("light", 6) };
            let (m, stop) = (&m, &stop);
            let hammer = scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let created = m.handle_json(&format!(
                        r#"{{"v": 1, "kind": "create", "site": "{site}"}}"#
                    ));
                    assert!(created.contains("\"ok\""), "{created}");
                    let session: String = created
                        .split(r#""session":""#)
                        .nth(1)
                        .unwrap()
                        .chars()
                        .take_while(|c| *c != '"')
                        .collect();
                    for i in (1..anchors).step_by(2) {
                        if stop.load(std::sync::atomic::Ordering::SeqCst) {
                            break;
                        }
                        let reply = m.handle_json(&event_request(&session, scrape(i)));
                        assert!(reply.contains("\"ok\""), "{reply}");
                    }
                    m.handle_json(
                        &Request::Close {
                            session: session.clone(),
                        }
                        .to_json(),
                    );
                }
            });
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &probe,
                |bench, probe| {
                    bench.iter(|| {
                        let reply = m.handle_json(std::hint::black_box(probe));
                        assert!(reply.contains(r#""status":"ok""#), "{reply}");
                        reply
                    });
                },
            );
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            hammer.join().unwrap();
        });
    }
    group.finish();
}

/// Checkpoint and snapshot-store cost shapes — the log-structured store
/// story in three pairs of rows:
///
/// - `checkpoint_dirty1_of_64` vs `checkpoint_full_rewrite_64` — a
///   64-tenant manager where each iteration dirties exactly one session
///   (a create), checkpoints, and closes it. Incremental checkpoints
///   write the one dirty record plus shard metadata; the
///   `incremental_checkpoint: false` ablation re-encodes and re-writes
///   all 64 — the O(dirty) vs O(sessions) gap the dirty bit buys.
/// - `segment_commit_ops_{1,8,64}` — 64 kilobyte-record puts plus a
///   final flush straight into a [`SegmentStore`], with the group-commit
///   batch threshold swept from fsync-per-op to one fsync per batch of
///   64. The spread between the rows is precisely the cost the deferred
///   COMMIT amortizes.
fn bench_store(c: &mut Criterion) {
    use webrobot_service::{MemoryStore, SegmentConfig, SegmentStore, SnapshotStore};

    let mut group = c.benchmark_group("service_store");
    group.sample_size(20);

    for (label, incremental) in [
        ("checkpoint_dirty1_of_64", true),
        ("checkpoint_full_rewrite_64", false),
    ] {
        let mut m = SessionManager::with_store(
            ServiceConfig::builder()
                .max_live_sessions(128)
                .incremental_checkpoint(incremental)
                .build()
                .expect("valid bench config"),
            Box::new(MemoryStore::new()),
        )
        .unwrap();
        m.register_site(
            "anchors",
            anchor_site(ITEMS_PER_SITE),
            Value::Object(vec![]),
        );
        for s in 1..=64 {
            let reply = m.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
            assert!(reply.contains("\"ok\""), "{reply}");
            for i in 1..=2 {
                let reply = m.handle_json(&event_request(&format!("s-{s}"), scrape(i)));
                assert!(reply.contains("\"ok\""), "{reply}");
            }
        }
        // Settle: after this checkpoint all 64 base sessions are clean.
        assert!(m
            .handle_json(r#"{"v": 1, "kind": "checkpoint"}"#)
            .contains("\"ok\""));

        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bench, ()| {
            bench.iter(|| {
                // Exactly one dirty session per checkpoint: a fresh
                // create (closed again afterwards, so the population
                // stays 64 + 1 transient).
                let created = m.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
                assert!(created.contains("\"ok\""), "{created}");
                let session: String = created
                    .split(r#""session":""#)
                    .nth(1)
                    .unwrap()
                    .chars()
                    .take_while(|c| *c != '"')
                    .collect();
                let reply = m.handle_json(r#"{"v": 1, "kind": "checkpoint"}"#);
                assert!(reply.contains(r#""sessions":65"#), "{reply}");
                m.handle_json(&Request::Close { session }.to_json());
            });
        });
    }

    // A representative kilobyte-scale record (what one mid-workflow
    // session encodes to, order-of-magnitude-wise).
    let record = parse_json(&format!(
        r#"{{"v": 1, "kind": "bench", "payload": "{}"}}"#,
        "x".repeat(1024)
    ))
    .unwrap();
    for ops in [1usize, 8, 64] {
        let dir = std::env::temp_dir().join(format!(
            "webrobot-bench-segment-{}-{ops}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SegmentStore::with_config(
            SegmentConfig {
                commit_ops: ops,
                commit_bytes: u64::MAX,
                commit_interval: std::time::Duration::from_secs(3600),
                ..SegmentConfig::default()
            },
            &dir,
        )
        .unwrap();
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("segment_commit_ops_{ops}")),
            &(),
            |bench, ()| {
                bench.iter(|| {
                    for i in 0..64 {
                        store.put(&format!("k-{i}"), &record).unwrap();
                    }
                    store.flush().unwrap();
                });
            },
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Raw codec cost: decode a demonstrate request and re-encode the
/// response-sized reply, no session behind it.
fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_codec");
    let raw = event_request("s-1", scrape(3));
    group.bench_with_input(
        BenchmarkId::from_parameter("request_roundtrip"),
        &raw,
        |bench, raw| {
            bench.iter(|| {
                let request = Request::from_json(std::hint::black_box(raw)).unwrap();
                std::hint::black_box(request.to_json())
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_interleaved,
    bench_sharded,
    bench_evict_thrash,
    bench_latency,
    bench_store,
    bench_codec
);
criterion_main!(benches);
