//! Criterion benches for Table 2's baseline: e-graph primitives and the
//! Split/Reroll/Unsplit synthesizer as trace length and nesting grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webrobot_benchmarks::benchmark;
use webrobot_egraph::{BaselineSynthesizer, ClassId, EGraph, Language};

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Pair {
    Leaf(u32),
    Node(ClassId, ClassId),
}

impl Language for Pair {
    fn children(&self) -> Vec<ClassId> {
        match self {
            Pair::Leaf(_) => vec![],
            Pair::Node(a, b) => vec![*a, *b],
        }
    }
    fn map_children(&self, f: &mut dyn FnMut(ClassId) -> ClassId) -> Self {
        match self {
            Pair::Leaf(n) => Pair::Leaf(*n),
            Pair::Node(a, b) => Pair::Node(f(*a), f(*b)),
        }
    }
}

/// Raw e-graph throughput: balanced tree insertion plus a union/rebuild
/// wave at the leaves.
fn bench_egraph_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("egraph_core");
    for leaves in [64u32, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &leaves, |b, &n| {
            b.iter(|| {
                let mut eg: EGraph<Pair> = EGraph::new();
                let mut layer: Vec<ClassId> = (0..n).map(|i| eg.add(Pair::Leaf(i))).collect();
                while layer.len() > 1 {
                    layer = layer
                        .chunks(2)
                        .map(|w| {
                            if w.len() == 2 {
                                eg.add(Pair::Node(w[0], w[1]))
                            } else {
                                w[0]
                            }
                        })
                        .collect();
                }
                // Merge even leaves into odd leaves: congruence cascades up.
                for i in (0..n).step_by(2) {
                    let a = eg.lookup(&Pair::Leaf(i)).unwrap();
                    let b2 = eg.lookup(&Pair::Leaf((i + 1) % n)).unwrap();
                    eg.union(a, b2);
                }
                eg.rebuild();
                std::hint::black_box(eg.class_count())
            });
        });
    }
    group.finish();
}

/// Baseline synthesis time as trace length grows (flat loops, b15-style)
/// and with nesting (b12-style) — the Table 2 growth curves.
fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_synthesize");
    group.sample_size(10);
    for (label, id, prefix) in [
        ("b73_flat_len6", 73u32, 6usize),
        ("b15_fields_len9", 15, 9),
        ("b12_nested_len18", 12, 18),
    ] {
        let b = benchmark(id).unwrap();
        let trace = b.record().unwrap().trace;
        let prefix_trace = trace.prefix(prefix.min(trace.len()));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &prefix_trace,
            |bench, t| {
                let synth = BaselineSynthesizer::default();
                bench.iter(|| std::hint::black_box(synth.synthesize(t)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_egraph_core, bench_baseline);
criterion_main!(benches);
