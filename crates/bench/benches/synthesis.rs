//! Criterion benches for the synthesis engine (Fig. 12 / Table 1 backing
//! measurements): per-prediction latency across benchmark families, the
//! incremental fast path, from-scratch synthesis, and pinned rows over
//! the procedural generator's families (off-suite, seeded — so perf on
//! *generated* workloads is diffed release-over-release too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webrobot_benchmarks::{benchmark, generated, GenFamily};
use webrobot_synth::{SynthConfig, Synthesizer};

/// From-scratch synthesis on a fixed prefix of a benchmark's trace.
fn bench_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_scratch");
    for (id, prefix) in [(73u32, 4usize), (15, 8), (12, 18), (7, 8)] {
        let b = benchmark(id).unwrap();
        let trace = b.record().unwrap().trace;
        let k = prefix.min(trace.len());
        let prefix_trace = trace.prefix(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{id}_k{k}")),
            &prefix_trace,
            |bench, t| {
                bench.iter(|| {
                    let mut s = Synthesizer::new(SynthConfig::default(), t.clone());
                    std::hint::black_box(s.synthesize())
                });
            },
        );
    }
    group.finish();
}

/// The incremental fast path: one more observed action re-validated
/// against the cached generalizing program (the dominant per-test cost in
/// the Q1 protocol).
fn bench_incremental_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_incremental_step");
    for id in [73u32, 15, 12] {
        let b = benchmark(id).unwrap();
        let trace = b.record().unwrap().trace;
        let n = trace.len();
        let warm = n - 2;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{id}")),
            &trace,
            |bench, t| {
                bench.iter_batched(
                    || {
                        let mut s = Synthesizer::new(SynthConfig::default(), t.prefix(2));
                        for k in 3..=warm {
                            s.observe(t.actions()[k - 1].clone(), t.doms()[k].clone());
                            s.synthesize();
                        }
                        s
                    },
                    |mut s| {
                        s.observe(t.actions()[warm].clone(), t.doms()[warm + 1].clone());
                        std::hint::black_box(s.synthesize())
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// From-scratch synthesis over generated benchmarks: one pinned
/// `(family, seed)` row per generated family, on a fixed trace prefix.
/// The seeds match the differential harness's grid, so a row that
/// regresses here has an exact-equality test pinning its behavior.
fn bench_generated_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("generated_scratch");
    let seed = 42u64;
    for family in GenFamily::ALL {
        let b = generated(family, seed);
        let trace = b.record().unwrap().trace;
        let k = 8.min(trace.len());
        let prefix_trace = trace.prefix(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{seed}", family.key())),
            &prefix_trace,
            |bench, t| {
                bench.iter(|| {
                    let mut s = Synthesizer::new(SynthConfig::default(), t.clone());
                    std::hint::black_box(s.synthesize())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scratch,
    bench_incremental_step,
    bench_generated_scratch
);
criterion_main!(benches);
