//! Shared experiment harness: the per-test prediction protocol of paper
//! §7.1, the intended-program check, and report formatting, reused by the
//! `fig12` / `table1` / `table2` / `q3_*` binaries and the Criterion
//! benches.

pub mod par;
pub mod protocol;

pub use par::{par_map, thread_count};

use std::time::{Duration, Instant};

use webrobot_benchmarks::Benchmark;
use webrobot_browser::{run_program, Browser, Recording};
use webrobot_lang::Program;
use webrobot_semantics::action_consistent;
use webrobot_synth::{SynthConfig, Synthesizer};

/// Result of evaluating one benchmark under the §7.1 protocol.
#[derive(Debug, Clone)]
pub struct BenchmarkEval {
    /// Benchmark id.
    pub id: u32,
    /// Number of prediction tests (`n − 1`).
    pub tests: usize,
    /// Tests whose prediction matched the recorded next action.
    pub correct: usize,
    /// Per-test synthesis times for tests that produced a prediction.
    pub times: Vec<Duration>,
    /// Whether the final synthesized program is intended (live replay
    /// reproduces the ground truth's outputs).
    pub intended: bool,
    /// The final best program, if any.
    pub final_program: Option<Program>,
}

impl BenchmarkEval {
    /// Prediction accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.tests == 0 {
            return 0.0;
        }
        self.correct as f64 / self.tests as f64
    }

    /// `p`-quantile of the per-test times (0.0–1.0); zero when no test
    /// produced a prediction.
    pub fn time_quantile(&self, p: f64) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.times.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Mean per-test time over prediction-producing tests.
    pub fn time_mean(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.iter().sum::<Duration>() / self.times.len() as u32
    }
}

/// Does `program`, replayed live on a fresh browser, reproduce the ground
/// truth's scraped outputs? This is the "intended program" criterion used
/// across the experiments (the paper judges intendedness manually).
pub fn is_intended(program: &Program, benchmark: &Benchmark, recording: &Recording) -> bool {
    let mut browser = Browser::new(benchmark.site.clone(), benchmark.input.clone());
    let budget = recording.trace.len() * 4 + 64;
    if run_program(&mut browser, program.statements(), budget).is_err() {
        return false;
    }
    let got: Vec<&str> = browser.outputs().iter().map(|o| o.payload()).collect();
    let want: Vec<&str> = recording.outputs.iter().map(|o| o.payload()).collect();
    got == want
}

/// Runs the §7.1 per-test protocol on one benchmark: for `k = 1..n−1`,
/// synthesize from the first `k` actions (+ `k+1` DOMs) and check the
/// prediction of `a_{k+1}`. Synthesis is incremental across tests unless
/// the configuration disables it.
pub fn evaluate_benchmark(benchmark: &Benchmark, cfg: SynthConfig) -> BenchmarkEval {
    let recording = benchmark
        .record()
        .unwrap_or_else(|e| panic!("b{} failed to record: {e}", benchmark.id));
    let trace = &recording.trace;
    let n = trace.len();
    let mut synth = Synthesizer::new(cfg, trace.prefix(0));
    let mut correct = 0;
    let mut times = Vec::new();
    let mut final_program: Option<Program> = None;
    for k in 1..n {
        synth.observe(trace.actions()[k - 1].clone(), trace.doms()[k].clone());
        let started = Instant::now();
        let result = synth.synthesize();
        let elapsed = started.elapsed();
        if !result.predictions.is_empty() {
            times.push(elapsed);
        }
        let want = &trace.actions()[k];
        if result
            .predictions
            .iter()
            .any(|p| action_consistent(p, want, &trace.doms()[k]))
        {
            correct += 1;
        }
        if let Some(rp) = result.programs.first() {
            final_program = Some(rp.program.clone());
        }
    }
    let intended = final_program
        .as_ref()
        .is_some_and(|p| is_intended(p, benchmark, &recording));
    BenchmarkEval {
        id: benchmark.id,
        tests: n.saturating_sub(1),
        correct,
        times,
        intended,
        final_program,
    }
}

/// Parses a `--ids 1,5,9` style argument list; `None` means "all".
pub fn parse_id_filter(args: &[String]) -> Option<Vec<u32>> {
    let pos = args.iter().position(|a| a == "--ids")?;
    let list = args.get(pos + 1)?;
    Some(
        list.split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
    )
}

/// Formats a duration in integer milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{}", d.as_millis())
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_benchmarks::benchmark;

    #[test]
    fn protocol_runs_on_a_small_benchmark() {
        let b = benchmark(73).unwrap();
        let eval = evaluate_benchmark(&b, SynthConfig::default());
        assert!(eval.tests >= 5);
        assert!(eval.accuracy() > 0.7, "{eval:?}");
        assert!(eval.intended);
        assert!(eval.time_quantile(0.5) <= eval.time_quantile(1.0));
    }

    #[test]
    fn designed_failure_is_not_intended() {
        let b = benchmark(9).unwrap();
        let eval = evaluate_benchmark(&b, SynthConfig::default());
        assert!(!eval.intended, "{:?}", eval.final_program);
    }

    #[test]
    fn id_filter_parses() {
        let args: Vec<String> = ["--ids".into(), "1,5, 9".into()].to_vec();
        assert_eq!(parse_id_filter(&args), Some(vec![1, 5, 9]));
        assert_eq!(parse_id_filter(&[]), None);
    }
}
