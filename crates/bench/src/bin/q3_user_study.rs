//! Regenerates the **§7.3 user study** numbers with simulated participants
//! (substitution documented in `DESIGN.md` §4): 8 participants, 5 tasks in
//! 3 phases; we report demonstrated-action counts, per-phase demonstration
//! times (mean ± SD of the simulated human latency) and success rates.
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin q3_user_study
//! ```

use webrobot_benchmarks::benchmark;
use webrobot_interact::{drive_session, SessionConfig, UserModel};

/// Phase → benchmark ids (tasks sampled from the suite, mirroring the
/// paper's phases: 1 = single-page scraping; 2 = navigation + pagination;
/// 3 = data entry).
const PHASES: [(&str, &[u32]); 3] = [
    ("Phase 1 (single-page scraping)", &[8]),
    ("Phase 2 (navigation + pagination)", &[7, 31]),
    ("Phase 3 (data entry)", &[63, 43]),
];

fn main() {
    let participants: Vec<UserModel> = (0..8)
        .map(|i| UserModel {
            seed: 100 + i,
            mistake_rate: 0.02,
            ..UserModel::default()
        })
        .collect();

    println!("Q3 — simulated user study: 8 participants × 5 tasks in 3 phases\n");
    let mut all_solved = true;
    let mut demo_counts: Vec<usize> = Vec::new();
    for (phase_name, ids) in PHASES {
        let mut times: Vec<f64> = Vec::new();
        let mut restarts = 0usize;
        for user in &participants {
            for &id in ids {
                let b = benchmark(id).expect("task id");
                let rec = b.record().expect("task records");
                let report = drive_session(
                    b.site.clone(),
                    b.input.clone(),
                    &rec.trace,
                    SessionConfig::default(),
                    user,
                    3,
                );
                all_solved &= report.solved;
                demo_counts.push(report.demonstrated);
                times.push(report.human_time.as_secs_f64());
                restarts += report.restarts;
            }
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
        println!(
            "{phase_name}: demo+auth time {mean:.2} s (SD={:.2}), {} sessions, {restarts} mistake restarts",
            var.sqrt(),
            times.len()
        );
    }
    let (lo, hi) = (
        demo_counts.iter().min().copied().unwrap_or(0),
        demo_counts.iter().max().copied().unwrap_or(0),
    );
    println!("\nAll tasks solved by all participants: {all_solved} (paper: yes)");
    println!("Demonstrated actions per task: {lo}–{hi} (paper: 6–10)");
    println!("Paper phase times: 16.88 s (SD 3.80), 19.44 s (SD 11.48), 64.44 s (SD 22.58)");
    println!("(Times are simulated human latencies, not wall-clock compute.)");
}
