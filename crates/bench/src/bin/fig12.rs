//! Regenerates **Figure 12** (Q1): per-benchmark prediction accuracy,
//! synthesis-time quartiles, and whether the final synthesized program is
//! intended, over the 76-benchmark suite.
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin fig12 [-- --ids 1,2,3 --threads N]
//! ```
//!
//! The 76 tasks are independent, so they are evaluated across a
//! scoped-thread pool (all cores by default; `--threads N` or
//! `WEBROBOT_EVAL_THREADS` to pin) with results collected in task-id
//! order — output is byte-identical at any thread count.
//!
//! Benchmarks print sorted by ascending accuracy (the paper's x-axis
//! ordering); a summary reproduces the §7.1 prose statistics.

use webrobot_bench::{evaluate_benchmark, ms, par_map, parse_id_filter, thread_count};
use webrobot_benchmarks::suite;
use webrobot_synth::SynthConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = parse_id_filter(&args);
    let benchmarks: Vec<_> = suite()
        .into_iter()
        .filter(|b| filter.as_ref().is_none_or(|ids| ids.contains(&b.id)))
        .collect();
    if benchmarks.is_empty() {
        eprintln!("no benchmarks matched the --ids filter (ids are 1..=76)");
        std::process::exit(2);
    }

    println!("Figure 12 — Q1: accuracy, synthesis time, intended final program");
    println!("(sorted by ascending accuracy, as in the paper)\n");
    println!(
        "{:>4} {:>6} {:>9} {:>8} {:>8} {:>8} {:>9}  intended",
        "id", "tests", "accuracy", "q1(ms)", "med(ms)", "q3(ms)", "mean(ms)"
    );

    let mut evals = par_map(&benchmarks, thread_count(&args), |b| {
        evaluate_benchmark(b, SynthConfig::default())
    });
    evals.sort_by(|a, b| {
        a.accuracy()
            .partial_cmp(&b.accuracy())
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    for e in &evals {
        println!(
            "{:>4} {:>6} {:>8.0}% {:>8} {:>8} {:>8} {:>9}  {}",
            format!("b{}", e.id),
            e.tests,
            e.accuracy() * 100.0,
            ms(e.time_quantile(0.25)),
            ms(e.time_quantile(0.5)),
            ms(e.time_quantile(0.75)),
            ms(e.time_mean()),
            if e.intended { "•" } else { "×" },
        );
    }

    // §7.1 prose statistics.
    let total = evals.len() as f64;
    let fast_accurate = evals
        .iter()
        .filter(|e| e.accuracy() >= 0.95 && e.time_quantile(0.5).as_millis() <= 500)
        .count() as f64;
    let intended = evals.iter().filter(|e| e.intended).count();
    let median_acc = {
        let mut accs: Vec<f64> = evals.iter().map(|e| e.accuracy()).collect();
        accs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        accs[accs.len() / 2]
    };
    let avg_acc = evals.iter().map(|e| e.accuracy()).sum::<f64>() / total;
    let progs: Vec<_> = evals
        .iter()
        .filter_map(|e| e.final_program.as_ref())
        .collect();
    let avg_stmts = progs.iter().map(|p| p.len()).sum::<usize>() as f64 / progs.len().max(1) as f64;
    let max_stmts = progs.iter().map(|p| p.len()).max().unwrap_or(0);
    let doubly = progs.iter().filter(|p| p.loop_depth() == 2).count();
    let triple = progs.iter().filter(|p| p.loop_depth() >= 3).count();

    println!("\nSummary (paper §7.1 prose):");
    println!(
        "  ≥95% accuracy with ≤0.5 s median prediction: {:.0}% of benchmarks (paper: 68%)",
        100.0 * fast_accurate / total
    );
    println!(
        "  intended final program: {intended}/{} = {:.0}% (paper: 91%)",
        evals.len(),
        100.0 * intended as f64 / total
    );
    println!(
        "  median accuracy: {:.0}%   average accuracy: {:.0}%",
        median_acc * 100.0,
        avg_acc * 100.0
    );
    println!(
        "  synthesized programs: avg {avg_stmts:.1} statements, max {max_stmts} (paper: avg 6, max 18)"
    );
    println!("  nesting: {doubly} doubly-nested, {triple} with ≥3 levels (paper: 32 and 6)");
}
