//! Regenerates the **§7.3 end-to-end testing** numbers: an oracle user
//! drives a full demo/authorize/automate session on all 76 benchmarks; a
//! benchmark is *solved* when the whole intended action sequence executes.
//! Benchmarks flagged with a front-end quirk fail end-to-end even when the
//! back-end synthesis is correct, mirroring the paper's failure taxonomy
//! (7 back-end + 11 front-end = 18 unsolved, 76% solved).
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin q3_end_to_end [-- --ids 1,2,3 --threads N]
//! ```
//!
//! Each benchmark's oracle session is independent, so the suite fans out
//! over a scoped-thread pool; outcomes are collected (and printed) in
//! task-id order, byte-identical to a sequential run.

use webrobot_bench::{par_map, parse_id_filter, thread_count};
use webrobot_benchmarks::{suite, Quirk};
use webrobot_interact::{drive_session, SessionConfig, SessionReport, UserModel};

/// One benchmark's end-to-end outcome, computed on a worker thread and
/// rendered later in task-id order.
enum Outcome {
    /// The paper's front-end could not fully replay these actions.
    FrontendFail(Quirk),
    /// The session ran; whether it solved the task is judged from the
    /// report.
    Ran(SessionReport),
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = parse_id_filter(&args);
    let benchmarks: Vec<_> = suite()
        .into_iter()
        .filter(|b| filter.as_ref().is_none_or(|ids| ids.contains(&b.id)))
        .collect();
    if benchmarks.is_empty() {
        eprintln!("no benchmarks matched the --ids filter (ids are 1..=76)");
        std::process::exit(2);
    }

    println!("Q3 — end-to-end testing over the benchmark suite\n");
    let user = UserModel::default(); // oracle, no mistakes
    let outcomes = par_map(&benchmarks, thread_count(&args), |b| {
        if let Some(quirk) = b.frontend_quirk {
            return Outcome::FrontendFail(quirk);
        }
        let rec = b.record().expect("benchmark records");
        Outcome::Ran(drive_session(
            b.site.clone(),
            b.input.clone(),
            &rec.trace,
            SessionConfig::default(),
            &user,
            2,
        ))
    });

    let mut solved = 0usize;
    let mut backend_failures = Vec::new();
    let mut frontend_failures = Vec::new();
    for (b, outcome) in benchmarks.iter().zip(&outcomes) {
        match outcome {
            Outcome::FrontendFail(quirk) => {
                frontend_failures.push(b.id);
                println!("b{:<3} FRONT-END FAIL ({quirk:?})", b.id);
            }
            Outcome::Ran(report) => {
                // Solved by PBD: the full script ran AND automation (not
                // brute demonstration) carried a meaningful share.
                let by_pbd =
                    report.solved && report.automated + report.authorized > report.demonstrated;
                if by_pbd {
                    solved += 1;
                    println!(
                        "b{:<3} solved   demo={:<3} auth={:<3} auto={:<4} interrupts={}",
                        b.id,
                        report.demonstrated,
                        report.authorized,
                        report.automated,
                        report.interruptions
                    );
                } else {
                    backend_failures.push(b.id);
                    println!(
                        "b{:<3} UNSOLVED demo={:<3} auth={:<3} auto={:<4} (back-end)",
                        b.id, report.demonstrated, report.authorized, report.automated
                    );
                }
            }
        }
    }
    let total = benchmarks.len();
    println!(
        "\nSolved end-to-end: {solved}/{total} = {:.0}% (paper: 76%)",
        100.0 * solved as f64 / total as f64
    );
    println!(
        "Failures: {} back-end {:?} (paper: 7), {} front-end {:?} (paper: 11)",
        backend_failures.len(),
        backend_failures,
        frontend_failures.len(),
        frontend_failures
    );
}
