//! Regenerates the **§7 "Statistics of benchmarks"** paragraph for the
//! regenerated suite: feature counts, ground-truth sizes and nesting.
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin suite_stats
//! ```

use webrobot_benchmarks::suite;

fn main() {
    let suite = suite();
    let total = suite.len();
    let extraction = suite.iter().filter(|b| b.features.extraction).count();
    let entry = suite.iter().filter(|b| b.features.entry).count();
    let nav = suite.iter().filter(|b| b.features.navigation).count();
    let pag = suite.iter().filter(|b| b.features.pagination).count();
    let all_three = suite
        .iter()
        .filter(|b| b.features.entry && b.features.extraction && b.features.navigation)
        .count();
    println!("Benchmark suite statistics (paper §7 reference in parentheses)\n");
    println!("  total benchmarks:              {total} (76)");
    println!("  involve data extraction:       {extraction} (76)");
    println!("  involve data entry:            {entry} (29)");
    println!("  involve cross-page navigation: {nav} (60)");
    println!("  involve pagination:            {pag} (33)");
    println!("  entry + extraction + nav:      {all_three} (28)");

    let dsl: Vec<_> = suite.iter().filter(|b| b.expect_intended).collect();
    let avg_stmts: f64 =
        dsl.iter().map(|b| b.ground_truth.len() as f64).sum::<f64>() / dsl.len() as f64;
    let avg_size: f64 = dsl
        .iter()
        .map(|b| b.ground_truth.size() as f64)
        .sum::<f64>()
        / dsl.len() as f64;
    let max_size = suite.iter().map(|b| b.ground_truth.size()).max().unwrap();
    let doubly = dsl
        .iter()
        .filter(|b| b.ground_truth.loop_depth() == 2)
        .count();
    let triple = suite
        .iter()
        .filter(|b| b.ground_truth.loop_depth() >= 3)
        .count();
    let scripted = suite.iter().filter(|b| !b.expect_intended).count();
    println!("\nGround-truth programs (DSL; the paper used Selenium, avg 36.3 LoC, max 142):");
    println!(
        "  expressible in the DSL:        {}(+{scripted} straight-line failure demos)",
        dsl.len()
    );
    println!("  avg statements / AST size:     {avg_stmts:.1} / {avg_size:.1}");
    println!("  max AST size:                  {max_size}");
    println!("  doubly-nested ground truths:   {doubly} (32)");
    println!("  ≥3-level ground truths:        {triple} (6)");

    println!("\nPer-benchmark inventory:");
    println!(
        "{:>4} {:<24} {:>6} {:>6} {:>5} {:>5} {:>6} {:>8}",
        "id", "family", "trace", "stmts", "size", "depth", "quirk", "intended"
    );
    for b in &suite {
        let rec = b.record().expect("records");
        println!(
            "{:>4} {:<24} {:>6} {:>6} {:>5} {:>5} {:>6} {:>8}",
            format!("b{}", b.id),
            format!("{:?}", b.family),
            rec.trace.len(),
            b.ground_truth.len(),
            b.ground_truth.size(),
            b.ground_truth.loop_depth(),
            if b.frontend_quirk.is_some() {
                "yes"
            } else {
                "-"
            },
            if b.expect_intended { "yes" } else { "no" },
        );
    }
}
