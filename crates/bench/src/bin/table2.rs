//! Regenerates **Table 2** (Q4): WebRobot vs the conventional rewrite-based
//! (egg-style) baseline on the nine benchmarks whose ground truths use only
//! selector loops and no alternative selectors.
//!
//! Protocol (paper §7.4): run each tool on action traces of increasing
//! length; report `X/Y` — synthesis time `X` (ms) at the shortest trace
//! length `Y` for which the tool produces an *intended* program (live
//! replay reproduces the ground-truth outputs). `–/–` marks failure within
//! the baseline's 5-minute budget.
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin table2 [-- --baseline-timeout-secs 300]
//! ```

use std::time::{Duration, Instant};

use webrobot_bench::is_intended;
use webrobot_benchmarks::{benchmark, Benchmark};
use webrobot_egraph::{BaselineConfig, BaselineSynthesizer};
use webrobot_lang::Program;
use webrobot_synth::{SynthConfig, Synthesizer};

const IDS: [u32; 9] = [12, 15, 20, 48, 56, 73, 74, 75, 76];

fn baseline_cell(b: &Benchmark, timeout: Duration) -> String {
    let recording = b.record().expect("benchmark records");
    let trace = &recording.trace;
    let synth = BaselineSynthesizer::new(BaselineConfig {
        timeout,
        ..BaselineConfig::default()
    });
    let deadline = Instant::now() + timeout;
    for len in 1..=trace.len() {
        if Instant::now() > deadline {
            break;
        }
        let prefix = trace.prefix(len);
        let started = Instant::now();
        let outcome = synth.synthesize(&prefix);
        let elapsed = started.elapsed();
        if let Some(p) = outcome.program {
            if is_intended(&p, b, &recording) {
                return format!("{}/{}", elapsed.as_millis(), len);
            }
        }
        if outcome.timed_out {
            break;
        }
    }
    "–/–".to_string()
}

fn webrobot_cell(b: &Benchmark) -> String {
    let recording = b.record().expect("benchmark records");
    let trace = &recording.trace;
    let mut synth = Synthesizer::new(SynthConfig::default(), trace.prefix(0));
    for len in 1..=trace.len() {
        synth.observe(trace.actions()[len - 1].clone(), trace.doms()[len].clone());
        let started = Instant::now();
        let result = synth.synthesize();
        let elapsed = started.elapsed();
        let intended: Option<&Program> = result
            .programs
            .iter()
            .map(|rp| &rp.program)
            .find(|p| is_intended(p, b, &recording));
        if intended.is_some() {
            return format!("{}/{}", elapsed.as_millis(), len);
        }
    }
    "–/–".to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let timeout_secs = args
        .iter()
        .position(|a| a == "--baseline-timeout-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    let timeout = Duration::from_secs(timeout_secs);

    println!("Table 2 — Q4: X/Y = synthesis time X (ms) at shortest intended trace length Y\n");
    print!("{:<22}", "");
    for id in IDS {
        print!("{:>12}", format!("b{id}"));
    }
    println!();

    print!("{:<22}", "Baseline (e-graph)");
    for id in IDS {
        let b = benchmark(id).expect("Q4 id");
        print!("{:>12}", baseline_cell(&b, timeout));
    }
    println!();

    print!("{:<22}", "WebRobot");
    for id in IDS {
        let b = benchmark(id).expect("Q4 id");
        print!("{:>12}", webrobot_cell(&b));
    }
    println!();
    println!("\nPaper reference (ms/len): baseline 2e5/34, 12/6, 15/12, 6/8, –/–, 2/2 ×4;");
    println!("                          WebRobot 186/34, 11/6, 22/12, 12/8, 950/204, 6-7/2 ×4.");
    println!("(Trace lengths differ — our regenerated benchmarks are smaller — but the");
    println!(" ordering and growth with nesting depth are the comparison targets.)");
}
