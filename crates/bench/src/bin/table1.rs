//! Regenerates **Table 1** (Q2): ablation study — full-fledged vs
//! *No selector* vs *No incremental*.
//!
//! ```text
//! cargo run -p webrobot-bench --release --bin table1 [-- --ids 1,2,3 --threads N]
//! ```
//!
//! A benchmark counts as *solved* when the final synthesized program is
//! intended (live replay reproduces the ground-truth outputs). Each
//! variant's 76 runs fan out over a scoped-thread pool with task-id-
//! ordered collection, so the table is deterministic at any thread count.

use std::time::Duration;

use webrobot_bench::{evaluate_benchmark, par_map, parse_id_filter, thread_count, BenchmarkEval};
use webrobot_benchmarks::{suite, Benchmark};
use webrobot_synth::SynthConfig;

struct Row {
    name: &'static str,
    solved: usize,
    total: usize,
    median_acc: f64,
    avg_acc: f64,
    avg_time: Duration,
}

fn evaluate_variant(
    name: &'static str,
    cfg: SynthConfig,
    benchmarks: &[Benchmark],
    threads: usize,
) -> Row {
    let evals: Vec<BenchmarkEval> =
        par_map(benchmarks, threads, |b| evaluate_benchmark(b, cfg.clone()));
    let mut accs: Vec<f64> = evals.iter().map(|e| e.accuracy()).collect();
    accs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let times: Vec<Duration> = evals.iter().flat_map(|e| e.times.iter().copied()).collect();
    let avg_time = if times.is_empty() {
        Duration::ZERO
    } else {
        times.iter().sum::<Duration>() / times.len() as u32
    };
    Row {
        name,
        solved: evals.iter().filter(|e| e.intended).count(),
        total: evals.len(),
        median_acc: accs[accs.len() / 2],
        avg_acc: accs.iter().sum::<f64>() / accs.len() as f64,
        avg_time,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ids = parse_id_filter(&args);
    let benchmarks: Vec<Benchmark> = suite()
        .into_iter()
        .filter(|b| ids.as_ref().is_none_or(|ids| ids.contains(&b.id)))
        .collect();
    if benchmarks.is_empty() {
        eprintln!("no benchmarks matched the --ids filter (ids are 1..=76)");
        std::process::exit(2);
    }

    println!("Table 1 — Q2 ablation study");
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>14}",
        "Variant", "# solved", "acc (median)", "acc (average)", "time per test"
    );
    let variants = [
        ("Full-fledged", SynthConfig::default()),
        ("No selector", SynthConfig::no_selector()),
        ("No incremental", SynthConfig::no_incremental()),
    ];
    let threads = thread_count(&args);
    for (name, cfg) in variants {
        let row = evaluate_variant(name, cfg, &benchmarks, threads);
        println!(
            "{:<16} {:>7}/{:<3} {:>13.0}% {:>13.0}% {:>12}ms",
            row.name,
            row.solved,
            row.total,
            row.median_acc * 100.0,
            row.avg_acc * 100.0,
            row.avg_time.as_millis()
        );
    }
    println!("\nPaper reference: Full 69 solved, 98%/90%, 23 ms;");
    println!("                 No selector 38 solved, 88%/57%, 54 ms;");
    println!("                 No incremental 45 solved, 96%/72%, 32 ms.");
}
