//! Human-readable reporting for the §7.1 per-test prediction protocol:
//! the logic behind the `run_benchmark` workspace example, kept here so
//! other binaries (and tests) can reuse it instead of re-implementing the
//! loop inline.

use std::error::Error;

use webrobot_benchmarks::benchmark;
use webrobot_lang::Program;
use webrobot_semantics::action_consistent;
use webrobot_synth::{SynthConfig, Synthesizer};

/// Runs the prediction protocol on benchmark `id` and prints a report to
/// stdout: suite metadata, the ground truth, per-suite accuracy, the index
/// of the first correct prediction, and the final synthesized program.
pub fn report(id: u32) -> Result<(), Box<dyn Error>> {
    let bench = benchmark(id).ok_or("benchmark ids are 1..=76")?;
    println!("b{}: {} ({:?})", bench.id, bench.name, bench.family);
    println!(
        "features: entry={} navigation={} pagination={}  expected intended: {}",
        bench.features.entry,
        bench.features.navigation,
        bench.features.pagination,
        bench.expect_intended
    );
    println!("\nGround truth:\n{}", bench.ground_truth);

    let recording = bench.record()?;
    let trace = recording.trace;
    let n = trace.len();
    println!("Recorded {n} actions. Running the prediction protocol…");

    let mut synth = Synthesizer::new(SynthConfig::default(), trace.prefix(0));
    let mut correct = 0;
    let mut first_hit = None;
    for k in 1..n {
        synth.observe(trace.actions()[k - 1].clone(), trace.doms()[k].clone());
        let result = synth.synthesize();
        let ok = result
            .predictions
            .iter()
            .any(|p| action_consistent(p, &trace.actions()[k], &trace.doms()[k]));
        if ok {
            correct += 1;
            first_hit.get_or_insert(k);
        }
    }
    println!(
        "accuracy: {correct}/{} = {:.0}%   first correct prediction at k={:?}",
        n - 1,
        100.0 * correct as f64 / (n - 1) as f64,
        first_hit
    );
    if let Some(stmts) = synth.best_program() {
        println!("\nFinal program:\n{}", Program::new(stmts));
    } else {
        println!("\nNo generalizing program at the end (task demonstrated to completion).");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_on_a_small_benchmark() {
        report(73).expect("b73 reports cleanly");
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(report(0).is_err());
        assert!(report(10_000).is_err());
    }
}
