//! A scoped-thread work pool for the §7.1 evaluation protocol.
//!
//! The 76 benchmarks are independent (one synthesizer, one simulated
//! browser each — share-nothing once the session stack is `Send`), so the
//! evaluation binaries fan them out across threads with [`par_map`]:
//! workers claim tasks from an atomic cursor (dynamic load balancing —
//! benchmark costs vary by two orders of magnitude, so static chunking
//! would leave threads idle behind b12), and results land in their task's
//! own slot, so the returned `Vec` is **in task order** regardless of
//! which worker finished when. Output is therefore byte-identical to the
//! sequential run, at any thread count.
//!
//! No dependencies beyond `std` — the vendored stubs stay offline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in item order (deterministic at any thread count).
///
/// `threads <= 1` (or a short input) degenerates to a plain sequential
/// map on the calling thread — no pool, no overhead.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let result = f(item);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every task ran exactly once")
        })
        .collect()
}

/// The worker count the evaluation binaries use: an explicit
/// `--threads N` argument wins, then the `WEBROBOT_EVAL_THREADS`
/// environment variable, then all available cores.
pub fn thread_count(args: &[String]) -> usize {
    let explicit = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|n| n.parse().ok());
    let env = std::env::var("WEBROBOT_EVAL_THREADS")
        .ok()
        .and_then(|n| n.parse().ok());
    explicit
        .or(env)
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_at_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|n| n * n).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |&n| n * n), expected, "{threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        assert_eq!(par_map(&[] as &[u32], 4, |&n| n), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 4, |&n| n + 1), vec![8]);
    }

    #[test]
    fn load_is_dynamically_balanced() {
        // Uneven costs: one heavy task among many light ones must not
        // serialize the rest behind it (smoke: just runs to completion
        // with correct results).
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(&items, 4, |&n| {
            if n == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn thread_count_precedence() {
        let args: Vec<String> = ["--threads".into(), "3".into()].to_vec();
        assert_eq!(thread_count(&args), 3);
        assert!(thread_count(&[]) >= 1);
        let bogus: Vec<String> = ["--threads".into(), "zero".into()].to_vec();
        assert!(thread_count(&bogus) >= 1);
    }
}
