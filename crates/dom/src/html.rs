//! A small HTML subset parser and serializer.
//!
//! The website simulator and tests describe pages in ordinary HTML. The
//! subset is deliberately strict: every element has an explicit closing tag
//! or is self-closed (`<input .../>`), attributes are double- or
//! single-quoted, and text may not contain `<`. Comments (`<!-- -->`) and a
//! leading doctype are skipped.

use crate::error::DomError;
use crate::node::{Dom, NodeId};

/// Parses an HTML document into a [`Dom`].
///
/// The outermost element becomes the DOM root.
///
/// # Errors
///
/// Returns [`DomError`] on malformed markup (unclosed tags, tag mismatch,
/// stray text outside the root element).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), webrobot_dom::DomError> {
/// let dom = webrobot_dom::parse_html(
///     "<html><body><input name='q' value=''/><button>GO</button></body></html>",
/// )?;
/// assert_eq!(dom.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn parse_html(input: &str) -> Result<Dom, DomError> {
    Parser { input, pos: 0 }.parse_document()
}

/// A parsed open tag: element name, attributes, and whether it self-closed.
type OpenTag = (String, Vec<(String, String)>, bool);

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> DomError {
        DomError::new(message, self.pos)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn skip_meta(&mut self) {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.rest().starts_with("<!") {
                match self.rest().find('>') {
                    Some(end) => self.pos += end + 1,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_document(mut self) -> Result<Dom, DomError> {
        self.skip_meta();
        if !self.rest().starts_with('<') {
            return Err(self.err("expected root element"));
        }
        let (tag, attrs, self_closing) = self.parse_open_tag()?;
        let mut dom = Dom::new(tag.clone());
        for (k, v) in attrs {
            dom.set_attr(NodeId::ROOT, k, v);
        }
        if !self_closing {
            self.parse_children(&mut dom, NodeId::ROOT, &tag)?;
        }
        self.skip_meta();
        if !self.rest().is_empty() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(dom)
    }

    /// Parses children of `parent` until the matching close tag.
    fn parse_children(&mut self, dom: &mut Dom, parent: NodeId, tag: &str) -> Result<(), DomError> {
        loop {
            self.skip_meta();
            if self.rest().starts_with("</") {
                self.pos += 2;
                let name = self.parse_name()?;
                self.skip_ws();
                if !self.rest().starts_with('>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                if name != tag {
                    return Err(self.err(format!("mismatched close: </{name}> for <{tag}>")));
                }
                return Ok(());
            } else if self.rest().starts_with('<') {
                let (child_tag, attrs, self_closing) = self.parse_open_tag()?;
                let child = dom.append(parent, child_tag.clone());
                for (k, v) in attrs {
                    dom.set_attr(child, k, v);
                }
                if !self_closing {
                    self.parse_children(dom, child, &child_tag)?;
                }
            } else if self.rest().is_empty() {
                return Err(self.err(format!("unclosed element <{tag}>")));
            } else {
                let end = self.rest().find('<').unwrap_or(self.rest().len());
                let text = self.rest()[..end].trim();
                if !text.is_empty() {
                    let existing = dom.text(parent).to_string();
                    if existing.is_empty() {
                        dom.set_text(parent, text);
                    } else {
                        dom.set_text(parent, format!("{existing} {text}"));
                    }
                }
                self.pos += end;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, DomError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_open_tag(&mut self) -> Result<OpenTag, DomError> {
        debug_assert!(self.rest().starts_with('<'));
        self.pos += 1;
        let tag = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with("/>") {
                self.pos += 2;
                return Ok((tag, attrs, true));
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                return Ok((tag, attrs, false));
            }
            if self.rest().is_empty() {
                return Err(self.err("unterminated open tag"));
            }
            let name = self.parse_name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                attrs.push((name, String::new()));
                continue;
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err("expected quoted attribute value")),
            };
            self.pos += 1;
            let end = self
                .rest()
                .find(quote)
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let value = self.rest()[..end].to_string();
            self.pos += end + 1;
            attrs.push((name, value));
        }
    }
}

/// Serializes a [`Dom`] back to HTML.
///
/// Inverse of [`parse_html`] up to whitespace: `parse_html(to_html(d)) == d`
/// for DOMs whose text contains no markup characters.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), webrobot_dom::DomError> {
/// let html = "<div class='x'><span>hi</span></div>";
/// let dom = webrobot_dom::parse_html(html)?;
/// let out = webrobot_dom::to_html(&dom);
/// assert_eq!(webrobot_dom::parse_html(&out)?, dom);
/// # Ok(())
/// # }
/// ```
pub fn to_html(dom: &Dom) -> String {
    let mut out = String::new();
    write_node(dom, NodeId::ROOT, &mut out);
    out
}

fn write_node(dom: &Dom, node: NodeId, out: &mut String) {
    out.push('<');
    out.push_str(dom.tag(node));
    for (k, v) in dom.attrs(node) {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('>');
    if !dom.text(node).is_empty() {
        out.push_str(dom.text(node));
    }
    for &c in dom.children(node) {
        write_node(dom, c, out);
    }
    out.push_str("</");
    out.push_str(dom.tag(node));
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let dom =
            parse_html("<html><body><div class=\"a\"><h3>hi</h3></div></body></html>").unwrap();
        assert_eq!(dom.len(), 4);
        let body = dom.children(NodeId::ROOT)[0];
        let div = dom.children(body)[0];
        assert_eq!(dom.attr(div, "class"), Some("a"));
    }

    #[test]
    fn parses_self_closing_and_single_quotes() {
        let dom = parse_html("<body><input name='q' value=''/><br/></body>").unwrap();
        let input = dom.children(NodeId::ROOT)[0];
        assert_eq!(dom.tag(input), "input");
        assert_eq!(dom.attr(input, "name"), Some("q"));
        assert_eq!(dom.tag(dom.children(NodeId::ROOT)[1]), "br");
    }

    #[test]
    fn parses_bare_attribute() {
        let dom = parse_html("<body><input disabled/></body>").unwrap();
        let input = dom.children(NodeId::ROOT)[0];
        assert_eq!(dom.attr(input, "disabled"), Some(""));
    }

    #[test]
    fn skips_comments_and_doctype() {
        let dom = parse_html("<!DOCTYPE html><!-- hi --><html><body></body></html>").unwrap();
        assert_eq!(dom.tag(NodeId::ROOT), "html");
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(parse_html("<a><b></a></b>").is_err());
        assert!(parse_html("<a>").is_err());
        assert!(parse_html("text only").is_err());
        assert!(parse_html("<a></a><b></b>").is_err());
    }

    #[test]
    fn round_trip() {
        let html = "<html><body><div class=\"item\">x<h3>one</h3></div></body></html>";
        let dom = parse_html(html).unwrap();
        let printed = to_html(&dom);
        assert_eq!(parse_html(&printed).unwrap(), dom);
    }

    #[test]
    fn text_is_attached_to_parent() {
        let dom = parse_html("<p>hello <b>bold</b> world</p>").unwrap();
        assert_eq!(dom.text(NodeId::ROOT), "hello world");
        let b = dom.children(NodeId::ROOT)[0];
        assert_eq!(dom.text(b), "bold");
    }
}
