//! A fast, non-cryptographic hasher for the synthesis-side memo tables.
//!
//! The engine's hot maps key on machine words (interned ids, precomputed
//! path digests) or small tuples of them; the standard library's SipHash
//! spends more time per probe than the lookup itself. This is the
//! rotate–xor–multiply construction popularized by the Firefox and rustc
//! hashers: one multiply per word, quality adequate for in-memory tables,
//! and no DoS resistance — which these process-internal tables do not
//! need.
//!
//! Not suitable for anything attacker-controlled or persisted: hash
//! values are an implementation detail and may change between builds.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: 2^64 / φ, the usual Fibonacci-hashing constant.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiplicative hasher. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" differ.
            buf[7] = rest.len() as u8;
            self.word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.word(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&("a", 1u32)), hash_of(&("a", 2u32)));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999, 1998)), Some(&999));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
