//! Arena-backed interning of selector components.
//!
//! The synthesis engine keys several memo tables on `(DOM index, Path)`
//! and joins decompositions on `(prefix, axis, pred, suffix)` tuples.
//! With owned [`Path`]s those keys clone string-laden step vectors and
//! re-hash them on every probe. A [`PathInterner`] maps each distinct
//! [`Pred`], [`Step`] and [`Path`] to a dense `Copy` id exactly once;
//! afterwards keys hash and compare as machine words, and the arena is
//! the single owner of the structured value.
//!
//! Ids are only meaningful relative to the interner that produced them:
//! two tables may assign the same id to different paths. The synthesis
//! engine threads exactly one interner per [`SynthContext`]
//! (`webrobot-synth`), which is what makes id equality coincide with
//! structural equality there. Tables are append-only, so ids never
//! dangle and memoized derived facts keyed on ids stay valid for the
//! lifetime of the table.

use crate::fxhash::FxHashMap;

use crate::path::{Path, Pred, Step};

/// Interned [`Pred`] handle. Equal ids ⇔ structurally equal predicates
/// (within one [`PathInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

/// Interned [`Step`] handle. Equal ids ⇔ structurally equal steps
/// (within one [`PathInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(u32);

/// Interned [`Path`] handle. Equal ids ⇔ structurally equal paths
/// (within one [`PathInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

/// Interning table for predicates, steps and paths.
///
/// # Example
///
/// ```
/// use webrobot_dom::{Path, PathInterner};
///
/// let mut table = PathInterner::new();
/// let p: Path = "/body[1]/div[2]".parse()?;
/// let id = table.path(&p);
/// assert_eq!(table.path(&p), id); // stable across re-interning
/// assert_eq!(table.get_path(id), &p); // round-trips
/// # Ok::<(), webrobot_dom::PathParseError>(())
/// ```
#[derive(Debug, Default)]
pub struct PathInterner {
    preds: Vec<Pred>,
    pred_ids: FxHashMap<Pred, PredId>,
    steps: Vec<Step>,
    step_ids: FxHashMap<Step, StepId>,
    paths: Vec<Path>,
    path_ids: FxHashMap<Path, PathId>,
    /// Memoized child derivations: `joins[(p, s)] = intern(get(p) ∘ s)`.
    joins: FxHashMap<(PathId, StepId), PathId>,
}

impl PathInterner {
    /// Creates an empty table.
    pub fn new() -> PathInterner {
        PathInterner::default()
    }

    /// Interns a predicate.
    pub fn pred(&mut self, pred: &Pred) -> PredId {
        if let Some(&id) = self.pred_ids.get(pred) {
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(pred.clone());
        self.pred_ids.insert(pred.clone(), id);
        id
    }

    /// Interns a step.
    pub fn step(&mut self, step: &Step) -> StepId {
        if let Some(&id) = self.step_ids.get(step) {
            return id;
        }
        let id = StepId(self.steps.len() as u32);
        self.steps.push(step.clone());
        self.step_ids.insert(step.clone(), id);
        id
    }

    /// Interns a path.
    pub fn path(&mut self, path: &Path) -> PathId {
        if let Some(&id) = self.path_ids.get(path) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(path.clone());
        self.path_ids.insert(path.clone(), id);
        id
    }

    /// The child path `base ∘ step`, interned. Memoized so repeated
    /// derivation of the same child (the loop-guard hot path) allocates
    /// the extended step vector once, not per derivation.
    pub fn join(&mut self, base: PathId, step: StepId) -> PathId {
        if let Some(&id) = self.joins.get(&(base, step)) {
            return id;
        }
        let joined = self.get_path(base).join(self.get_step(step).clone());
        let id = self.path(&joined);
        self.joins.insert((base, step), id);
        id
    }

    /// Resolves a predicate id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different interner.
    pub fn get_pred(&self, id: PredId) -> &Pred {
        &self.preds[id.0 as usize]
    }

    /// Resolves a step id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different interner.
    pub fn get_step(&self, id: StepId) -> &Step {
        &self.steps[id.0 as usize]
    }

    /// Resolves a path id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different interner.
    pub fn get_path(&self, id: PathId) -> &Path {
        &self.paths[id.0 as usize]
    }

    /// Step count of an interned path without materializing it.
    pub fn path_len(&self, id: PathId) -> usize {
        self.get_path(id).len()
    }

    /// Number of distinct paths interned so far.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` iff no path has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn ids_are_stable_and_round_trip() {
        let mut t = PathInterner::new();
        let a = t.path(&p("/body[1]/div[1]"));
        let b = t.path(&p("/body[1]/div[2]"));
        assert_ne!(a, b);
        assert_eq!(t.path(&p("/body[1]/div[1]")), a);
        assert_eq!(t.get_path(a), &p("/body[1]/div[1]"));
        assert_eq!(t.get_path(b), &p("/body[1]/div[2]"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_matches_path_join() {
        let mut t = PathInterner::new();
        let base = t.path(&p("/body[1]"));
        let step = t.step(&Step::child(Pred::tag("div"), 3));
        let joined = t.join(base, step);
        assert_eq!(t.get_path(joined), &p("/body[1]/div[3]"));
        // Memoized: the same derivation returns the same id.
        assert_eq!(t.join(base, step), joined);
        // And agrees with interning the materialized join.
        assert_eq!(t.path(&p("/body[1]/div[3]")), joined);
    }

    #[test]
    fn preds_and_steps_deduplicate() {
        let mut t = PathInterner::new();
        let pr = Pred::with_attr("div", "class", "item");
        assert_eq!(t.pred(&pr), t.pred(&pr.clone()));
        let st = Step::descendant(pr.clone(), 2);
        assert_eq!(t.step(&st), t.step(&st.clone()));
        let (pid, sid) = (t.pred(&pr), t.step(&st));
        assert_eq!(t.get_pred(pid), &pr);
        assert_eq!(t.get_step(sid), &st);
    }
}
