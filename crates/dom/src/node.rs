//! Arena-based DOM trees.

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::path::{Path, Pred, Step};

/// Upper bound on cached resolutions per DOM. A full cache keeps
/// answering lookups for the paths it already holds; further distinct
/// paths are resolved by walking, uncached. Loop guards and validation
/// revisit a working set far below this bound.
const RESOLVE_CACHE_CAP: usize = 4096;

/// Interior-mutable memo of root-based path resolutions on one [`Dom`].
///
/// Semantically invisible: cloning a DOM starts an empty cache, equality
/// ignores it, and every `&mut self` mutator clears it (resolution is a
/// pure function of the tree, so cached entries are valid exactly until
/// the tree changes). A `Mutex` rather than a `RefCell` keeps `Dom`
/// `Send + Sync`; snapshots are resolved by one shard thread at a time,
/// so the lock is uncontended in practice.
struct ResolveCache {
    map: Mutex<FxHashMap<Path, Option<NodeId>>>,
    /// Monotonic per-DOM hit/miss counters. Living inside the cache (not
    /// in process-wide statics) keeps deltas exact when several shards
    /// synthesize concurrently: each session resolves only against its
    /// own snapshots, so sampling the snapshots' counters attributes
    /// every resolution to the right session.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResolveCache {
    fn new() -> ResolveCache {
        ResolveCache {
            map: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Locks the map, recovering from poisoning: the cache holds no
    /// invariants beyond "entries were computed on this tree", which a
    /// panic mid-insert cannot break.
    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<Path, Option<NodeId>>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get(&self, path: &Path) -> Option<Option<NodeId>> {
        self.lock().get(path).copied()
    }

    fn insert(&self, path: &Path, resolved: Option<NodeId>) {
        let mut map = self.lock();
        if map.len() < RESOLVE_CACHE_CAP {
            map.insert(path.clone(), resolved);
        }
    }

    /// Drops every entry. Requires `&mut`, so all mutation sites (which
    /// already hold `&mut Dom`) invalidate without touching the lock.
    fn invalidate(&mut self) {
        self.map
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// A fresh DOM (or clone) starts cold: cached node ids are indices into
/// *this* arena's history of mutations, never transferable.
impl Clone for ResolveCache {
    fn clone(&self) -> ResolveCache {
        ResolveCache::new()
    }
}

/// The cache never participates in DOM equality (it is derived data).
impl PartialEq for ResolveCache {
    fn eq(&self, _other: &ResolveCache) -> bool {
        true
    }
}
impl Eq for ResolveCache {}

impl fmt::Debug for ResolveCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResolveCache({} entries)", self.lock().len())
    }
}

/// Index of a node inside a [`Dom`] arena.
///
/// `NodeId(0)` is always the document root element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The document root element.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Node {
    pub tag: String,
    pub attrs: Vec<(String, String)>,
    /// Direct text content of this element (before any child elements).
    pub text: String,
    pub children: Vec<NodeId>,
    pub parent: Option<NodeId>,
}

/// A DOM snapshot: an arena of element nodes rooted at [`NodeId::ROOT`].
///
/// `Dom` values are immutable from the synthesizer's point of view; the
/// website simulator mutates a working copy and snapshots it (cheaply shared
/// through `Arc<Dom>`) into the recorded DOM trace Π.
///
/// # Example
///
/// ```
/// use webrobot_dom::Dom;
///
/// let mut dom = Dom::new("html");
/// let body = dom.append(webrobot_dom::NodeId::ROOT, "body");
/// let a = dom.append(body, "a");
/// dom.set_text(a, "hello");
/// assert_eq!(dom.text_content(a), "hello");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dom {
    nodes: Vec<Node>,
    /// Memoized root-based resolutions; derived data, invisible to
    /// `Clone`/`PartialEq` (see [`ResolveCache`]).
    cache: ResolveCache,
}

impl Dom {
    /// Creates a DOM with a single root element of the given tag.
    pub fn new(root_tag: impl Into<String>) -> Dom {
        Dom {
            nodes: vec![Node {
                tag: root_tag.into(),
                attrs: Vec::new(),
                text: String::new(),
                children: Vec::new(),
                parent: None,
            }],
            cache: ResolveCache::new(),
        }
    }

    /// Root-based resolution of `path` through the per-DOM memo: loop
    /// guards, validation and ranking resolve the same few selectors on
    /// the same snapshot over and over, so after the first walk each
    /// re-check is a hash probe. Falls back to the plain walk (uncached)
    /// once the cache is at capacity.
    pub(crate) fn resolve_cached(&self, path: &Path) -> Option<NodeId> {
        if path.is_empty() {
            return Some(NodeId::ROOT);
        }
        if let Some(hit) = self.cache.get(path) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let resolved = path.resolve_from(self, NodeId::ROOT);
        self.cache.insert(path, resolved);
        resolved
    }

    /// Snapshot of this DOM's monotonic `(hits, misses)` resolution-cache
    /// counters (see [`Path::resolve`]). Callers sample before/after a
    /// region and subtract; because the counters live on the DOM rather
    /// than in process-wide statics, the deltas stay exact even when
    /// other threads resolve against *their* snapshots concurrently.
    /// Clones start from zero, like the cache itself.
    pub fn resolve_cache_counters(&self) -> (u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the DOM has only the root node and the root is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    /// Appends a fresh child element with tag `tag` under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this DOM.
    pub fn append(&mut self, parent: NodeId, tag: impl Into<String>) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "parent not in arena");
        self.cache.invalidate();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            tag: tag.into(),
            attrs: Vec::new(),
            text: String::new(),
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Moves the `from`-th child of `parent` (0-based, document order) to
    /// position `to` among the remaining siblings, shifting the others.
    /// Out-of-range indices are a no-op — callers like the benchmark
    /// perturbation fuzzer draw indices blindly from a seeded RNG.
    pub fn move_child(&mut self, parent: NodeId, from: usize, to: usize) {
        let n = self.nodes[parent.index()].children.len();
        if from >= n || to >= n || from == to {
            return;
        }
        self.cache.invalidate();
        let children = &mut self.nodes[parent.index()].children;
        let child = children.remove(from);
        children.insert(to, child);
    }

    /// Removes `node` (and its entire subtree) from its parent's child list.
    ///
    /// The arena entries remain allocated but become unreachable; selector
    /// resolution never sees removed subtrees. Removing the root is a no-op.
    pub fn detach(&mut self, node: NodeId) {
        self.cache.invalidate();
        if let Some(parent) = self.nodes[node.index()].parent {
            self.nodes[parent.index()].children.retain(|&c| c != node);
            self.nodes[node.index()].parent = None;
        }
    }

    /// Tag of `node`.
    pub fn tag(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].tag
    }

    /// Direct text of `node` (not including descendants).
    pub fn text(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].text
    }

    /// Replaces the direct text of `node`.
    pub fn set_text(&mut self, node: NodeId, text: impl Into<String>) {
        // Text never affects resolution, but keeping "any mutation
        // invalidates" as the invariant is cheaper than auditing which
        // mutations a future predicate form might observe.
        self.cache.invalidate();
        self.nodes[node.index()].text = text.into();
    }

    /// Value of attribute `name` on `node`, if present.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        self.nodes[node.index()]
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes of `node` in insertion order.
    pub fn attrs(&self, node: NodeId) -> &[(String, String)] {
        &self.nodes[node.index()].attrs
    }

    /// Sets (or replaces) attribute `name` on `node`.
    pub fn set_attr(&mut self, node: NodeId, name: impl Into<String>, value: impl Into<String>) {
        self.cache.invalidate();
        let name = name.into();
        let value = value.into();
        let attrs = &mut self.nodes[node.index()].attrs;
        match attrs.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => attrs.push((name, value)),
        }
    }

    /// Children of `node` in document order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// `true` iff `node` refers to a live (attached) node of this DOM.
    pub fn contains(&self, node: NodeId) -> bool {
        if node.index() >= self.nodes.len() {
            return false;
        }
        // Walk to the root; detached subtrees fail to reach it.
        let mut cur = node;
        loop {
            match self.nodes[cur.index()].parent {
                Some(p) => cur = p,
                None => return cur == NodeId::ROOT,
            }
        }
    }

    /// Concatenated text of `node` and all its descendants, in document
    /// order, separated by single spaces where both sides are non-empty.
    pub fn text_content(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(node, &mut out);
        out
    }

    fn collect_text(&self, node: NodeId, out: &mut String) {
        let n = &self.nodes[node.index()];
        if !n.text.is_empty() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&n.text);
        }
        for &c in &n.children {
            self.collect_text(c, out);
        }
    }

    /// Preorder (document order) iterator over the subtree rooted at `node`,
    /// *excluding* `node` itself — this is the paper's descendant axis.
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        let mut stack = Vec::new();
        for &c in self.nodes[node.index()].children.iter().rev() {
            stack.push(c);
        }
        Descendants { dom: self, stack }
    }

    /// Tests whether `node` satisfies predicate `pred`.
    pub fn matches(&self, node: NodeId, pred: &Pred) -> bool {
        let n = &self.nodes[node.index()];
        if n.tag != pred.tag {
            return false;
        }
        match &pred.attr {
            None => true,
            Some((name, value)) => self.attr(node, name) == Some(value.as_str()),
        }
    }

    /// `i`-th (1-based) child of `base` matching `pred`.
    pub fn nth_child(&self, base: NodeId, pred: &Pred, i: usize) -> Option<NodeId> {
        if i == 0 {
            return None;
        }
        self.children(base)
            .iter()
            .copied()
            .filter(|&c| self.matches(c, pred))
            .nth(i - 1)
    }

    /// `i`-th (1-based) descendant of `base` matching `pred`, in document
    /// order, excluding `base` itself.
    pub fn nth_descendant(&self, base: NodeId, pred: &Pred, i: usize) -> Option<NodeId> {
        if i == 0 {
            return None;
        }
        self.descendants(base)
            .filter(|&d| self.matches(d, pred))
            .nth(i - 1)
    }

    /// 1-based position of `node` among `base`'s children matching `pred`.
    ///
    /// Returns `None` if `node` is not a matching child of `base`.
    pub fn child_match_index(&self, base: NodeId, pred: &Pred, node: NodeId) -> Option<usize> {
        let mut count = 0;
        for &c in self.children(base) {
            if self.matches(c, pred) {
                count += 1;
                if c == node {
                    return Some(count);
                }
            }
        }
        None
    }

    /// 1-based position of `node` among `base`'s descendants matching
    /// `pred` (document order, excluding `base`).
    pub fn descendant_match_index(&self, base: NodeId, pred: &Pred, node: NodeId) -> Option<usize> {
        let mut count = 0;
        for d in self.descendants(base) {
            if self.matches(d, pred) {
                count += 1;
                if d == node {
                    return Some(count);
                }
            }
        }
        None
    }

    /// The absolute XPath of `node`: a chain of child steps with bare tag
    /// predicates, indexed among same-tag siblings — exactly the selectors a
    /// browser-side recorder emits (paper §7.1 converts all recorded
    /// selectors to this form).
    ///
    /// # Panics
    ///
    /// Panics if `node` is detached from the document tree.
    pub fn absolute_path(&self, node: NodeId) -> Path {
        let mut steps = Vec::new();
        let mut cur = node;
        while let Some(parent) = self.parent(cur) {
            let pred = Pred::tag(self.tag(cur));
            let idx = self
                .child_match_index(parent, &pred, cur)
                .expect("node must be attached to its parent");
            steps.push(Step::child(pred, idx));
            cur = parent;
        }
        assert_eq!(cur, NodeId::ROOT, "absolute_path on a detached node");
        steps.reverse();
        Path::new(steps)
    }

    /// All live node ids in document order (preorder from the root),
    /// including the root.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut out = vec![NodeId::ROOT];
        out.extend(self.descendants(NodeId::ROOT));
        out
    }

    /// Structural hash of the DOM, used by tests and the recorder to detect
    /// whether an action mutated the page.
    pub fn structure_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for id in self.all_nodes() {
            let n = &self.nodes[id.index()];
            n.tag.hash(&mut h);
            n.attrs.hash(&mut h);
            n.text.hash(&mut h);
            n.children.len().hash(&mut h);
        }
        h.finish()
    }
}

/// Iterator over the descendants of a node in document order.
///
/// Produced by [`Dom::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    dom: &'a Dom,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        for &c in self.dom.children(next).iter().rev() {
            self.stack.push(c);
        }
        Some(next)
    }
}

/// Fluent builder for constructing DOM trees in tests, examples and site
/// templates.
///
/// # Example
///
/// ```
/// use webrobot_dom::DomBuilder;
///
/// let dom = DomBuilder::new("html")
///     .open("body")
///     .open_with("div", &[("class", "item")])
///     .leaf_text("h3", "First")
///     .close()
///     .close()
///     .finish();
/// assert_eq!(dom.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DomBuilder {
    dom: Dom,
    stack: Vec<NodeId>,
}

impl DomBuilder {
    /// Starts a builder with the given root tag; the cursor is at the root.
    pub fn new(root_tag: impl Into<String>) -> DomBuilder {
        DomBuilder {
            dom: Dom::new(root_tag),
            stack: vec![NodeId::ROOT],
        }
    }

    fn cursor(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Opens a child element and moves the cursor into it.
    pub fn open(mut self, tag: &str) -> DomBuilder {
        let id = self.dom.append(self.cursor(), tag);
        self.stack.push(id);
        self
    }

    /// Opens a child element with attributes and moves the cursor into it.
    pub fn open_with(mut self, tag: &str, attrs: &[(&str, &str)]) -> DomBuilder {
        let id = self.dom.append(self.cursor(), tag);
        for (k, v) in attrs {
            self.dom.set_attr(id, *k, *v);
        }
        self.stack.push(id);
        self
    }

    /// Adds a childless element with text under the cursor.
    pub fn leaf_text(mut self, tag: &str, text: &str) -> DomBuilder {
        let id = self.dom.append(self.cursor(), tag);
        self.dom.set_text(id, text);
        self
    }

    /// Adds a childless element with attributes and text under the cursor.
    pub fn leaf_with(mut self, tag: &str, attrs: &[(&str, &str)], text: &str) -> DomBuilder {
        let id = self.dom.append(self.cursor(), tag);
        for (k, v) in attrs {
            self.dom.set_attr(id, *k, *v);
        }
        self.dom.set_text(id, text);
        self
    }

    /// Sets text on the element currently under the cursor.
    pub fn text(mut self, text: &str) -> DomBuilder {
        let cur = self.cursor();
        self.dom.set_text(cur, text);
        self
    }

    /// Sets an attribute on the element currently under the cursor.
    pub fn attr(mut self, name: &str, value: &str) -> DomBuilder {
        let cur = self.cursor();
        self.dom.set_attr(cur, name, value);
        self
    }

    /// Closes the current element, moving the cursor to its parent.
    ///
    /// # Panics
    ///
    /// Panics when called at the root.
    pub fn close(mut self) -> DomBuilder {
        assert!(self.stack.len() > 1, "close() called at document root");
        self.stack.pop();
        self
    }

    /// Finishes the builder and returns the DOM.
    pub fn finish(self) -> Dom {
        self.dom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dom {
        // html > body > (div.a > h3, div.b > h3)
        DomBuilder::new("html")
            .open("body")
            .open_with("div", &[("class", "a")])
            .leaf_text("h3", "one")
            .close()
            .open_with("div", &[("class", "b")])
            .leaf_text("h3", "two")
            .close()
            .close()
            .finish()
    }

    #[test]
    fn append_links_parent_and_children() {
        let mut dom = Dom::new("html");
        let body = dom.append(NodeId::ROOT, "body");
        assert_eq!(dom.parent(body), Some(NodeId::ROOT));
        assert_eq!(dom.children(NodeId::ROOT), &[body]);
    }

    #[test]
    fn descendants_are_preorder() {
        let dom = sample();
        let tags: Vec<&str> = dom.descendants(NodeId::ROOT).map(|n| dom.tag(n)).collect();
        assert_eq!(tags, vec!["body", "div", "h3", "div", "h3"]);
    }

    #[test]
    fn nth_child_counts_matches_only() {
        let dom = sample();
        let body = dom.children(NodeId::ROOT)[0];
        let second_div = dom.nth_child(body, &Pred::tag("div"), 2).unwrap();
        assert_eq!(dom.attr(second_div, "class"), Some("b"));
        assert!(dom.nth_child(body, &Pred::tag("div"), 3).is_none());
        assert!(dom.nth_child(body, &Pred::tag("div"), 0).is_none());
    }

    #[test]
    fn nth_descendant_with_attr_pred() {
        let dom = sample();
        let pred = Pred::with_attr("div", "class", "b");
        let d = dom.nth_descendant(NodeId::ROOT, &pred, 1).unwrap();
        assert_eq!(dom.text_content(d), "two");
        assert!(dom.nth_descendant(NodeId::ROOT, &pred, 2).is_none());
    }

    #[test]
    fn match_indices_invert_nth() {
        let dom = sample();
        let pred = Pred::tag("h3");
        for i in 1..=2 {
            let n = dom.nth_descendant(NodeId::ROOT, &pred, i).unwrap();
            assert_eq!(dom.descendant_match_index(NodeId::ROOT, &pred, n), Some(i));
        }
    }

    #[test]
    fn absolute_path_resolves_back() {
        let dom = sample();
        for node in dom.all_nodes() {
            let path = dom.absolute_path(node);
            assert_eq!(path.resolve(&dom), Some(node), "path {path}");
        }
    }

    #[test]
    fn detach_makes_subtree_unreachable() {
        let mut dom = sample();
        let body = dom.children(NodeId::ROOT)[0];
        let div = dom.children(body)[0];
        let h3 = dom.children(div)[0];
        dom.detach(div);
        assert!(!dom.contains(div));
        assert!(!dom.contains(h3));
        assert!(dom.contains(body));
        assert_eq!(dom.nth_descendant(NodeId::ROOT, &Pred::tag("h3"), 2), None);
    }

    #[test]
    fn move_child_reorders_and_reresolves() {
        let mut dom = sample();
        let body = dom.children(NodeId::ROOT)[0];
        // Warm the resolve cache, then reorder: div.b becomes child 1.
        let first = dom.nth_child(body, &Pred::tag("div"), 1).unwrap();
        assert_eq!(dom.attr(first, "class"), Some("a"));
        dom.move_child(body, 1, 0);
        let first = dom.nth_child(body, &Pred::tag("div"), 1).unwrap();
        assert_eq!(dom.attr(first, "class"), Some("b"));
        // Paths still resolve back after the reorder.
        for node in dom.all_nodes() {
            assert_eq!(dom.absolute_path(node).resolve(&dom), Some(node));
        }
    }

    #[test]
    fn move_child_out_of_range_is_noop() {
        let mut dom = sample();
        let body = dom.children(NodeId::ROOT)[0];
        let before = dom.children(body).to_vec();
        dom.move_child(body, 5, 0);
        dom.move_child(body, 0, 5);
        dom.move_child(body, 1, 1);
        assert_eq!(dom.children(body), &before[..]);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut dom = Dom::new("html");
        dom.set_attr(NodeId::ROOT, "class", "x");
        dom.set_attr(NodeId::ROOT, "class", "y");
        assert_eq!(dom.attr(NodeId::ROOT, "class"), Some("y"));
        assert_eq!(dom.attrs(NodeId::ROOT).len(), 1);
    }

    #[test]
    fn text_content_concatenates() {
        let dom = sample();
        assert_eq!(dom.text_content(NodeId::ROOT), "one two");
    }

    #[test]
    fn structure_hash_changes_on_mutation() {
        let mut dom = sample();
        let before = dom.structure_hash();
        let body = dom.children(NodeId::ROOT)[0];
        dom.set_attr(body, "id", "main");
        assert_ne!(before, dom.structure_hash());
    }
}
