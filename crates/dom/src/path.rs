//! Concrete selectors: the paper's `ρ ::= ε | ρ/φ[i] | ρ//φ[i]` with
//! predicates `φ ::= t | t[@τ = s]`.

use std::fmt;
use std::str::FromStr;

use crate::error::PathParseError;
use crate::node::{Dom, NodeId};

/// Step axis: `/` (child) or `//` (descendant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `n/φ[i]`: the `i`-th child of `n` satisfying `φ`.
    Child,
    /// `n//φ[i]`: the `i`-th node in the subtree rooted at `n` (document
    /// order, excluding `n`) satisfying `φ`.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// Node predicate `φ ::= t | t[@τ = s]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// HTML tag `t`.
    pub tag: String,
    /// Optional attribute constraint `@τ = s`.
    pub attr: Option<(String, String)>,
}

impl Pred {
    /// Bare tag predicate `t`.
    pub fn tag(tag: impl Into<String>) -> Pred {
        Pred {
            tag: tag.into(),
            attr: None,
        }
    }

    /// Attribute predicate `t[@τ = s]`.
    pub fn with_attr(
        tag: impl Into<String>,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Pred {
        Pred {
            tag: tag.into(),
            attr: Some((name.into(), value.into())),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            None => write!(f, "{}", self.tag),
            Some((n, v)) => write!(f, "{}[@{}='{}']", self.tag, n, v),
        }
    }
}

/// One selector step `axis φ [i]` with a 1-based match index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    /// Child or descendant axis.
    pub axis: Axis,
    /// Node predicate.
    pub pred: Pred,
    /// 1-based index among nodes matching `pred` along `axis`.
    pub index: usize,
}

impl Step {
    /// Child-axis step `/φ[i]`.
    pub fn child(pred: Pred, index: usize) -> Step {
        Step {
            axis: Axis::Child,
            pred,
            index,
        }
    }

    /// Descendant-axis step `//φ[i]`.
    pub fn descendant(pred: Pred, index: usize) -> Step {
        Step {
            axis: Axis::Descendant,
            pred,
            index,
        }
    }

    /// Resolves this step from `base` on `dom`.
    pub fn resolve_from(&self, dom: &Dom, base: NodeId) -> Option<NodeId> {
        match self.axis {
            Axis::Child => dom.nth_child(base, &self.pred, self.index),
            Axis::Descendant => dom.nth_descendant(base, &self.pred, self.index),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}[{}]", self.axis, self.pred, self.index)
    }
}

/// A concrete selector `ρ`: a sequence of steps rooted at the document root
/// (`ε`).
///
/// Displayed and parsed in XPath-like syntax, e.g.
/// `/body[1]//div[@class='item'][2]/h3[1]`.
///
/// # Example
///
/// ```
/// use webrobot_dom::Path;
///
/// let p: Path = "//div[@class='item'][2]/h3[1]".parse()?;
/// assert_eq!(p.to_string(), "//div[@class='item'][2]/h3[1]");
/// # Ok::<(), webrobot_dom::PathParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// The empty selector `ε` (denotes the document root).
    pub fn root() -> Path {
        Path { steps: Vec::new() }
    }

    /// Builds a path from steps.
    pub fn new(steps: Vec<Step>) -> Path {
        Path { steps }
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns a new path with `step` appended.
    pub fn join(&self, step: Step) -> Path {
        let mut steps = self.steps.clone();
        steps.push(step);
        Path { steps }
    }

    /// Concatenates two paths.
    pub fn concat(&self, suffix: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        Path { steps }
    }

    /// `true` iff `prefix` is a step-wise prefix of this path.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.steps.len() >= prefix.steps.len() && self.steps[..prefix.steps.len()] == prefix.steps
    }

    /// Strips `prefix`, returning the remaining suffix path.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if self.starts_with(prefix) {
            Some(Path {
                steps: self.steps[prefix.steps.len()..].to_vec(),
            })
        } else {
            None
        }
    }

    /// The prefix consisting of the first `n` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> Path {
        Path {
            steps: self.steps[..n].to_vec(),
        }
    }

    /// Resolves the path on `dom` starting from the document root.
    ///
    /// Returns `None` when any step has no `i`-th match — the paper's
    /// `¬valid(ρ, π)`.
    pub fn resolve(&self, dom: &Dom) -> Option<NodeId> {
        self.resolve_from(dom, NodeId::ROOT)
    }

    /// Resolves the path on `dom` starting from `base`.
    pub fn resolve_from(&self, dom: &Dom, base: NodeId) -> Option<NodeId> {
        let mut cur = base;
        for step in &self.steps {
            cur = step.resolve_from(dom, cur)?;
        }
        Some(cur)
    }

    /// The paper's `valid(ρ, π)`: does the selector denote a node on `dom`?
    pub fn valid(&self, dom: &Dom) -> bool {
        self.resolve(dom).is_some()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "ε");
        }
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = PathParseError;

    fn from_str(s: &str) -> Result<Path, PathParseError> {
        let steps = parse_steps(s)?;
        Ok(Path { steps })
    }
}

/// Parses a step list in XPath-like syntax. Shared with the symbolic
/// selector parser in `webrobot-lang`.
pub(crate) fn parse_steps(s: &str) -> Result<Vec<Step>, PathParseError> {
    let mut steps = Vec::new();
    let bytes = s.as_bytes();
    let mut pos = 0;
    if s == "ε" || s.is_empty() {
        return Ok(steps);
    }
    while pos < bytes.len() {
        let axis = if s[pos..].starts_with("//") {
            pos += 2;
            Axis::Descendant
        } else if s[pos..].starts_with('/') {
            pos += 1;
            Axis::Child
        } else {
            return Err(PathParseError::new(s, pos, "expected '/' or '//'"));
        };
        let tag_start = pos;
        while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-') {
            pos += 1;
        }
        if pos == tag_start {
            return Err(PathParseError::new(s, pos, "expected tag name"));
        }
        let tag = &s[tag_start..pos];
        let mut attr = None;
        if s[pos..].starts_with("[@") {
            pos += 2;
            let name_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            let name = &s[name_start..pos];
            if !s[pos..].starts_with("='") {
                return Err(PathParseError::new(s, pos, "expected ='value'"));
            }
            pos += 2;
            let val_start = pos;
            while pos < bytes.len() && bytes[pos] != b'\'' {
                pos += 1;
            }
            let value = &s[val_start..pos];
            if !s[pos..].starts_with("']") {
                return Err(PathParseError::new(s, pos, "expected closing ']"));
            }
            pos += 2;
            attr = Some((name.to_string(), value.to_string()));
        }
        if !s[pos..].starts_with('[') {
            return Err(PathParseError::new(s, pos, "expected '[index]'"));
        }
        pos += 1;
        let idx_start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        let index: usize = s[idx_start..pos]
            .parse()
            .map_err(|_| PathParseError::new(s, idx_start, "expected index"))?;
        if !s[pos..].starts_with(']') {
            return Err(PathParseError::new(s, pos, "expected ']'"));
        }
        pos += 1;
        steps.push(Step {
            axis,
            pred: Pred {
                tag: tag.to_string(),
                attr,
            },
            index,
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DomBuilder;

    fn sample() -> Dom {
        DomBuilder::new("html")
            .open("body")
            .open_with("div", &[("class", "nav")])
            .leaf_text("span", "menu")
            .close()
            .open_with("div", &[("class", "item")])
            .leaf_text("h3", "one")
            .close()
            .open_with("div", &[("class", "item")])
            .leaf_text("h3", "two")
            .close()
            .close()
            .finish()
    }

    #[test]
    fn resolve_child_steps() {
        let dom = sample();
        let p: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let n = p.resolve(&dom).unwrap();
        assert_eq!(dom.text_content(n), "one");
    }

    #[test]
    fn resolve_descendant_with_attr() {
        let dom = sample();
        let p: Path = "//div[@class='item'][2]//h3[1]".parse().unwrap();
        let n = p.resolve(&dom).unwrap();
        assert_eq!(dom.text_content(n), "two");
    }

    #[test]
    fn invalid_when_index_out_of_range() {
        let dom = sample();
        let p: Path = "//div[@class='item'][3]".parse().unwrap();
        assert!(!p.valid(&dom));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "/body[1]/div[2]/h3[1]",
            "//div[@class='item'][2]//h3[1]",
            "//a[17]",
            "/html-like[1]",
        ] {
            let p: Path = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
            let back: Path = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn empty_path_is_root() {
        let dom = sample();
        assert_eq!(Path::root().resolve(&dom), Some(NodeId::ROOT));
        assert_eq!(Path::root().to_string(), "ε");
        let parsed: Path = "ε".parse().unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!("body[1]".parse::<Path>().is_err());
        assert!("/body".parse::<Path>().is_err());
        assert!("/body[x]".parse::<Path>().is_err());
        assert!("/body[@class=1]".parse::<Path>().is_err());
    }

    #[test]
    fn prefix_and_strip() {
        let p: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let pre = p.prefix(2);
        assert!(p.starts_with(&pre));
        let suffix = p.strip_prefix(&pre).unwrap();
        assert_eq!(suffix.to_string(), "/h3[1]");
        assert_eq!(pre.concat(&suffix), p);
    }

    #[test]
    fn zero_index_never_resolves() {
        let dom = sample();
        let p = Path::new(vec![Step::child(Pred::tag("body"), 0)]);
        assert!(!p.valid(&dom));
    }
}
