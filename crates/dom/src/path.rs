//! Concrete selectors: the paper's `ρ ::= ε | ρ/φ[i] | ρ//φ[i]` with
//! predicates `φ ::= t | t[@τ = s]`.

use std::fmt;
use std::str::FromStr;

use crate::error::PathParseError;
use crate::node::{Dom, NodeId};

/// Step axis: `/` (child) or `//` (descendant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `n/φ[i]`: the `i`-th child of `n` satisfying `φ`.
    Child,
    /// `n//φ[i]`: the `i`-th node in the subtree rooted at `n` (document
    /// order, excluding `n`) satisfying `φ`.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// Node predicate `φ ::= t | t[@τ = s]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// HTML tag `t`.
    pub tag: String,
    /// Optional attribute constraint `@τ = s`.
    pub attr: Option<(String, String)>,
}

impl Pred {
    /// Bare tag predicate `t`.
    pub fn tag(tag: impl Into<String>) -> Pred {
        Pred {
            tag: tag.into(),
            attr: None,
        }
    }

    /// Attribute predicate `t[@τ = s]`.
    pub fn with_attr(
        tag: impl Into<String>,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Pred {
        Pred {
            tag: tag.into(),
            attr: Some((name.into(), value.into())),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            None => write!(f, "{}", self.tag),
            Some((n, v)) => write!(f, "{}[@{}='{}']", self.tag, n, v),
        }
    }
}

/// One selector step `axis φ [i]` with a 1-based match index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    /// Child or descendant axis.
    pub axis: Axis,
    /// Node predicate.
    pub pred: Pred,
    /// 1-based index among nodes matching `pred` along `axis`.
    pub index: usize,
}

impl Step {
    /// Child-axis step `/φ[i]`.
    pub fn child(pred: Pred, index: usize) -> Step {
        Step {
            axis: Axis::Child,
            pred,
            index,
        }
    }

    /// Descendant-axis step `//φ[i]`.
    pub fn descendant(pred: Pred, index: usize) -> Step {
        Step {
            axis: Axis::Descendant,
            pred,
            index,
        }
    }

    /// Resolves this step from `base` on `dom`.
    pub fn resolve_from(&self, dom: &Dom, base: NodeId) -> Option<NodeId> {
        match self.axis {
            Axis::Child => dom.nth_child(base, &self.pred, self.index),
            Axis::Descendant => dom.nth_descendant(base, &self.pred, self.index),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}[{}]", self.axis, self.pred, self.index)
    }
}

/// A concrete selector `ρ`: a sequence of steps rooted at the document root
/// (`ε`).
///
/// Displayed and parsed in XPath-like syntax, e.g.
/// `/body[1]//div[@class='item'][2]/h3[1]`.
///
/// # Example
///
/// ```
/// use webrobot_dom::Path;
///
/// let p: Path = "//div[@class='item'][2]/h3[1]".parse()?;
/// assert_eq!(p.to_string(), "//div[@class='item'][2]/h3[1]");
/// # Ok::<(), webrobot_dom::PathParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Path {
    steps: Vec<Step>,
    /// FNV-1a digest of `steps`, computed at construction. Selector
    /// hashing dominates the resolution-cache and memo-table probes during
    /// synthesis; precomputing turns every probe into a single `u64` write
    /// instead of re-walking tag/attr strings.
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `steps` onto an FNV-1a accumulator. Sequential, so a path's hash
/// can be extended in place when appending steps ([`Path::join`],
/// [`Path::concat`]).
fn fold_steps(mut h: u64, steps: &[Step]) -> u64 {
    let mut byte = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    for step in steps {
        byte(match step.axis {
            Axis::Child => 1,
            Axis::Descendant => 2,
        });
        step.pred.tag.bytes().for_each(&mut byte);
        byte(0);
        if let Some((name, value)) = &step.pred.attr {
            byte(3);
            name.bytes().for_each(&mut byte);
            byte(0);
            value.bytes().for_each(&mut byte);
            byte(0);
        }
        for b in step.index.to_le_bytes() {
            byte(b);
        }
    }
    h
}

impl PartialEq for Path {
    fn eq(&self, other: &Path) -> bool {
        self.hash == other.hash && self.steps == other.steps
    }
}

impl Eq for Path {}

impl std::hash::Hash for Path {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Path) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Path {
    fn cmp(&self, other: &Path) -> std::cmp::Ordering {
        self.steps.cmp(&other.steps)
    }
}

impl Default for Path {
    fn default() -> Path {
        Path::root()
    }
}

impl Path {
    /// The empty selector `ε` (denotes the document root).
    pub fn root() -> Path {
        Path {
            steps: Vec::new(),
            hash: FNV_OFFSET,
        }
    }

    /// Builds a path from steps.
    pub fn new(steps: Vec<Step>) -> Path {
        let hash = fold_steps(FNV_OFFSET, &steps);
        Path { steps, hash }
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns a new path with `step` appended.
    ///
    /// Builds the step vector at its exact final capacity: clone-then-push
    /// reserved for the cloned length and then grew (amplifying twice on
    /// the loop-guard derivation hot path), while this allocates once.
    pub fn join(&self, step: Step) -> Path {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.extend_from_slice(&self.steps);
        steps.push(step);
        let hash = fold_steps(self.hash, &steps[self.steps.len()..]);
        Path { steps, hash }
    }

    /// Concatenates two paths (one exact-capacity allocation, as in
    /// [`Path::join`]).
    pub fn concat(&self, suffix: &Path) -> Path {
        let mut steps = Vec::with_capacity(self.steps.len() + suffix.steps.len());
        steps.extend_from_slice(&self.steps);
        steps.extend_from_slice(&suffix.steps);
        let hash = fold_steps(self.hash, &suffix.steps);
        Path { steps, hash }
    }

    /// `true` iff `prefix` is a step-wise prefix of this path.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.steps.len() >= prefix.steps.len() && self.steps[..prefix.steps.len()] == prefix.steps
    }

    /// Strips `prefix`, returning the remaining suffix path.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if self.starts_with(prefix) {
            Some(Path::new(self.steps[prefix.steps.len()..].to_vec()))
        } else {
            None
        }
    }

    /// The prefix consisting of the first `n` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> Path {
        Path::new(self.steps[..n].to_vec())
    }

    /// Resolves the path on `dom` starting from the document root.
    ///
    /// Returns `None` when any step has no `i`-th match — the paper's
    /// `¬valid(ρ, π)`.
    ///
    /// Root-based resolutions are memoized per DOM (invalidated on any
    /// mutation), so loop guards and validation re-checks of the same
    /// selector cost a hash probe after the first walk. Equivalent to
    /// [`Path::resolve_uncached`] by construction; the differential test
    /// `resolve_cache.rs` pins that over randomized DOMs.
    pub fn resolve(&self, dom: &Dom) -> Option<NodeId> {
        dom.resolve_cached(self)
    }

    /// [`Path::resolve`] without the per-DOM memo: always walks the tree.
    ///
    /// Exists for differential tests and benchmarks of the cache itself;
    /// callers should prefer [`Path::resolve`].
    pub fn resolve_uncached(&self, dom: &Dom) -> Option<NodeId> {
        self.resolve_from(dom, NodeId::ROOT)
    }

    /// Resolves the path on `dom` starting from `base`.
    pub fn resolve_from(&self, dom: &Dom, base: NodeId) -> Option<NodeId> {
        let mut cur = base;
        for step in &self.steps {
            cur = step.resolve_from(dom, cur)?;
        }
        Some(cur)
    }

    /// The paper's `valid(ρ, π)`: does the selector denote a node on `dom`?
    pub fn valid(&self, dom: &Dom) -> bool {
        self.resolve(dom).is_some()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "ε");
        }
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = PathParseError;

    fn from_str(s: &str) -> Result<Path, PathParseError> {
        Ok(Path::new(parse_steps(s)?))
    }
}

/// Parses a step list in XPath-like syntax. Shared with the symbolic
/// selector parser in `webrobot-lang`.
pub(crate) fn parse_steps(s: &str) -> Result<Vec<Step>, PathParseError> {
    let mut steps = Vec::new();
    let bytes = s.as_bytes();
    let mut pos = 0;
    if s == "ε" || s.is_empty() {
        return Ok(steps);
    }
    while pos < bytes.len() {
        let axis = if s[pos..].starts_with("//") {
            pos += 2;
            Axis::Descendant
        } else if s[pos..].starts_with('/') {
            pos += 1;
            Axis::Child
        } else {
            return Err(PathParseError::new(s, pos, "expected '/' or '//'"));
        };
        let tag_start = pos;
        while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-') {
            pos += 1;
        }
        if pos == tag_start {
            return Err(PathParseError::new(s, pos, "expected tag name"));
        }
        let tag = &s[tag_start..pos];
        let mut attr = None;
        if s[pos..].starts_with("[@") {
            pos += 2;
            let name_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            let name = &s[name_start..pos];
            if !s[pos..].starts_with("='") {
                return Err(PathParseError::new(s, pos, "expected ='value'"));
            }
            pos += 2;
            let val_start = pos;
            while pos < bytes.len() && bytes[pos] != b'\'' {
                pos += 1;
            }
            let value = &s[val_start..pos];
            if !s[pos..].starts_with("']") {
                return Err(PathParseError::new(s, pos, "expected closing ']"));
            }
            pos += 2;
            attr = Some((name.to_string(), value.to_string()));
        }
        if !s[pos..].starts_with('[') {
            return Err(PathParseError::new(s, pos, "expected '[index]'"));
        }
        pos += 1;
        let idx_start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        let index: usize = s[idx_start..pos]
            .parse()
            .map_err(|_| PathParseError::new(s, idx_start, "expected index"))?;
        if !s[pos..].starts_with(']') {
            return Err(PathParseError::new(s, pos, "expected ']'"));
        }
        pos += 1;
        steps.push(Step {
            axis,
            pred: Pred {
                tag: tag.to_string(),
                attr,
            },
            index,
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DomBuilder;

    fn sample() -> Dom {
        DomBuilder::new("html")
            .open("body")
            .open_with("div", &[("class", "nav")])
            .leaf_text("span", "menu")
            .close()
            .open_with("div", &[("class", "item")])
            .leaf_text("h3", "one")
            .close()
            .open_with("div", &[("class", "item")])
            .leaf_text("h3", "two")
            .close()
            .close()
            .finish()
    }

    #[test]
    fn resolve_child_steps() {
        let dom = sample();
        let p: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let n = p.resolve(&dom).unwrap();
        assert_eq!(dom.text_content(n), "one");
    }

    #[test]
    fn resolve_descendant_with_attr() {
        let dom = sample();
        let p: Path = "//div[@class='item'][2]//h3[1]".parse().unwrap();
        let n = p.resolve(&dom).unwrap();
        assert_eq!(dom.text_content(n), "two");
    }

    #[test]
    fn invalid_when_index_out_of_range() {
        let dom = sample();
        let p: Path = "//div[@class='item'][3]".parse().unwrap();
        assert!(!p.valid(&dom));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "/body[1]/div[2]/h3[1]",
            "//div[@class='item'][2]//h3[1]",
            "//a[17]",
            "/html-like[1]",
        ] {
            let p: Path = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
            let back: Path = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn empty_path_is_root() {
        let dom = sample();
        assert_eq!(Path::root().resolve(&dom), Some(NodeId::ROOT));
        assert_eq!(Path::root().to_string(), "ε");
        let parsed: Path = "ε".parse().unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!("body[1]".parse::<Path>().is_err());
        assert!("/body".parse::<Path>().is_err());
        assert!("/body[x]".parse::<Path>().is_err());
        assert!("/body[@class=1]".parse::<Path>().is_err());
    }

    #[test]
    fn prefix_and_strip() {
        let p: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let pre = p.prefix(2);
        assert!(p.starts_with(&pre));
        let suffix = p.strip_prefix(&pre).unwrap();
        assert_eq!(suffix.to_string(), "/h3[1]");
        assert_eq!(pre.concat(&suffix), p);
    }

    #[test]
    fn zero_index_never_resolves() {
        let dom = sample();
        let p = Path::new(vec![Step::child(Pred::tag("body"), 0)]);
        assert!(!p.valid(&dom));
    }
}
