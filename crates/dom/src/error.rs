//! Error types for the DOM substrate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a selector path fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError {
    input: String,
    position: usize,
    message: &'static str,
}

impl PathParseError {
    pub(crate) fn new(input: &str, position: usize, message: &'static str) -> PathParseError {
        PathParseError {
            input: input.to_string(),
            position,
            message,
        }
    }

    /// Byte offset in the input where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid selector syntax at byte {} of {:?}: {}",
            self.position, self.input, self.message
        )
    }
}

impl Error for PathParseError {}

/// Error produced when parsing HTML fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomError {
    message: String,
    position: usize,
}

impl DomError {
    pub(crate) fn new(message: impl Into<String>, position: usize) -> DomError {
        DomError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the input where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid html at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for DomError {}
