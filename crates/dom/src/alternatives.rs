//! `AlternativeSelectors`: enumerating selectors equivalent to a recorded
//! absolute XPath (paper §2 "Selector search", Figs. 10–11).
//!
//! The recorder emits full absolute XPaths, but intended programs usually
//! need more general selectors (e.g. `//div[@class='locatorPhone']`). Given
//! a concrete selector and the DOM it was recorded on, [`alternatives`]
//! returns a bounded set of selectors that all denote the *same* node on
//! that DOM, in three shapes:
//!
//! 1. the input selector itself (identity),
//! 2. `abs(ancestor) · //φ[k]` — one descendant hop straight to the node,
//! 3. `abs(ancestor) · //φ_m[k] · rel` — one descendant hop to an
//!    intermediate ancestor `m`, followed by either the absolute child steps
//!    from `m` to the node or a second descendant hop `//φ_t[k']`.
//!
//! Predicates `φ` range over the bare tag and `tag[@τ=s]` for each
//! *discriminating attribute* `τ` (by default `id`, `class`, `name`). All
//! results are verified by resolution and deduplicated.

use std::collections::BTreeSet;

use crate::node::{Dom, NodeId};
use crate::path::{Path, Pred, Step};

/// Tuning knobs for [`alternatives`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AltConfig {
    /// Attributes allowed to appear in `t[@τ=s]` predicates.
    pub attrs: Vec<String>,
    /// Maximum number of alternatives returned (smallest paths first).
    pub max_alternatives: usize,
    /// Maximum number of ancestors considered as hop bases, counted upward
    /// from the target node (the document root is always considered).
    pub max_ancestor_depth: usize,
}

impl Default for AltConfig {
    fn default() -> AltConfig {
        AltConfig {
            attrs: vec!["id".to_string(), "class".to_string(), "name".to_string()],
            max_alternatives: 128,
            max_ancestor_depth: 8,
        }
    }
}

/// Candidate predicates for `node`: its bare tag plus one `tag[@τ=s]` per
/// configured attribute present on the node.
fn preds_of(dom: &Dom, node: NodeId, cfg: &AltConfig) -> Vec<Pred> {
    let mut out = vec![Pred::tag(dom.tag(node))];
    for attr in &cfg.attrs {
        if let Some(value) = dom.attr(node, attr) {
            out.push(Pred::with_attr(dom.tag(node), attr.clone(), value));
        }
    }
    out
}

/// Chain of ancestors of `node` from the root down to `node` itself.
fn ancestor_chain(dom: &Dom, node: NodeId) -> Vec<NodeId> {
    let mut chain = vec![node];
    let mut cur = node;
    while let Some(p) = dom.parent(cur) {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
}

/// Absolute child steps from `from` (an ancestor) down to `to`.
fn child_steps_between(dom: &Dom, from: NodeId, to: NodeId) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut cur = to;
    while cur != from {
        let parent = dom.parent(cur).expect("from must be an ancestor of to");
        let pred = Pred::tag(dom.tag(cur));
        let idx = dom
            .child_match_index(parent, &pred, cur)
            .expect("attached node");
        steps.push(Step::child(pred, idx));
        cur = parent;
    }
    steps.reverse();
    steps
}

/// Enumerates alternative selectors for the node denoted by `path` on `dom`.
///
/// Every returned path resolves to the same node as `path` on `dom`. The
/// input `path` itself is always included (so the result is never empty),
/// which makes the *no-selector-search* ablation of paper §7.2 a special
/// case (`max_alternatives = 1` with identity only).
///
/// Returns an empty vector when `path` does not resolve on `dom`.
///
/// # Example
///
/// ```
/// # use webrobot_dom::{alternatives, parse_html, AltConfig, Path};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dom = parse_html(
///     "<html><body><div class='nav'></div>\
///      <div class='item'><h3>x</h3></div></body></html>",
/// )?;
/// let abs: Path = "/body[1]/div[2]/h3[1]".parse()?;
/// let alts = alternatives(&dom, &abs, &AltConfig::default());
/// assert!(alts.contains(&"//div[@class='item'][1]//h3[1]".parse()?));
/// # Ok(())
/// # }
/// ```
pub fn alternatives(dom: &Dom, path: &Path, cfg: &AltConfig) -> Vec<Path> {
    let Some(target) = path.resolve(dom) else {
        return Vec::new();
    };
    let mut set: BTreeSet<Path> = BTreeSet::new();
    set.insert(path.clone());
    set.insert(dom.absolute_path(target));

    let chain = ancestor_chain(dom, target);
    // Positions in `chain`: chain[0] = root, chain.last() = target.
    let lo = chain.len().saturating_sub(cfg.max_ancestor_depth + 1);

    // `m` ranges over ancestors-or-self of the target (excluding the root):
    // the node reached by the descendant hop.
    for (mi, &m) in chain.iter().enumerate().skip(1) {
        if mi < lo && m != target {
            continue;
        }
        // `anc` ranges over proper ancestors of `m`: the hop base.
        for &anc in &chain[..mi] {
            let anc_abs = if anc == NodeId::ROOT {
                Path::root()
            } else {
                dom.absolute_path(anc)
            };
            for pred in preds_of(dom, m, cfg) {
                let Some(k) = dom.descendant_match_index(anc, &pred, m) else {
                    continue;
                };
                let hop = anc_abs.join(Step::descendant(pred, k));
                if m == target {
                    set.insert(hop);
                    continue;
                }
                // Shape 3a: hop + absolute child steps m -> target.
                let mut with_children = hop.clone();
                for s in child_steps_between(dom, m, target) {
                    with_children = with_children.join(s);
                }
                set.insert(with_children);
                // Shape 3b: hop + second descendant hop m -> target.
                for tpred in preds_of(dom, target, cfg) {
                    if let Some(k2) = dom.descendant_match_index(m, &tpred, target) {
                        set.insert(hop.join(Step::descendant(tpred, k2)));
                    }
                }
            }
        }
    }

    let mut out: Vec<Path> = set.into_iter().collect();
    debug_assert!(
        out.iter().all(|p| p.resolve(dom) == Some(target)),
        "every alternative must denote the same node"
    );
    // Prefer short selectors; keep ordering deterministic.
    out.sort_by_key(|p| (p.len(), p.to_string()));
    out.truncate(cfg.max_alternatives);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DomBuilder;

    /// body > (div.header, div.listing > (div.item > (h3, span.phone)) x3)
    fn listing_dom() -> Dom {
        let mut b = DomBuilder::new("html")
            .open("body")
            .open_with("div", &[("class", "header")])
            .leaf_text("span", "Store finder")
            .close()
            .open_with("div", &[("class", "listing")]);
        for i in 1..=3 {
            b = b
                .open_with("div", &[("class", "item")])
                .leaf_text("h3", &format!("Store {i}"))
                .leaf_with("span", &[("class", "phone")], &format!("555-000{i}"))
                .close();
        }
        b.close().close().finish()
    }

    #[test]
    fn identity_is_always_included() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[1]/h3[1]".parse().unwrap();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        assert!(alts.contains(&abs));
    }

    #[test]
    fn all_alternatives_resolve_to_same_node() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[2]/span[1]".parse().unwrap();
        let target = abs.resolve(&dom).unwrap();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        assert!(alts.len() > 3);
        for alt in &alts {
            assert_eq!(alt.resolve(&dom), Some(target), "alt {alt}");
        }
    }

    #[test]
    fn class_hop_is_generated() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[1]/h3[1]".parse().unwrap();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        let want: Path = "//div[@class='item'][1]//h3[1]".parse().unwrap();
        assert!(alts.contains(&want), "missing {want} in {alts:?}");
    }

    #[test]
    fn second_item_gets_index_two() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[2]/h3[1]".parse().unwrap();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        let want: Path = "//div[@class='item'][2]//h3[1]".parse().unwrap();
        assert!(alts.contains(&want));
    }

    #[test]
    fn attr_hop_on_target_itself() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[1]/span[1]".parse().unwrap();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        let want: Path = "//span[@class='phone'][1]".parse().unwrap();
        assert!(alts.contains(&want));
    }

    #[test]
    fn unresolvable_path_yields_nothing() {
        let dom = listing_dom();
        let bad: Path = "/body[1]/div[9]".parse().unwrap();
        assert!(alternatives(&dom, &bad, &AltConfig::default()).is_empty());
    }

    #[test]
    fn respects_max_alternatives() {
        let dom = listing_dom();
        let abs: Path = "/body[1]/div[2]/div[1]/h3[1]".parse().unwrap();
        let cfg = AltConfig {
            max_alternatives: 2,
            ..AltConfig::default()
        };
        assert_eq!(alternatives(&dom, &abs, &cfg).len(), 2);
    }

    #[test]
    fn root_is_never_hop_target() {
        let dom = listing_dom();
        let abs = Path::root();
        let alts = alternatives(&dom, &abs, &AltConfig::default());
        // Only ε denotes the root.
        assert_eq!(alts, vec![Path::root()]);
    }
}
