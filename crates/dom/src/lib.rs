//! DOM substrate for the WebRobot reproduction.
//!
//! The paper's synthesizer operates over recorded *DOM traces*: snapshots of
//! the browser's Document Object Model, one per demonstrated action. This
//! crate provides everything DOM-related:
//!
//! * an arena-based [`Dom`] tree with tags, attributes and text,
//! * the paper's selector language `ρ ::= ε | ρ/φ[i] | ρ//φ[i]` with
//!   predicates `φ ::= t | t[@τ = s]` ([`Path`], [`Step`], [`Pred`]),
//! * absolute-XPath computation ([`Dom::absolute_path`]) as emitted by the
//!   front-end recorder,
//! * the `AlternativeSelectors` enumeration used by the anti-unification and
//!   parametrization rules of paper Figs. 10–11 ([`alternatives`]),
//! * a small HTML parser ([`parse_html`]) and serializer used by tests,
//!   examples and the website simulator.
//!
//! # Example
//!
//! ```
//! # use webrobot_dom::{parse_html, Path};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dom = parse_html("<html><body><a>x</a><a>y</a></body></html>")?;
//! let path: Path = "//a[2]".parse()?;
//! let node = path.resolve(&dom).expect("second anchor exists");
//! assert_eq!(dom.text_content(node), "y");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod alternatives;
mod error;
mod fxhash;
mod html;
mod intern;
mod node;
mod path;

pub use alternatives::{alternatives, AltConfig};
pub use error::{DomError, PathParseError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use html::{parse_html, to_html};
pub use intern::{PathId, PathInterner, PredId, StepId};
pub use node::{Dom, DomBuilder, NodeId};
pub use path::{Axis, Path, Pred, Step};
