//! Differential test for the per-DOM resolution cache: cached
//! [`Path::resolve`]/[`Path::valid`] must equal the uncached walk on
//! randomized DOMs, across mutations (cache invalidation) and across
//! clones (per-DOM caches are independent).

use proptest::collection::vec;
use proptest::prelude::*;
use webrobot_dom::{Axis, Dom, NodeId, Path, Pred, Step};

const TAGS: [&str; 4] = ["div", "span", "a", "h3"];

/// Builds a random DOM from `(parent pick, tag pick, decorate)` triples:
/// each triple appends one node under an already-existing node, with a
/// class attribute and text on some of them.
fn build_dom(ops: &[(u8, u8, bool)]) -> Dom {
    let mut dom = Dom::new("html");
    let mut nodes = vec![NodeId::ROOT];
    for &(parent, tag, decorate) in ops {
        let parent = nodes[parent as usize % nodes.len()];
        let id = dom.append(parent, TAGS[tag as usize % TAGS.len()]);
        if decorate {
            dom.set_attr(id, "class", "item");
            dom.set_text(id, "x");
        }
        nodes.push(id);
    }
    dom
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (any::<bool>(), 0u8..4, any::<bool>(), 1usize..4).prop_map(
        |(descendant, tag, classed, index)| {
            let tag = TAGS[tag as usize];
            Step {
                axis: if descendant {
                    Axis::Descendant
                } else {
                    Axis::Child
                },
                pred: if classed {
                    Pred::with_attr(tag, "class", "item")
                } else {
                    Pred::tag(tag)
                },
                index,
            }
        },
    )
}

fn paths_strategy() -> impl Strategy<Value = Vec<Path>> {
    vec(vec(step_strategy(), 0..4).prop_map(Path::new), 1..12)
}

/// Asserts cached ≡ uncached for every path on `dom`, resolving each
/// path twice so both the miss-and-fill and the hit lane are exercised.
fn assert_cached_matches_uncached(dom: &Dom, paths: &[Path]) -> Result<(), TestCaseError> {
    for path in paths {
        let walked = path.resolve_uncached(dom);
        prop_assert_eq!(path.resolve(dom), walked, "first resolve of {}", path);
        prop_assert_eq!(path.resolve(dom), walked, "cached re-resolve of {}", path);
        prop_assert_eq!(path.valid(dom), walked.is_some(), "valid() of {}", path);
    }
    Ok(())
}

proptest! {
    /// Cached resolution equals the raw walk — before and after each of
    /// a series of mutations, so stale entries would be caught the
    /// moment an invalidation is missed.
    #[test]
    fn cached_resolution_equals_uncached_across_mutations(
        ops in vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..25),
        paths in paths_strategy(),
        mutations in vec((any::<u8>(), any::<u8>()), 1..6),
    ) {
        let mut dom = build_dom(&ops);
        assert_cached_matches_uncached(&dom, &paths)?;
        for &(kind, pick) in &mutations {
            let all = dom.all_nodes();
            let node = all[pick as usize % all.len()];
            match kind % 4 {
                0 => {
                    dom.append(node, TAGS[pick as usize % TAGS.len()]);
                }
                1 => dom.set_attr(node, "class", "item"),
                2 => dom.set_text(node, "mutated"),
                _ => dom.detach(node),
            }
            assert_cached_matches_uncached(&dom, &paths)?;
        }
    }

    /// Cross-DOM independence: a clone starts with a cold cache, and
    /// mutating the clone never disturbs resolutions on the original
    /// (whose cache was already warm).
    #[test]
    fn clone_caches_are_independent(
        ops in vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..25),
        paths in paths_strategy(),
    ) {
        let original = build_dom(&ops);
        // Warm the original's cache.
        let warm: Vec<_> = paths.iter().map(|p| p.resolve(&original)).collect();
        let mut clone = original.clone();
        let target = *clone.all_nodes().last().unwrap();
        clone.append(target, "span");
        clone.set_attr(target, "class", "item");
        assert_cached_matches_uncached(&clone, &paths)?;
        // The original still answers exactly as before.
        for (path, cached) in paths.iter().zip(&warm) {
            prop_assert_eq!(path.resolve(&original), *cached);
            prop_assert_eq!(path.resolve_uncached(&original), *cached);
        }
    }
}

#[test]
fn repeat_resolution_hits_the_cache() {
    let mut dom = Dom::new("html");
    let body = dom.append(NodeId::ROOT, "body");
    for _ in 0..3 {
        dom.append(body, "div");
    }
    let path: Path = "/body[1]/div[2]".parse().unwrap();
    assert_eq!(dom.resolve_cache_counters(), (0, 0));
    let first = path.resolve(&dom);
    let second = path.resolve(&dom);
    assert_eq!(first, second);
    assert!(first.is_some());
    // Counters are per-DOM and monotonic: exactly one miss (the fill)
    // and one hit (the re-resolve), regardless of other threads.
    assert_eq!(dom.resolve_cache_counters(), (1, 1));
    // Mutation invalidates the map; the next resolve is a miss again.
    dom.append(body, "div");
    path.resolve(&dom);
    assert_eq!(dom.resolve_cache_counters(), (1, 2));
    // A clone starts cold, with fresh counters.
    let clone = dom.clone();
    assert_eq!(clone.resolve_cache_counters(), (0, 0));
    path.resolve(&clone);
    path.resolve(&clone);
    assert_eq!(clone.resolve_cache_counters(), (1, 1));
    assert_eq!(dom.resolve_cache_counters(), (1, 2));
}
