//! Property tests for the selector interner: intern/resolve round-trips
//! and id stability under interleaved interning into independent tables.

use proptest::collection::vec;
use proptest::prelude::*;
use webrobot_dom::{Axis, Path, PathInterner, Pred, Step};

/// A random step over a tiny tag/attribute alphabet, so distinct draws
/// still collide often enough to exercise deduplication.
fn step_strategy() -> impl Strategy<Value = Step> {
    (any::<bool>(), "[a-c]{1,2}", 0u8..3, 1usize..4).prop_map(|(descendant, tag, attr, index)| {
        let pred = match attr {
            0 => Pred::tag(tag),
            1 => Pred::with_attr(tag, "class", "item"),
            _ => Pred::with_attr(tag, "id", "main"),
        };
        Step {
            axis: if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            },
            pred,
            index,
        }
    })
}

fn path_strategy() -> impl Strategy<Value = Path> {
    vec(step_strategy(), 0..5).prop_map(Path::new)
}

proptest! {
    /// Interning and resolving are inverse, and re-interning any path —
    /// at any later point, after arbitrary other interns — returns the
    /// id it was first assigned.
    #[test]
    fn intern_resolve_round_trip(paths in vec(path_strategy(), 1..20)) {
        let mut table = PathInterner::new();
        let ids: Vec<_> = paths.iter().map(|p| table.path(p)).collect();
        for (path, &id) in paths.iter().zip(&ids) {
            prop_assert_eq!(table.get_path(id), path);
            prop_assert_eq!(table.path(path), id);
        }
        // Structural equality coincides with id equality.
        for (pa, &ia) in paths.iter().zip(&ids) {
            for (pb, &ib) in paths.iter().zip(&ids) {
                prop_assert_eq!(pa == pb, ia == ib);
            }
        }
    }

    /// Two tables fed the same paths in different interleavings stay
    /// internally consistent: ids are table-local (they may differ
    /// between tables), but each table keeps every id it handed out
    /// stable and resolvable, regardless of what else got interned
    /// in between.
    #[test]
    fn id_stability_under_interleaved_tables(
        shared in vec(path_strategy(), 1..10),
        noise in vec(path_strategy(), 1..10),
    ) {
        let mut plain = PathInterner::new();
        let mut interleaved = PathInterner::new();
        let plain_ids: Vec<_> = shared.iter().map(|p| plain.path(p)).collect();
        let mut interleaved_ids = Vec::new();
        for (k, p) in shared.iter().enumerate() {
            interleaved_ids.push(interleaved.path(p));
            if let Some(n) = noise.get(k) {
                interleaved.path(n);
            }
        }
        for ((path, &a), &b) in shared.iter().zip(&plain_ids).zip(&interleaved_ids) {
            prop_assert_eq!(plain.get_path(a), path);
            prop_assert_eq!(interleaved.get_path(b), path);
            // Stability: re-interning after all the interleaved noise
            // still returns the original ids.
            prop_assert_eq!(plain.path(path), a);
            prop_assert_eq!(interleaved.path(path), b);
        }
    }

    /// The memoized child derivation agrees with materializing the join
    /// and interning the result.
    #[test]
    fn join_agrees_with_materialized_join(
        path in path_strategy(),
        step in step_strategy(),
    ) {
        let mut table = PathInterner::new();
        let base = table.path(&path);
        let sid = table.step(&step);
        let derived = table.join(base, sid);
        prop_assert_eq!(derived, table.path(&path.join(step.clone())));
        prop_assert_eq!(table.get_path(derived), &path.join(step));
        prop_assert_eq!(table.path_len(derived), path.len() + 1);
    }
}
