//! JSON-like values and concrete value paths.

use std::fmt;

/// A JSON-like semi-structured value: the paper's data source grammar
/// (strings, integers, objects and arrays).
///
/// Objects preserve insertion order (they are association lists, matching
/// how spreadsheet-like sources enumerate columns deterministically).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A string leaf.
    Str(String),
    /// An integer leaf.
    Int(i64),
    /// An ordered key–value mapping `{ key: value, .. }`.
    Object(Vec<(String, Value)>),
    /// An array `[ value, .. ]`.
    Array(Vec<Value>),
}

impl Value {
    /// Convenience constructor for a string leaf.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for an object from key–value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Convenience constructor for an array of strings — the most common
    /// data-source shape in the benchmarks (e.g. a list of zip codes).
    pub fn str_array(items: impl IntoIterator<Item = impl Into<String>>) -> Value {
        Value::Array(items.into_iter().map(|s| Value::Str(s.into())).collect())
    }

    /// Returns the string content if this is a string leaf.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer leaf.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Navigates a concrete value path from this value.
    ///
    /// Array indices are **1-based**, matching the paper's
    /// `ValuePaths(v) ⇝ [θ[1], ··, θ[|arr|]]` convention.
    pub fn get(&self, path: &ValuePath) -> Option<&Value> {
        let mut cur = self;
        for seg in &path.segs {
            cur = match seg {
                PathSeg::Key(k) => cur.field(k)?,
                PathSeg::Index(i) => {
                    let items = cur.as_array()?;
                    if *i == 0 || *i > items.len() {
                        return None;
                    }
                    &items[*i - 1]
                }
            };
        }
        Some(cur)
    }

    /// The paper's `GetArray(Σ[x], θ)`: navigates `path` and returns the
    /// array found there, or `None` if the path is invalid or does not land
    /// on an array.
    pub fn get_array(&self, path: &ValuePath) -> Option<&[Value]> {
        self.get(path)?.as_array()
    }

    /// Renders the value a user would see when this value is entered into a
    /// form field (strings verbatim, integers in decimal; containers render
    /// as JSON).
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            other => other.to_json(),
        }
    }

    /// Serializes to JSON text. Inverse of [`crate::parse_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(k.clone()).write_json(out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// One segment of a value path: a key access `[key]` or a 1-based array
/// index `[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathSeg {
    /// Object key access.
    Key(String),
    /// 1-based array index access.
    Index(usize),
}

impl PathSeg {
    /// Convenience constructor for a key segment.
    pub fn key(k: impl Into<String>) -> PathSeg {
        PathSeg::Key(k.into())
    }
}

impl fmt::Display for PathSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSeg::Key(k) => write!(f, "[{k}]"),
            PathSeg::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A concrete value path `θ ::= x | θ[key] | θ[i]`, rooted at the program
/// input `x`.
///
/// Displayed as `x[zips][2]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ValuePath {
    segs: Vec<PathSeg>,
}

impl ValuePath {
    /// The path `x` (the whole input).
    pub fn input() -> ValuePath {
        ValuePath { segs: Vec::new() }
    }

    /// Builds a path from segments.
    pub fn new(segs: Vec<PathSeg>) -> ValuePath {
        ValuePath { segs }
    }

    /// The segments of this path.
    pub fn segs(&self) -> &[PathSeg] {
        &self.segs
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// `true` iff this is the bare input path `x`.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Returns a new path with `seg` appended.
    pub fn join(&self, seg: PathSeg) -> ValuePath {
        let mut segs = self.segs.clone();
        segs.push(seg);
        ValuePath { segs }
    }

    /// Concatenates two paths.
    pub fn concat(&self, suffix: &ValuePath) -> ValuePath {
        let mut segs = self.segs.clone();
        segs.extend(suffix.segs.iter().cloned());
        ValuePath { segs }
    }

    /// `true` iff `prefix` is a segment-wise prefix of this path.
    pub fn starts_with(&self, prefix: &ValuePath) -> bool {
        self.segs.len() >= prefix.segs.len() && self.segs[..prefix.segs.len()] == prefix.segs
    }

    /// Strips `prefix`, returning the remaining suffix path.
    pub fn strip_prefix(&self, prefix: &ValuePath) -> Option<ValuePath> {
        if self.starts_with(prefix) {
            Some(ValuePath {
                segs: self.segs[prefix.segs.len()..].to_vec(),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for ValuePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x")?;
        for seg in &self.segs {
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::object([
            ("zips".to_string(), Value::str_array(["48105", "10001"])),
            (
                "rows".to_string(),
                Value::Array(vec![
                    Value::object([
                        ("name".to_string(), Value::str("Ada")),
                        ("age".to_string(), Value::Int(36)),
                    ]),
                    Value::object([
                        ("name".to_string(), Value::str("Grace")),
                        ("age".to_string(), Value::Int(45)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn get_navigates_keys_and_indices() {
        let v = sample();
        let p = ValuePath::new(vec![
            PathSeg::key("rows"),
            PathSeg::Index(2),
            PathSeg::key("name"),
        ]);
        assert_eq!(v.get(&p).unwrap().as_str(), Some("Grace"));
    }

    #[test]
    fn indices_are_one_based() {
        let v = sample();
        let first = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(1)]);
        assert_eq!(v.get(&first).unwrap().as_str(), Some("48105"));
        let zero = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(0)]);
        assert!(v.get(&zero).is_none());
        let oob = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(3)]);
        assert!(v.get(&oob).is_none());
    }

    #[test]
    fn get_array_requires_array() {
        let v = sample();
        assert_eq!(
            v.get_array(&ValuePath::new(vec![PathSeg::key("zips")]))
                .unwrap()
                .len(),
            2
        );
        assert!(v
            .get_array(&ValuePath::new(vec![
                PathSeg::key("rows"),
                PathSeg::Index(1)
            ]))
            .is_none());
    }

    #[test]
    fn display_format() {
        let p = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(2)]);
        assert_eq!(p.to_string(), "x[zips][2]");
        assert_eq!(ValuePath::input().to_string(), "x");
    }

    #[test]
    fn prefix_operations() {
        let p = ValuePath::new(vec![
            PathSeg::key("rows"),
            PathSeg::Index(1),
            PathSeg::key("name"),
        ]);
        let pre = ValuePath::new(vec![PathSeg::key("rows"), PathSeg::Index(1)]);
        assert!(p.starts_with(&pre));
        let suffix = p.strip_prefix(&pre).unwrap();
        assert_eq!(suffix.segs(), &[PathSeg::key("name")]);
        assert_eq!(pre.concat(&suffix), p);
        assert!(pre.strip_prefix(&p).is_none());
    }

    #[test]
    fn render_shows_user_visible_text() {
        assert_eq!(Value::str("48105").render(), "48105");
        assert_eq!(Value::Int(7).render(), "7");
    }
}
