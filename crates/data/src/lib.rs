//! Data substrate for the WebRobot reproduction.
//!
//! Web RPA programs take a *data source* `I` as input — a JSON-like
//! semi-structured value (paper §3.1):
//!
//! ```text
//! I     ::= { key : value, ··, key : value }
//! key   ::= string
//! value ::= string | integer | I | [ value, ··, value ]
//! ```
//!
//! This crate provides the [`Value`] type, concrete *value paths*
//! ([`ValuePath`]: the `θ ::= x | θ[key] | θ[i]` of the action language),
//! navigation ([`Value::get`], [`Value::get_array`]), and a self-contained
//! JSON subset parser/printer ([`parse_json`], [`Value::to_json`]) so the
//! repository needs no external serialization crate.
//!
//! # Example
//!
//! ```
//! # use webrobot_data::{parse_json, ValuePath, PathSeg};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = parse_json(r#"{"zips": ["48105", "10001"]}"#)?;
//! let path = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(2)]);
//! assert_eq!(data.get(&path).unwrap().as_str(), Some("10001"));
//! # Ok(())
//! # }
//! ```

mod json;
mod value;

pub use json::{parse_json, JsonError};
pub use value::{PathSeg, Value, ValuePath};
