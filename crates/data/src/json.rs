//! A self-contained JSON subset parser.
//!
//! Supports objects, arrays, strings (with `\" \\ \n \t \/ \uXXXX` escapes)
//! and integers — exactly the paper's data-source grammar. Floats, `true`,
//! `false` and `null` are rejected: they are not part of the paper's input
//! language, and rejecting them keeps [`Value`] round-trips exact.

use std::error::Error;
use std::fmt;

use crate::value::Value;

/// Error produced when JSON parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    position: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, position: usize) -> JsonError {
        JsonError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the input where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid json at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for JsonError {}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or on JSON constructs outside
/// the paper's data-source grammar (floats, booleans, `null`).
///
/// # Example
///
/// ```
/// # use webrobot_data::{parse_json, Value};
/// # fn main() -> Result<(), webrobot_data::JsonError> {
/// let v = parse_json(r#"{"n": 3, "xs": ["a", "b"]}"#)?;
/// assert_eq!(v.field("n").unwrap().as_int(), Some(3));
/// # Ok(())
/// # }
/// ```
pub fn parse_json(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(JsonError::new("trailing content", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let t = self.rest().trim_start();
        self.pos = self.input.len() - t.len();
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(JsonError::new(format!("expected '{c}'"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.rest().chars().next() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_int(),
            Some(c) => Err(JsonError::new(
                format!("unexpected character '{c}' (floats/booleans/null are unsupported)"),
                self.pos,
            )),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.rest().starts_with('}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                self.expect('}')?;
                return Ok(Value::Object(pairs));
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.rest().starts_with(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                self.expect(']')?;
                return Ok(Value::Array(items));
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((j, 'u')) => {
                        let hex_start = self.pos + j + 1;
                        let hex = self
                            .input
                            .get(hex_start..hex_start + 4)
                            .ok_or_else(|| JsonError::new("truncated \\u escape", hex_start))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("invalid \\u escape", hex_start))?;
                        let ch = char::from_u32(code)
                            .ok_or_else(|| JsonError::new("invalid code point", hex_start))?;
                        out.push(ch);
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    _ => return Err(JsonError::new("invalid escape", self.pos + i)),
                },
                c => out.push(c),
            }
        }
        Err(JsonError::new("unterminated string", self.pos))
    }

    fn parse_int(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .input
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        if self
            .input
            .as_bytes()
            .get(self.pos)
            .is_some_and(|&b| b == b'.' || b == b'e' || b == b'E')
        {
            return Err(JsonError::new("floats are unsupported", self.pos));
        }
        self.input[start..self.pos]
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| JsonError::new("invalid integer", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, "two", {"b": 3}], "c": {}}"#).unwrap();
        let a = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_int(), Some(1));
        assert_eq!(a[1].as_str(), Some("two"));
        assert_eq!(a[2].field("b").unwrap().as_int(), Some(3));
        assert_eq!(v.field("c"), Some(&Value::Object(vec![])));
    }

    #[test]
    fn parses_escapes() {
        let v = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parses_negative_integers() {
        assert_eq!(parse_json("-42").unwrap().as_int(), Some(-42));
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse_json("1.5").is_err());
        assert!(parse_json("true").is_err());
        assert!(parse_json("null").is_err());
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn round_trips_through_to_json() {
        let inputs = [
            r#"{"zips":["48105","10001"],"n":7}"#,
            r#"[]"#,
            r#"{"nested":{"deep":[{"k":"v"}]}}"#,
            r#""plain string""#,
            r#"-3"#,
        ];
        for input in inputs {
            let v = parse_json(input).unwrap();
            assert_eq!(v.to_json(), *input);
            assert_eq!(parse_json(&v.to_json()).unwrap(), v);
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse_json(" { \"a\" :\n[ 1 ,\t2 ] } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn error_positions_point_into_input() {
        let err = parse_json("{\"a\": flse}").unwrap_err();
        assert_eq!(err.position(), 6);
    }
}
