//! Anti-unification (paper Fig. 10): merging a first-iteration statement
//! with its second-iteration counterpart into a parametrized template plus
//! the collection the target loop iterates over.

use std::sync::Arc;
use webrobot_dom::FxHashSet;

use webrobot_data::{PathSeg, ValuePath};
use webrobot_dom::{Axis, Path};
use webrobot_lang::{
    CollectionKind, ForeachSel, ForeachVal, SelBase, SelVar, Selector, SelectorList, Statement,
    ValuePathExpr, ValuePathList, VpBase, VpVar, While,
};

use crate::context::{Decomp, SynthContext};

/// A successful anti-unification: the skeleton of a loop to speculate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopSeed {
    /// Seed for a selector loop `foreach ϱ in N do {·· template ··}`.
    Sel {
        /// The merged statement `S′_p`, using `var`.
        template: Statement,
        /// The fresh loop variable `ϱ`.
        var: SelVar,
        /// The collection `N` the loop iterates over.
        list: SelectorList,
    },
    /// Seed for a value-path loop `foreach ϑ in V do {·· template ··}`.
    Vp {
        /// The merged statement `S′_p`, using `var`.
        template: Statement,
        /// The fresh loop variable `ϑ`.
        var: VpVar,
        /// The collection `V` the loop iterates over.
        list: ValuePathList,
    },
}

impl LoopSeed {
    /// A copy of the seed with its loop variable renamed to one freshly
    /// drawn from `ctx` — how memoized seeds keep the "binders are never
    /// reused" invariant on every cache hit.
    ///
    /// The rename is capture-free by construction: the stored variable
    /// was globally fresh when the seed was computed, so no binder inside
    /// the template can shadow it.
    pub(crate) fn freshened(&self, ctx: &mut SynthContext) -> LoopSeed {
        match self {
            LoopSeed::Sel {
                template,
                var,
                list,
            } => {
                let fresh = ctx.vargen.fresh_sel();
                LoopSeed::Sel {
                    template: rename_sel_var(template, *var, fresh),
                    var: fresh,
                    list: SelectorList {
                        kind: list.kind,
                        base: rename_sel_in_selector(&list.base, *var, fresh),
                        pred: list.pred.clone(),
                    },
                }
            }
            LoopSeed::Vp {
                template,
                var,
                list,
            } => {
                let fresh = ctx.vargen.fresh_vp();
                LoopSeed::Vp {
                    template: rename_vp_var(template, *var, fresh),
                    var: fresh,
                    list: ValuePathList::new(rename_vp_in_expr(&list.array, *var, fresh)),
                }
            }
        }
    }
}

pub(crate) fn rename_sel_in_selector(s: &Selector, old: SelVar, new: SelVar) -> Selector {
    match s.base {
        SelBase::Var(v) if v == old => Selector::var_path(new, s.path.clone()),
        _ => s.clone(),
    }
}

pub(crate) fn rename_vp_in_expr(v: &ValuePathExpr, old: VpVar, new: VpVar) -> ValuePathExpr {
    match v.base {
        VpBase::Var(var) if var == old => ValuePathExpr::var_path(new, v.path.clone()),
        _ => v.clone(),
    }
}

/// Renames free occurrences of the selector variable `old` to `new`.
/// Binders never collide with `old` (all binders are vargen-fresh), so no
/// scope tracking is needed.
pub(crate) fn rename_sel_var(stmt: &Statement, old: SelVar, new: SelVar) -> Statement {
    let sel = |s: &Selector| rename_sel_in_selector(s, old, new);
    match stmt {
        Statement::Click(s) => Statement::Click(sel(s)),
        Statement::ScrapeText(s) => Statement::ScrapeText(sel(s)),
        Statement::ScrapeLink(s) => Statement::ScrapeLink(sel(s)),
        Statement::Download(s) => Statement::Download(sel(s)),
        Statement::GoBack => Statement::GoBack,
        Statement::ExtractUrl => Statement::ExtractUrl,
        Statement::SendKeys(s, text) => Statement::SendKeys(sel(s), text.clone()),
        Statement::EnterData(s, v) => Statement::EnterData(sel(s), v.clone()),
        Statement::ForeachSel(l) => Statement::ForeachSel(ForeachSel {
            var: l.var,
            list: SelectorList {
                kind: l.list.kind,
                base: sel(&l.list.base),
                pred: l.list.pred.clone(),
            },
            body: l.body.iter().map(|s| rename_sel_var(s, old, new)).collect(),
        }),
        Statement::ForeachVal(l) => Statement::ForeachVal(ForeachVal {
            var: l.var,
            list: l.list.clone(),
            body: l.body.iter().map(|s| rename_sel_var(s, old, new)).collect(),
        }),
        Statement::While(w) => Statement::While(While {
            body: w.body.iter().map(|s| rename_sel_var(s, old, new)).collect(),
            click: sel(&w.click),
        }),
    }
}

/// Renames free occurrences of the value-path variable `old` to `new`.
pub(crate) fn rename_vp_var(stmt: &Statement, old: VpVar, new: VpVar) -> Statement {
    let vp = |v: &ValuePathExpr| rename_vp_in_expr(v, old, new);
    match stmt {
        Statement::EnterData(s, v) => Statement::EnterData(s.clone(), vp(v)),
        Statement::ForeachSel(l) => Statement::ForeachSel(ForeachSel {
            var: l.var,
            list: l.list.clone(),
            body: l.body.iter().map(|s| rename_vp_var(s, old, new)).collect(),
        }),
        Statement::ForeachVal(l) => Statement::ForeachVal(ForeachVal {
            var: l.var,
            list: ValuePathList::new(vp(&l.list.array)),
            body: l.body.iter().map(|s| rename_vp_var(s, old, new)).collect(),
        }),
        Statement::While(w) => Statement::While(While {
            body: w.body.iter().map(|s| rename_vp_var(s, old, new)).collect(),
            click: w.click.clone(),
        }),
        other => other.clone(),
    }
}

/// Anti-unifies `sp` (first iteration, first action on DOM `dom_p`) with
/// `sq` (second iteration, first action on DOM `dom_q`).
///
/// Implements the rules of Fig. 10:
///
/// * rule (1) + (4): loop-free selector statements whose selectors (or
///   alternative selectors thereof) differ at exactly one step index, 1 vs
///   2, with a common prefix and suffix;
/// * rule (2) + (5): two selector loops with alpha-equivalent bodies whose
///   collection bases anti-unify;
/// * rule (3): two `EnterData` statements on the same field whose value
///   paths differ at exactly one array index, 1 vs 2;
/// * the value-path analogue of rule (2) for nested value-path loops.
///
/// Results are memoized in `ctx` keyed on the *canonicalized* pair plus
/// the DOM indices (when [`SynthConfig::memoization`](crate::SynthConfig)
/// is on). Cached seeds are returned with their loop variable renamed to
/// a fresh one on every hit — reusing the stored variable verbatim could
/// shadow a binder that an earlier hit introduced into the same item,
/// breaking the engine's "all binders are globally fresh" invariant.
pub fn anti_unify(
    sp: &Statement,
    sq: &Statement,
    dom_p: usize,
    dom_q: usize,
    ctx: &mut SynthContext,
) -> Vec<LoopSeed> {
    if !ctx.config().memoization {
        return anti_unify_uncached(sp, sq, dom_p, dom_q, ctx);
    }
    let key = (dom_p, dom_q, ctx.canon_id(sp), ctx.canon_id(sq));
    if let Some(hit) = ctx.antiunify_hit(&key) {
        return hit.iter().map(|seed| seed.freshened(ctx)).collect();
    }
    let seeds = anti_unify_uncached(sp, sq, dom_p, dom_q, ctx);
    ctx.antiunify_store(key, Arc::new(seeds.clone()));
    seeds
}

/// The memo-free rules of Fig. 10 (see [`anti_unify`]).
fn anti_unify_uncached(
    sp: &Statement,
    sq: &Statement,
    dom_p: usize,
    dom_q: usize,
    ctx: &mut SynthContext,
) -> Vec<LoopSeed> {
    use Statement::*;
    match (sp, sq) {
        (Click(a), Click(b)) => sel_seeds(a, b, dom_p, dom_q, ctx, Click),
        (ScrapeText(a), ScrapeText(b)) => sel_seeds(a, b, dom_p, dom_q, ctx, ScrapeText),
        (ScrapeLink(a), ScrapeLink(b)) => sel_seeds(a, b, dom_p, dom_q, ctx, ScrapeLink),
        (Download(a), Download(b)) => sel_seeds(a, b, dom_p, dom_q, ctx, Download),
        (SendKeys(a, s1), SendKeys(b, s2)) if s1 == s2 => {
            let text = s1.clone();
            sel_seeds(a, b, dom_p, dom_q, ctx, move |sel| {
                SendKeys(sel, text.clone())
            })
        }
        (EnterData(a, v1), EnterData(b, v2)) => {
            let mut out = Vec::new();
            // Rule (3): same field, value paths differing at one index.
            if a == b {
                if let (Some(p1), Some(p2)) = (v1.as_concrete(), v2.as_concrete()) {
                    for (prefix, suffix) in anti_unify_vps(p1, p2) {
                        let var = ctx.vargen.fresh_vp();
                        out.push(LoopSeed::Vp {
                            template: EnterData(a.clone(), ValuePathExpr::var_path(var, suffix)),
                            var,
                            list: ValuePathList::new(prefix),
                        });
                    }
                }
            }
            // Selector-loop flavour: same value path, selectors differing
            // at one step (e.g. filling every row of a form table).
            if v1 == v2 {
                let vp = v1.clone();
                out.extend(sel_seeds(a, b, dom_p, dom_q, ctx, move |sel| {
                    EnterData(sel, vp.clone())
                }));
            }
            out
        }
        (ForeachSel(l1), ForeachSel(l2)) => {
            // Rule (2): alpha-equivalent bodies, same collection shape;
            // anti-unify the collection bases (rule (5)).
            if l1.list.kind != l2.list.kind || l1.list.pred != l2.list.pred {
                return Vec::new();
            }
            // "P₁, P₂ alpha equivalent": compare the loops with their
            // collections normalized away, so only the bound bodies count.
            let mut sq_norm = l2.clone();
            sq_norm.list = l1.list.clone();
            if !sp.alpha_eq(&ForeachSel(sq_norm)) {
                return Vec::new();
            }
            let (Some(base1), Some(base2)) =
                (l1.list.base.as_concrete(), l2.list.base.as_concrete())
            else {
                return Vec::new();
            };
            let base1 = base1.clone();
            let base2 = base2.clone();
            let inner = l1.clone();
            let mut out = Vec::new();
            let var = ctx.vargen.fresh_sel();
            for (sel, list) in anti_unify_selectors(&base1, &base2, dom_p, dom_q, ctx, var) {
                let mut loop_stmt = inner.clone();
                loop_stmt.list.base = sel;
                out.push(LoopSeed::Sel {
                    template: ForeachSel(loop_stmt),
                    var,
                    list,
                });
            }
            out
        }
        (ForeachVal(l1), ForeachVal(l2)) => {
            // Value-path analogue of rule (2): bodies alpha-equivalent
            // modulo the collection.
            let mut sq_norm = l2.clone();
            sq_norm.list = l1.list.clone();
            if !sp.alpha_eq(&ForeachVal(sq_norm)) {
                return Vec::new();
            }
            let (Some(a1), Some(a2)) = (l1.list.array.as_concrete(), l2.list.array.as_concrete())
            else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for (prefix, suffix) in anti_unify_vps(a1, a2) {
                let var = ctx.vargen.fresh_vp();
                let mut loop_stmt = l1.clone();
                loop_stmt.list = ValuePathList::new(ValuePathExpr::var_path(var, suffix));
                out.push(LoopSeed::Vp {
                    template: ForeachVal(loop_stmt),
                    var,
                    list: ValuePathList::new(prefix),
                });
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Anti-unifies two concrete selector statements through a constructor.
fn sel_seeds(
    a: &Selector,
    b: &Selector,
    dom_p: usize,
    dom_q: usize,
    ctx: &mut SynthContext,
    make: impl Fn(Selector) -> Statement,
) -> Vec<LoopSeed> {
    let (Some(pa), Some(pb)) = (a.as_concrete(), b.as_concrete()) else {
        return Vec::new();
    };
    let pa = pa.clone();
    let pb = pb.clone();
    let var = ctx.vargen.fresh_sel();
    anti_unify_selectors(&pa, &pb, dom_p, dom_q, ctx, var)
        .into_iter()
        .map(|(sel, list)| LoopSeed::Sel {
            template: make(sel),
            var,
            list,
        })
        .collect()
}

/// Fig. 10 rule (4) (and its `Dscts` twin): finds all `(n, N)` such that
/// some alternative of `p_path` equals `N[1]·suffix` and some alternative
/// of `q_path` equals `N[2]·suffix`, where `n = ϱ·suffix`.
pub(crate) fn anti_unify_selectors(
    p_path: &Path,
    q_path: &Path,
    dom_p: usize,
    dom_q: usize,
    ctx: &mut SynthContext,
    var: SelVar,
) -> Vec<(Selector, SelectorList)> {
    let d1 = ctx.decomps(dom_p, p_path, 1);
    let d2 = ctx.decomps(dom_q, q_path, 2);
    // Hash-join on the whole decomposition — `Decomp` is four `Copy`
    // interner ids, so building and probing the index hashes machine
    // words instead of re-walking structured paths.
    let index: FxHashSet<Decomp> = d2.iter().copied().collect();
    let mut out = Vec::new();
    for d in d1.iter() {
        if index.contains(d) {
            let kind = match d.axis {
                Axis::Child => CollectionKind::Children,
                Axis::Descendant => CollectionKind::Dscts,
            };
            out.push((
                Selector::var_path(var, ctx.paths().get_path(d.suffix).clone()),
                SelectorList {
                    kind,
                    base: Selector::rooted(ctx.paths().get_path(d.prefix).clone()),
                    pred: ctx.paths().get_pred(d.pred).clone(),
                },
            ));
        }
    }
    out.dedup();
    out
}

/// Fig. 10 rule (3) decomposition: positions where `p1` carries index 1 and
/// `p2` carries index 2 with a common prefix and suffix. Returns
/// `(prefix, suffix)` pairs.
pub(crate) fn anti_unify_vps(p1: &ValuePath, p2: &ValuePath) -> Vec<(ValuePath, ValuePath)> {
    if p1.len() != p2.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..p1.len() {
        if p1.segs()[..k] != p2.segs()[..k] || p1.segs()[k + 1..] != p2.segs()[k + 1..] {
            continue;
        }
        if p1.segs()[k] == PathSeg::Index(1) && p2.segs()[k] == PathSeg::Index(2) {
            out.push((
                ValuePath::new(p1.segs()[..k].to_vec()),
                ValuePath::new(p1.segs()[k + 1..].to_vec()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;
    use webrobot_lang::Action;
    use webrobot_semantics::Trace;
    use webrobot_synth_test_util::*;

    /// Tiny in-crate test utilities.
    mod webrobot_synth_test_util {
        use super::*;
        use crate::config::SynthConfig;

        pub fn listing_ctx() -> SynthContext {
            let dom = Arc::new(
                parse_html(
                    "<html><body><div class='nav'></div>\
                     <div class='item'><h3>a</h3><span class='ph'>1</span></div>\
                     <div class='item'><h3>b</h3><span class='ph'>2</span></div>\
                     <div class='item'><h3>c</h3><span class='ph'>3</span></div>\
                     </body></html>",
                )
                .unwrap(),
            );
            let mut trace = Trace::new(dom.clone(), Value::Object(vec![]));
            for i in 1..=2 {
                trace.push(
                    Action::ScrapeText(format!("/body[1]/div[{}]/h3[1]", i + 1).parse().unwrap()),
                    dom.clone(),
                );
            }
            SynthContext::new(SynthConfig::default(), trace)
        }
    }

    fn scrape(path: &str) -> Statement {
        Statement::ScrapeText(Selector::rooted(path.parse().unwrap()))
    }

    #[test]
    fn scrapes_of_adjacent_items_anti_unify() {
        let mut ctx = listing_ctx();
        let seeds = anti_unify(
            &scrape("/body[1]/div[2]/h3[1]"),
            &scrape("/body[1]/div[3]/h3[1]"),
            0,
            1,
            &mut ctx,
        );
        assert!(!seeds.is_empty());
        // One of the seeds must iterate over the class-predicated items.
        let found = seeds.iter().any(|s| match s {
            LoopSeed::Sel { list, .. } => list.to_string() == "Dscts(eps, div[@class='item'])",
            _ => false,
        });
        assert!(found, "seeds: {seeds:?}");
    }

    #[test]
    fn absolute_sibling_steps_anti_unify_without_alternatives() {
        let mut ctx = listing_ctx();
        ctx.cfg.alternative_selectors = false;
        // div[2] vs div[3] do NOT anti-unify without alternatives (indices
        // are 2 and 3, not 1 and 2) — this is exactly why selector search
        // matters on recorded absolute paths with a leading nav div.
        let seeds = anti_unify(
            &scrape("/body[1]/div[2]/h3[1]"),
            &scrape("/body[1]/div[3]/h3[1]"),
            0,
            1,
            &mut ctx,
        );
        assert!(seeds.is_empty());
        // But on an offset-free site (items are div[1], div[2], …) the
        // recorded absolute paths anti-unify directly.
        let dom = Arc::new(
            parse_html(
                "<html><body>\
                 <div class='item'><h3>a</h3></div>\
                 <div class='item'><h3>b</h3></div>\
                 </body></html>",
            )
            .unwrap(),
        );
        let mut trace = Trace::new(dom.clone(), Value::Object(vec![]));
        trace.push(
            Action::ScrapeText("/body[1]/div[1]/h3[1]".parse().unwrap()),
            dom,
        );
        let mut ctx = SynthContext::new(crate::SynthConfig::no_selector(), trace);
        let seeds = anti_unify(
            &scrape("/body[1]/div[1]/h3[1]"),
            &scrape("/body[1]/div[2]/h3[1]"),
            0,
            1,
            &mut ctx,
        );
        assert!(!seeds.is_empty());
    }

    #[test]
    fn mismatched_kinds_never_anti_unify() {
        let mut ctx = listing_ctx();
        let seeds = anti_unify(
            &scrape("/body[1]/div[2]/h3[1]"),
            &Statement::Click(Selector::rooted("/body[1]/div[3]/h3[1]".parse().unwrap())),
            0,
            1,
            &mut ctx,
        );
        assert!(seeds.is_empty());
        assert!(anti_unify(&Statement::GoBack, &Statement::GoBack, 0, 1, &mut ctx).is_empty());
    }

    #[test]
    fn send_keys_requires_equal_strings() {
        let mut ctx = listing_ctx();
        let a = Statement::SendKeys(
            Selector::rooted("/body[1]/div[2]/h3[1]".parse().unwrap()),
            "x".into(),
        );
        let b = Statement::SendKeys(
            Selector::rooted("/body[1]/div[3]/h3[1]".parse().unwrap()),
            "y".into(),
        );
        assert!(anti_unify(&a, &b, 0, 1, &mut ctx).is_empty());
    }

    #[test]
    fn enter_data_rule_three() {
        let mut ctx = listing_ctx();
        let vp = |i: usize| {
            ValuePathExpr::input(ValuePath::new(vec![
                PathSeg::key("zips"),
                PathSeg::Index(i),
            ]))
        };
        let sel = Selector::rooted("/body[1]/div[1]".parse().unwrap());
        let a = Statement::EnterData(sel.clone(), vp(1));
        let b = Statement::EnterData(sel, vp(2));
        let seeds = anti_unify(&a, &b, 0, 1, &mut ctx);
        let vp_seed = seeds.iter().find_map(|s| match s {
            LoopSeed::Vp { list, template, .. } => Some((list, template)),
            _ => None,
        });
        let (list, template) = vp_seed.expect("rule (3) fires");
        assert_eq!(list.to_string(), "ValuePaths(x[zips])");
        match template {
            Statement::EnterData(_, v) => assert!(v.base_var().is_some()),
            other => panic!("unexpected template {other:?}"),
        }
    }

    #[test]
    fn vp_anti_unification_requires_one_and_two() {
        let p = |i: usize| {
            ValuePath::new(vec![
                PathSeg::key("rows"),
                PathSeg::Index(i),
                PathSeg::key("name"),
            ])
        };
        assert_eq!(anti_unify_vps(&p(1), &p(2)).len(), 1);
        let (prefix, suffix) = anti_unify_vps(&p(1), &p(2)).remove(0);
        assert_eq!(prefix.to_string(), "x[rows]");
        assert_eq!(suffix.segs(), &[PathSeg::key("name")]);
        assert!(anti_unify_vps(&p(2), &p(3)).is_empty());
        assert!(anti_unify_vps(&p(1), &p(1)).is_empty());
    }

    #[test]
    fn foreach_loops_anti_unify_via_bases() {
        use webrobot_lang::parse_program;
        // Two inner loops over the spans of item 1 (div[2]) and item 2
        // (div[3]); the bases anti-unify through the class alternative.
        let mk = |i: usize, v: u32| {
            parse_program(&format!(
                "foreach %r{v} in Children(/body[1]/div[{i}], span) do {{\n  ScrapeText(%r{v})\n}}"
            ))
            .unwrap()
            .into_statements()
            .remove(0)
        };
        let mut ctx = listing_ctx();
        // Different inner variable numbering must not matter (alpha-eq).
        let seeds = anti_unify(&mk(2, 0), &mk(3, 7), 0, 1, &mut ctx);
        let sel = seeds.iter().find_map(|s| match s {
            LoopSeed::Sel { list, .. } => Some(list),
            _ => None,
        });
        let list = sel.expect("foreach loops anti-unify");
        assert_eq!(list.to_string(), "Dscts(eps, div[@class='item'])");
    }
}
