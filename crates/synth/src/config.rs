//! Synthesizer tuning knobs, including the ablation switches of paper §7.2.

use std::time::Duration;

/// Configuration of the synthesis engine.
///
/// The defaults reproduce the paper's full-fledged configuration; the two
/// ablation variants of Table 1 are [`SynthConfig::no_selector`] and
/// [`SynthConfig::no_incremental`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Consider alternative selectors during anti-unification and
    /// parametrization (paper's "selector search"). When `false`, only the
    /// recorded selectors themselves are used — the *No selector* ablation.
    pub alternative_selectors: bool,
    /// Share the worklist across synthesis runs (paper §5.4). When `false`,
    /// every call to [`Synthesizer::synthesize`](crate::Synthesizer) starts
    /// from scratch — the *No incremental* ablation.
    pub incremental: bool,
    /// Maximum number of statements in a speculated loop's first iteration
    /// (window `[S_i, ··, S_j]` in Alg. 2). Bounds the cubic enumeration;
    /// part of the "additional optimizations" the paper defers to its
    /// extended version.
    pub max_window: usize,
    /// Cap on the Cartesian product of per-statement parametrization
    /// choices when assembling loop bodies (Alg. 2 line 5).
    pub max_bodies_per_seed: usize,
    /// Cap on alternative selectors per node (forwarded to `webrobot-dom`).
    pub max_alternatives: usize,
    /// Wall-clock budget per [`Synthesizer::synthesize`](crate::Synthesizer)
    /// call (the paper's per-test timeout is 1 s).
    pub timeout: Duration,
    /// Safety cap on worklist + processed items kept across runs.
    pub max_items: usize,
    /// Maximum number of generalizing programs retained for ranking.
    pub max_programs: usize,
    /// Maximum number of distinct predictions surfaced to the user
    /// (the paper's front-end shows multiple predictions; max observed 6).
    pub max_predictions: usize,
    /// Memoize anti-unification and parametrization results in the
    /// [`SynthContext`](crate::SynthContext) so the same canonicalized
    /// statement pair is analyzed once instead of once per enclosing
    /// speculation window. Purely an optimization: predictions are
    /// unchanged (see `tests/differential.rs`).
    pub memoization: bool,
    /// Cap on entries per memo table. Once a table is full, further
    /// results are computed but not stored (lookups still hit).
    pub memo_capacity: usize,
    /// Skip speculation windows whose statement-kind sequences cannot
    /// form two loop iterations, using a precomputed run-length table
    /// instead of entering the inner anti-unification loop.
    pub window_pruning: bool,
    /// Dirty-track incremental state: cached generalizing programs keep a
    /// resumable execution cursor (advanced one step per observed action
    /// instead of re-executed over the whole trace), and stored worklist
    /// items are re-extended lazily on pop instead of eagerly on every
    /// observation. Disable for the ablation/differential reference.
    pub dirty_tracking: bool,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            alternative_selectors: true,
            incremental: true,
            max_window: 8,
            max_bodies_per_seed: 64,
            max_alternatives: 64,
            timeout: Duration::from_secs(1),
            max_items: 20_000,
            max_programs: 128,
            max_predictions: 6,
            memoization: true,
            memo_capacity: 65_536,
            window_pruning: true,
            dirty_tracking: true,
        }
    }
}

impl SynthConfig {
    /// The *No selector* ablation of Table 1: alternative-selector search
    /// disabled, everything else as in the full configuration.
    pub fn no_selector() -> SynthConfig {
        SynthConfig {
            alternative_selectors: false,
            ..SynthConfig::default()
        }
    }

    /// The *No incremental* ablation of Table 1: every synthesis run starts
    /// from scratch.
    pub fn no_incremental() -> SynthConfig {
        SynthConfig {
            incremental: false,
            ..SynthConfig::default()
        }
    }

    /// Every hot-path optimization of the speculation/incremental rework
    /// disabled: no memo tables, no window pruning, no dirty tracking.
    /// This is the reference configuration the differential test harness
    /// compares against — it must predict exactly what the full
    /// configuration predicts, only slower.
    pub fn no_optimizations() -> SynthConfig {
        SynthConfig {
            memoization: false,
            window_pruning: false,
            dirty_tracking: false,
            ..SynthConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_flip_exactly_one_switch() {
        let full = SynthConfig::default();
        let no_sel = SynthConfig::no_selector();
        let no_inc = SynthConfig::no_incremental();
        assert!(full.alternative_selectors && full.incremental);
        assert!(!no_sel.alternative_selectors && no_sel.incremental);
        assert!(no_inc.alternative_selectors && !no_inc.incremental);
    }

    #[test]
    fn optimizations_default_on_and_ablate_together() {
        let full = SynthConfig::default();
        assert!(full.memoization && full.window_pruning && full.dirty_tracking);
        let plain = SynthConfig::no_optimizations();
        assert!(!plain.memoization && !plain.window_pruning && !plain.dirty_tracking);
        // The semantic switches are untouched: this is a perf ablation.
        assert!(plain.alternative_selectors && plain.incremental);
    }
}
