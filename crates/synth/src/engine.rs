//! The top-level worklist algorithm (paper Alg. 1) with incremental
//! synthesis (paper §5.4).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use webrobot_dom::Dom;
use webrobot_lang::{Action, Program, Statement};
use webrobot_semantics::{action_consistent, generalizes, Trace};

use crate::config::SynthConfig;
use crate::context::SynthContext;
use crate::item::Item;
use crate::speculate::{speculate, SRewrite};
use crate::validate::validate;

/// A generalizing program together with its ranking key and prediction.
#[derive(Debug, Clone)]
pub struct RankedProgram {
    /// The synthesized program.
    pub program: Program,
    /// AST size (primary ranking key: smaller is better, paper §4).
    pub size: usize,
    /// The predicted next action `a_{m+1}`.
    pub prediction: Action,
}

/// Bookkeeping for one `synthesize` call.
#[derive(Debug, Clone, Default)]
pub struct SynthStats {
    /// Items popped from the worklist.
    pub pops: usize,
    /// Items pushed (after validation and dedup).
    pub pushes: usize,
    /// s-rewrites validated (Alg. 3 invocations).
    pub validations: usize,
    /// Wall-clock time of the call.
    pub elapsed: Duration,
    /// `true` when cached generalizing programs answered the call without
    /// touching the worklist (the incremental fast path).
    pub fast_path: bool,
    /// `true` when the call ended on the timeout rather than exhausting the
    /// worklist.
    pub timed_out: bool,
}

/// Result of one `synthesize` call.
#[derive(Debug, Clone, Default)]
pub struct SynthResult {
    /// Generalizing programs, best first.
    pub programs: Vec<RankedProgram>,
    /// Distinct predictions surfaced to the user (deduplicated by
    /// node-consistency on the latest DOM), best program's first.
    pub predictions: Vec<Action>,
    /// Call statistics.
    pub stats: SynthStats,
}

impl SynthResult {
    /// The best program's prediction, if any program generalizes.
    pub fn best_prediction(&self) -> Option<&Action> {
        self.predictions.first()
    }
}

/// Worklist entry ordered *smallest statement count first* (ties broken by
/// insertion order for determinism).
#[derive(Debug, Clone)]
struct HeapEntry {
    len: usize,
    seq: u64,
    item: Item,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for min-by-(len, seq).
        (other.len, other.seq).cmp(&(self.len, self.seq))
    }
}

/// The interactive, incremental synthesizer (paper Alg. 1 + §5.4).
///
/// Feed demonstrated actions with [`Synthesizer::observe`], then call
/// [`Synthesizer::synthesize`] to obtain generalizing programs and their
/// predictions. State (worklist, processed rewrites, caches, generalizing
/// programs) persists across calls unless the *No incremental* ablation is
/// configured.
#[derive(Debug)]
pub struct Synthesizer {
    ctx: SynthContext,
    worklist: BinaryHeap<HeapEntry>,
    processed: Vec<Item>,
    generalizing: Vec<Item>,
    seen: HashSet<u64>,
    seq: u64,
    /// Trace length the stored items were last extended to.
    synced_len: usize,
}

impl Synthesizer {
    /// Creates a synthesizer over an initial trace (possibly empty).
    pub fn new(cfg: SynthConfig, trace: Trace) -> Synthesizer {
        let mut synth = Synthesizer {
            synced_len: trace.len(),
            ctx: SynthContext::new(cfg, trace),
            worklist: BinaryHeap::new(),
            processed: Vec::new(),
            generalizing: Vec::new(),
            seen: HashSet::new(),
            seq: 0,
        };
        let initial = Item::initial(synth.ctx.trace());
        synth.push_item(initial);
        synth
    }

    /// The demonstration observed so far.
    pub fn trace(&self) -> &Trace {
        self.ctx.trace()
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        self.ctx.config()
    }

    /// Records one demonstrated (or authorized) action and the DOM the page
    /// transitioned to.
    pub fn observe(&mut self, action: Action, resulting_dom: std::sync::Arc<Dom>) {
        self.ctx.trace.push(action, resulting_dom);
    }

    fn push_item(&mut self, item: Item) {
        if self.seen.insert(item.canonical_hash()) {
            self.seq += 1;
            self.worklist.push(HeapEntry {
                len: item.len(),
                seq: self.seq,
                item,
            });
        }
    }

    /// Synthesizes with the configured timeout.
    pub fn synthesize(&mut self) -> SynthResult {
        let timeout = self.ctx.cfg.timeout;
        self.synthesize_until(Instant::now() + timeout)
    }

    /// Synthesizes until `deadline`.
    ///
    /// With incremental synthesis enabled this first re-checks the cached
    /// generalizing programs (fast path: if any still generalizes the
    /// extended trace, no rewriting happens at all), then resumes the
    /// worklist from `W ∪ W′` with newly demonstrated actions appended to
    /// every stored rewrite and trailing loops re-validated so they absorb
    /// the new actions.
    pub fn synthesize_until(&mut self, deadline: Instant) -> SynthResult {
        let started = Instant::now();
        let mut stats = SynthStats::default();

        if !self.ctx.cfg.incremental {
            self.reset_from_scratch();
        } else {
            // Fast path (paper §7.2: re-synthesis happens only when the
            // previous program fails to predict the next action).
            let trace = self.ctx.trace();
            let latest = trace.latest_dom().clone();
            self.generalizing
                .retain(|item| match generalizes(item.statements(), trace) {
                    Some(pred) => pred.selector().is_none_or(|s| s.valid(&latest)),
                    None => false,
                });
            if !self.generalizing.is_empty() {
                stats.fast_path = true;
                stats.elapsed = started.elapsed();
                return self.rank(stats);
            }
            self.sync_items();
        }

        // Main worklist loop (Alg. 1 lines 3–7).
        while let Some(entry) = self.worklist.pop() {
            if Instant::now() > deadline {
                stats.timed_out = true;
                // Not destructive: put the item back for the next call.
                self.worklist.push(entry);
                break;
            }
            let item = entry.item;
            stats.pops += 1;
            if generalizes(item.statements(), self.ctx.trace()).is_some() {
                self.store_generalizing(item.clone());
            }
            let rewrites: Vec<SRewrite> = speculate(&item, &mut self.ctx, deadline);
            for sr in &rewrites {
                stats.validations += 1;
                if let Some(new_item) = validate(sr, &item, &self.ctx) {
                    stats.pushes += 1;
                    self.push_item(new_item);
                }
                if stats.validations % 64 == 0 && Instant::now() > deadline {
                    stats.timed_out = true;
                    break;
                }
            }
            self.processed.push(item);
            if self.worklist.len() + self.processed.len() > self.ctx.cfg.max_items {
                break;
            }
            if stats.timed_out {
                break;
            }
        }

        stats.elapsed = started.elapsed();
        self.rank(stats)
    }

    /// Keeps at most `max_programs` generalizing rewrites, evicting the
    /// largest when full so small (well-ranked) programs always survive.
    fn store_generalizing(&mut self, item: Item) {
        if self.generalizing.len() < self.ctx.cfg.max_programs {
            self.generalizing.push(item);
            return;
        }
        let new_size = item.to_program().size();
        if let Some((idx, worst)) = self
            .generalizing
            .iter()
            .map(|i| i.to_program().size())
            .enumerate()
            .max_by_key(|&(_, s)| s)
        {
            if new_size < worst {
                self.generalizing[idx] = item;
            }
        }
    }

    /// The *No incremental* ablation: drop every stored rewrite and start
    /// from the singleton program `P₀` again.
    fn reset_from_scratch(&mut self) {
        self.worklist.clear();
        self.processed.clear();
        self.generalizing.clear();
        self.seen.clear();
        self.synced_len = self.ctx.trace().len();
        let initial = Item::initial(self.ctx.trace());
        self.push_item(initial);
    }

    /// Incremental resume (§5.4): extend every stored item (worklist,
    /// processed `W′`, and previously generalizing) with the newly
    /// demonstrated actions as singleton statements, and let trailing loops
    /// absorb them by re-validation. A no-op when the trace hasn't grown
    /// since the last sync.
    fn sync_items(&mut self) {
        let m = self.ctx.trace().len();
        if m == self.synced_len {
            return;
        }
        self.synced_len = m;
        let mut stored: Vec<Item> = Vec::with_capacity(
            self.worklist.len() + self.processed.len() + self.generalizing.len() + 1,
        );
        stored.extend(self.worklist.drain().map(|e| e.item));
        stored.append(&mut self.processed);
        stored.append(&mut self.generalizing);
        // Extended items carry fresh hashes; dedup within this batch only
        // (the global `seen` set still filters future rewrites).
        let mut batch: HashSet<u64> = HashSet::new();
        let requeue = |synth: &mut Synthesizer, item: Item, batch: &mut HashSet<u64>| {
            let hash = item.canonical_hash();
            if batch.insert(hash) {
                synth.seen.insert(hash);
                synth.seq += 1;
                synth.worklist.push(HeapEntry {
                    len: item.len(),
                    seq: synth.seq,
                    item,
                });
            }
        };
        for item in stored {
            debug_assert!(item.covered() <= m, "traces only grow");
            let boundary = item.len(); // index of first appended singleton
            let extended = item.extended_to(self.ctx.trace());
            // Absorption: if the item's last statement is a loop whose
            // coverage ended at the old frontier, re-validate it so it
            // swallows the fresh singletons. When absorption succeeds, the
            // *unabsorbed* variant is dropped: its trailing loop would
            // overrun its slice when re-executed on the longer DOM trace,
            // producing spuriously-generalizing "zombie" programs.
            if boundary > 0 && extended.len() > boundary {
                let k = boundary - 1;
                if !extended.statements()[k].is_loop_free() {
                    let sr = SRewrite {
                        stmt: extended.statements()[k].clone(),
                        i: k,
                        j: k,
                    };
                    if let Some(absorbed) = validate(&sr, &extended, &self.ctx) {
                        requeue(self, absorbed, &mut batch);
                        continue;
                    }
                }
            }
            requeue(self, extended, &mut batch);
        }
    }

    /// Ranks generalizing programs by AST size (then statement count, then
    /// rendering, for determinism) and extracts distinct predictions.
    ///
    /// Programs whose prediction does not denote a node on the latest DOM
    /// are dropped: the front-end could neither visualize nor perform such
    /// an action (paper §6, prediction authorization).
    fn rank(&self, stats: SynthStats) -> SynthResult {
        let trace = self.ctx.trace();
        let latest_dom = trace.latest_dom().clone();
        let mut ranked: Vec<RankedProgram> = Vec::new();
        for item in &self.generalizing {
            if let Some(prediction) = generalizes(item.statements(), trace) {
                if let Some(selector) = prediction.selector() {
                    if !selector.valid(&latest_dom) {
                        continue;
                    }
                }
                let program = item.to_program();
                ranked.push(RankedProgram {
                    size: program.size(),
                    program,
                    prediction,
                });
            }
        }
        ranked.sort_by(|a, b| {
            (a.size, a.program.len(), a.program.to_string()).cmp(&(
                b.size,
                b.program.len(),
                b.program.to_string(),
            ))
        });
        ranked.dedup_by(|a, b| a.program == b.program);

        let latest = trace.latest_dom().clone();
        let mut predictions: Vec<Action> = Vec::new();
        for rp in &ranked {
            if predictions.len() >= self.ctx.cfg.max_predictions {
                break;
            }
            if !predictions
                .iter()
                .any(|p| action_consistent(p, &rp.prediction, &latest))
            {
                predictions.push(rp.prediction.clone());
            }
        }
        SynthResult {
            programs: ranked,
            predictions,
            stats,
        }
    }

    /// Direct access to generalizing rewrites (e.g. for inspecting slice
    /// boundaries in tests and experiments).
    pub fn generalizing_items(&self) -> &[Item] {
        &self.generalizing
    }

    /// Convenience: the statements of the current best program, if any.
    pub fn best_program(&self) -> Option<Vec<Statement>> {
        let trace = self.ctx.trace();
        self.generalizing
            .iter()
            .filter(|item| generalizes(item.statements(), trace).is_some())
            .min_by_key(|item| item.to_program().size())
            .map(|item| item.statements().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;

    fn anchors(n: usize) -> Arc<Dom> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        Arc::new(parse_html(&format!("<html>{body}</html>")).unwrap())
    }

    fn scrape_trace(demonstrated: usize, total: usize) -> Trace {
        let dom = anchors(total);
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for i in 1..=demonstrated {
            t.push(
                Action::ScrapeText(format!("/a[{i}]").parse().unwrap()),
                dom.clone(),
            );
        }
        t
    }

    #[test]
    fn synthesizes_single_loop_from_two_actions() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(2, 5));
        let result = synth.synthesize();
        assert!(!result.programs.is_empty());
        let best = &result.programs[0];
        assert_eq!(best.program.len(), 1);
        assert_eq!(best.program.loop_depth(), 1);
        let want = Action::ScrapeText("/a[3]".parse().unwrap());
        assert!(action_consistent(
            &want,
            result.best_prediction().unwrap(),
            synth.trace().latest_dom()
        ));
    }

    #[test]
    fn one_action_cannot_generalize() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(1, 5));
        let result = synth.synthesize();
        assert!(result.programs.is_empty());
        assert!(result.best_prediction().is_none());
    }

    #[test]
    fn incremental_fast_path_reuses_program() {
        let full = scrape_trace(4, 6);
        let mut synth = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        let r1 = synth.synthesize();
        assert!(!r1.stats.fast_path);
        assert!(!r1.programs.is_empty());
        // The user accepts the prediction: the trace grows by one action.
        synth.observe(full.actions()[2].clone(), full.doms()[3].clone());
        let r2 = synth.synthesize();
        assert!(r2.stats.fast_path, "cached program still generalizes");
        assert!(action_consistent(
            r2.best_prediction().unwrap(),
            &Action::ScrapeText("/a[4]".parse().unwrap()),
            synth.trace().latest_dom()
        ));
    }

    #[test]
    fn no_incremental_restarts_every_time() {
        let full = scrape_trace(3, 6);
        let mut synth = Synthesizer::new(SynthConfig::no_incremental(), full.prefix(2));
        let r1 = synth.synthesize();
        assert!(!r1.programs.is_empty());
        synth.observe(full.actions()[2].clone(), full.doms()[3].clone());
        let r2 = synth.synthesize();
        assert!(!r2.stats.fast_path);
        assert!(!r2.programs.is_empty());
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let dom = anchors(2);
        let t = Trace::new(dom, Value::Object(vec![]));
        let mut synth = Synthesizer::new(SynthConfig::default(), t);
        let result = synth.synthesize();
        assert!(result.programs.is_empty());
    }

    #[test]
    fn predictions_are_deduplicated_by_node() {
        // Children(...) and Dscts(...) loops predict syntactically
        // different but node-identical actions: one prediction surfaces.
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 5));
        let result = synth.synthesize();
        assert!(result.programs.len() >= 2, "ambiguity exists");
        assert_eq!(result.predictions.len(), 1);
    }
}
