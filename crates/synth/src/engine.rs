//! The top-level worklist algorithm (paper Alg. 1) with incremental
//! synthesis (paper §5.4) and the dirty-tracked fast path (§7.2).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use std::time::{Duration, Instant};
use webrobot_dom::{Dom, FxHashSet};

use webrobot_lang::{Action, Program, Statement, StmtId};
use webrobot_semantics::{action_consistent, generalizes, Stepper, Trace};

use crate::config::SynthConfig;
use crate::context::SynthContext;
use crate::item::Item;
use crate::speculate::{speculate, SRewrite};
use crate::validate::validate;

/// A generalizing program together with its ranking key and prediction.
#[derive(Debug, Clone)]
pub struct RankedProgram {
    /// The synthesized program.
    pub program: Program,
    /// AST size (primary ranking key: smaller is better, paper §4).
    pub size: usize,
    /// The predicted next action `a_{m+1}`.
    pub prediction: Action,
}

/// Bookkeeping for one `synthesize` call.
#[derive(Debug, Clone, Default)]
pub struct SynthStats {
    /// Items popped from the worklist.
    pub pops: usize,
    /// Items pushed (after validation and dedup).
    pub pushes: usize,
    /// s-rewrites validated (Alg. 3 invocations).
    pub validations: usize,
    /// Wall-clock time of the call.
    pub elapsed: Duration,
    /// `true` when cached generalizing programs answered the call without
    /// touching the worklist (the incremental fast path).
    pub fast_path: bool,
    /// `true` when the call ended on the timeout rather than exhausting the
    /// worklist.
    pub timed_out: bool,
    /// `true` when the call ended because the stored-item cap
    /// (`max_items`) was reached rather than exhausting the worklist.
    pub truncated: bool,
    /// `true` when a [`Synthesizer::synthesize_quantum`] call exhausted
    /// its budget with the search still in progress. The result carries
    /// no programs or predictions; call `synthesize_quantum` again to
    /// continue.
    pub parked: bool,
    /// DOM resolution-cache hits during the call, summed over the
    /// trace's snapshots (per-DOM counters — see
    /// [`Dom::resolve_cache_counters`] — so the delta is exact per
    /// session even when other shards synthesize concurrently).
    pub resolve_hits: u64,
    /// DOM resolution-cache misses (full walks) during the call.
    pub resolve_misses: u64,
}

/// Result of one `synthesize` call.
#[derive(Debug, Clone, Default)]
pub struct SynthResult {
    /// Generalizing programs, best first.
    pub programs: Vec<RankedProgram>,
    /// Distinct predictions surfaced to the user (deduplicated by
    /// node-consistency on the latest DOM), best program's first.
    pub predictions: Vec<Action>,
    /// Call statistics.
    pub stats: SynthStats,
}

impl SynthResult {
    /// The best program's prediction, if any program generalizes.
    pub fn best_prediction(&self) -> Option<&Action> {
        self.predictions.first()
    }
}

/// Worklist entry ordered *smallest statement count first*.
///
/// The key is `len − covered` rather than `len`: appending the newly
/// demonstrated actions to an item adds the same delta to both, so the
/// difference is invariant under trace growth. That is what lets the
/// dirty-tracked resume leave queued items untouched (extension deferred
/// to pop time) without perturbing the pop order an eager re-queue would
/// have produced. Ties break by insertion order for determinism.
#[derive(Debug, Clone)]
struct HeapEntry {
    key: i64,
    seq: u64,
    item: Item,
}

impl HeapEntry {
    fn keyed(item: Item, seq: u64) -> HeapEntry {
        HeapEntry {
            key: item.len() as i64 - item.covered() as i64,
            seq,
            item,
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for min-by-(key, seq).
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// Resumable prediction state of a cached generalizing program: the
/// [`Stepper`] has consumed every DOM of the trace (length `synced`), and
/// `prediction` is the action it produced on the latest one.
#[derive(Debug)]
struct PredState {
    stepper: Stepper,
    prediction: Action,
    synced: usize,
}

/// A cached generalizing program with its ranking keys precomputed.
///
/// `canon` (the canonicalized rendering) is the deterministic tie-break:
/// unlike the raw rendering it is independent of fresh-variable numbering,
/// so memoized and unmemoized runs — which consume different variables —
/// rank identically.
#[derive(Debug)]
struct GenEntry {
    item: Item,
    program: Program,
    size: usize,
    canon: String,
    /// Per-statement canonical ids — the cheap alpha-duplicate check the
    /// pop loop runs before anything else. Top-level statements are
    /// closed, so equal id sequences coincide with equal `canon`
    /// renderings; unlike the rendering, ids cost a hash probe per
    /// statement instead of a program clone + canonicalize per pop.
    canon_ids: Vec<StmtId>,
    /// `Some` under dirty tracking; `None` in the ablation, where every
    /// call re-executes the program from scratch.
    pred: Option<PredState>,
}

impl GenEntry {
    /// Builds an entry iff `item`'s program generalizes `trace`
    /// (Def. 4.2). Under dirty tracking the check *is* the construction of
    /// the resumable stepper, so the program executes exactly once.
    ///
    /// The canonical rendering (the ranking tie-break) is computed only
    /// when the check succeeds: most popped items do not generalize, and
    /// rendering them just to discard the entry was a measurable slice of
    /// the worklist loop.
    fn build(item: &Item, canon_ids: &[StmtId], trace: &Trace, dirty: bool) -> Option<GenEntry> {
        let pred = if dirty {
            let mut stepper = Stepper::new(item.statements(), trace.input().clone());
            let m = trace.len();
            for t in 0..m {
                match stepper.step(&trace.doms()[t]) {
                    Ok(Some(a)) if action_consistent(&a, &trace.actions()[t], &trace.doms()[t]) => {
                    }
                    _ => return None,
                }
            }
            let prediction = stepper.step(&trace.doms()[m]).ok().flatten()?;
            Some(PredState {
                stepper,
                prediction,
                synced: m,
            })
        } else {
            generalizes(item.statements(), trace)?;
            None
        };
        let program = item.to_program();
        let canon = program.canonicalize().to_string();
        Some(GenEntry {
            item: item.clone(),
            size: program.size(),
            canon,
            canon_ids: canon_ids.to_vec(),
            program,
            pred,
        })
    }

    /// The total ranking order (no ties between distinct canonical
    /// programs), also used for deterministic eviction.
    fn rank_key(&self) -> (usize, usize, &str) {
        (self.size, self.program.len(), self.canon.as_str())
    }
}

/// A compact, adoptable image of the synthesizer's stored search state:
/// the worklist (in pop-tiebreak order), the processed rewrites `W′`, the
/// cached generalizing programs, and the trace length the stored items
/// were last synced to.
///
/// Produced by [`Synthesizer::digest`], consumed by
/// [`Synthesizer::adopt_digest`]. The digest is *positional*, not
/// executable: items are plain programs plus slice bounds, so it
/// serializes to a handful of program strings — no steppers, no memo
/// tables, no DOM references. Everything execution-dependent (resumable
/// prediction steppers, canonical-id interning, the dedup set) is
/// rebuilt deterministically against the adopting synthesizer's own
/// trace, which is what makes adoption equivalent to having re-run the
/// schedule: the engine's stored state provably does not move between
/// worklist runs, so carrying the state across a restore skips those
/// runs without changing any observable result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineDigest {
    /// Queued worklist items, in the order the heap would tie-break them
    /// (insertion sequence). Adoption re-queues them in this order, which
    /// preserves the pop order because the ranking key is recomputed from
    /// the item itself.
    pub worklist: Vec<Item>,
    /// Processed rewrites (`W′` of paper §5.4) — re-queued, un-extended,
    /// on the next incremental resume, exactly as the live engine keeps
    /// them.
    pub processed: Vec<Item>,
    /// The items behind the cached generalizing programs. Adoption
    /// re-executes each one over the adopting trace to rebuild its
    /// resumable prediction stepper (the execution *is* the
    /// generalization re-check, so a tampered digest is rejected, never
    /// trusted).
    pub generalizing: Vec<Item>,
    /// Trace length the stored items were last synced to. Carried as-is
    /// — *not* necessarily the full trace length — so the deferred
    /// extension bookkeeping of the dirty-tracked resume lands exactly
    /// where the original engine left it.
    pub synced_len: usize,
}

/// The interactive, incremental synthesizer (paper Alg. 1 + §5.4).
///
/// Feed demonstrated actions with [`Synthesizer::observe`], then call
/// [`Synthesizer::synthesize`] to obtain generalizing programs and their
/// predictions. State (worklist, processed rewrites, caches, generalizing
/// programs) persists across calls unless the *No incremental* ablation is
/// configured.
///
/// With `dirty_tracking` (the default) the per-observation cost is
/// decoupled from the trace length: cached generalizing programs carry a
/// resumable [`Stepper`] advanced one action per observation instead of
/// being re-executed over the whole demonstration, and stored worklist
/// items are extended lazily when popped instead of eagerly re-queued on
/// every observation.
#[derive(Debug)]
pub struct Synthesizer {
    ctx: SynthContext,
    worklist: BinaryHeap<HeapEntry>,
    processed: Vec<Item>,
    generalizing: Vec<GenEntry>,
    /// Canonical-id sequences whose programs failed the generalization
    /// check against the *current* trace. Distinct worklist items
    /// routinely share a statement sequence (they differ only in slice
    /// bounds), and the check replays the whole trace each time — memoize
    /// the failures and pay it once. Valid only for one trace: cleared on
    /// every [`observe`](Self::observe).
    gen_fail: FxHashSet<Vec<StmtId>>,
    seen: FxHashSet<u64>,
    seq: u64,
    /// Trace length the stored items were last synced to.
    synced_len: usize,
    /// `true` while a sliced search ([`synthesize_quantum`]) is parked
    /// mid-worklist: the prelude (fast-path check + incremental resume)
    /// already ran and must not run again until the search completes.
    /// Cleared by [`observe`], which invalidates the in-flight search.
    ///
    /// [`synthesize_quantum`]: Synthesizer::synthesize_quantum
    /// [`observe`]: Synthesizer::observe
    searching: bool,
    /// Wall-clock time already spent in previous quanta of the current
    /// search; `search_spent + this quantum` is checked against the
    /// configured `timeout` so a sliced search observes the same total
    /// budget as an unsliced one.
    search_spent: Duration,
}

// Sessions are sharded across worker threads one synthesizer per
// session, so the engine (worklist items, cached stepper cursors, memo
// tables) must stay `Send + Sync`. Compile-time enforced: an `Rc` or
// `RefCell` reintroduced anywhere below fails `cargo check`, not a test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Synthesizer>();
};

impl Synthesizer {
    /// Creates a synthesizer over an initial trace (possibly empty).
    pub fn new(cfg: SynthConfig, trace: Trace) -> Synthesizer {
        let mut synth = Synthesizer {
            synced_len: trace.len(),
            ctx: SynthContext::new(cfg, trace),
            worklist: BinaryHeap::new(),
            processed: Vec::new(),
            generalizing: Vec::new(),
            gen_fail: FxHashSet::default(),
            seen: FxHashSet::default(),
            seq: 0,
            searching: false,
            search_spent: Duration::ZERO,
        };
        let initial = Item::initial(synth.ctx.trace());
        synth.push_item(initial);
        synth
    }

    /// The demonstration observed so far.
    pub fn trace(&self) -> &Trace {
        self.ctx.trace()
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        self.ctx.config()
    }

    /// Records one demonstrated (or authorized) action and the DOM the page
    /// transitioned to.
    pub fn observe(&mut self, action: Action, resulting_dom: std::sync::Arc<Dom>) {
        self.ctx.observe(action, resulting_dom);
        // Generalization outcomes are relative to the trace; a program
        // that failed on the old frontier may succeed on the grown one.
        self.gen_fail.clear();
        // A new observation invalidates a parked sliced search: the next
        // quantum restarts from the prelude, exactly as `synthesize`
        // would after the same observation.
        self.searching = false;
    }

    fn requeue(&mut self, item: Item) {
        self.seq += 1;
        self.worklist.push(HeapEntry::keyed(item, self.seq));
    }

    /// The worklist dedup hash: per-statement canonical ids plus slice
    /// bounds. Same alpha-equivalence classes as [`Item::canonical_hash`]
    /// (top-level statements are closed), but repeat statements cost a
    /// memo probe instead of a program clone + canonicalize per push.
    fn item_hash(&self, item: &Item) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = webrobot_dom::FxHasher::default();
        for stmt in item.statements() {
            self.ctx.canon_id(stmt).hash(&mut h);
        }
        item.bounds().hash(&mut h);
        h.finish()
    }

    fn push_item(&mut self, item: Item) {
        if self.seen.insert(self.item_hash(&item)) {
            self.requeue(item);
        }
    }

    /// [`push_item`](Self::push_item) for a validated rewrite of the item
    /// currently being popped. `spliced` replaced statements
    /// `sr.i..sr.i+removed` of a parent whose per-statement ids were
    /// `parent_ids`, so the dedup hash is a splice of ids already in hand —
    /// no statement is re-interned. Produces bit-identical hashes to
    /// [`item_hash`](Self::item_hash) by construction.
    fn push_spliced(&mut self, spliced: Item, parent_ids: &[StmtId], sr: &SRewrite) {
        use std::hash::{Hash, Hasher};
        let removed = parent_ids.len() + 1 - spliced.len();
        let mut h = webrobot_dom::FxHasher::default();
        for id in &parent_ids[..sr.i] {
            id.hash(&mut h);
        }
        sr.cid.hash(&mut h);
        for id in &parent_ids[sr.i + removed..] {
            id.hash(&mut h);
        }
        spliced.bounds().hash(&mut h);
        if self.seen.insert(h.finish()) {
            self.requeue(spliced);
        }
    }

    /// Synthesizes with the configured timeout.
    pub fn synthesize(&mut self) -> SynthResult {
        let timeout = self.ctx.cfg.timeout;
        self.synthesize_until(Instant::now() + timeout)
    }

    /// Synthesizes until `deadline`.
    ///
    /// With incremental synthesis enabled this first re-checks the cached
    /// generalizing programs (fast path: if any still generalizes the
    /// extended trace, no rewriting happens at all), then resumes the
    /// worklist from `W ∪ W′` with newly demonstrated actions appended to
    /// every stored rewrite and trailing loops re-validated so they absorb
    /// the new actions.
    pub fn synthesize_until(&mut self, deadline: Instant) -> SynthResult {
        let started = Instant::now();
        let (hits0, misses0) = self.resolve_counters();
        let mut stats = SynthStats::default();

        if !self.begin_search(&mut stats) {
            stats.elapsed = started.elapsed();
            self.finish_resolve_stats(&mut stats, hits0, misses0);
            return self.rank(stats);
        }

        // Main worklist loop (Alg. 1 lines 3–7).
        while let Some(entry) = self.worklist.pop() {
            if Instant::now() > deadline {
                stats.timed_out = true;
                // Not destructive: put the item back for the next call.
                self.worklist.push(entry);
                break;
            }
            let Some(item) = self.admit(entry.item) else {
                continue;
            };
            stats.pops += 1;
            self.process_item(item, &mut stats, deadline, true);
            if self.worklist.len() + self.processed.len() > self.ctx.cfg.max_items {
                stats.truncated = true;
                break;
            }
            if stats.timed_out {
                break;
            }
        }

        // An unsliced call always concludes the search, even on timeout
        // (the next call re-runs the prelude, as it always has).
        self.searching = false;
        stats.elapsed = started.elapsed();
        self.finish_resolve_stats(&mut stats, hits0, misses0);
        self.rank(stats)
    }

    /// Runs at most `budget` of worklist search, parking the search when
    /// the budget runs out before the worklist does.
    ///
    /// A sequence of `synthesize_quantum` calls with no intervening
    /// [`observe`](Self::observe) is equivalent to one
    /// [`synthesize`](Self::synthesize) call with an unbounded deadline:
    /// the worklist, dedup set and cached generalizing programs persist
    /// across quanta, so the pop order — and therefore the final ranked
    /// programs and predictions — are identical. While parked, the
    /// returned result withholds intermediate programs: `stats.parked`
    /// is `true` and `programs`/`predictions` are empty; call again to
    /// continue. The budget is checked only *between* worklist items
    /// (each popped item is speculated and validated atomically, which
    /// is what keeps the sliced search exactly equal to the unsliced
    /// one), and at least one item is processed per quantum, so progress
    /// is guaranteed even with a zero budget.
    ///
    /// The configured `timeout` still bounds the *cumulative* search
    /// time across quanta: a pathological session concludes with
    /// `stats.timed_out` after roughly `timeout` worth of quanta instead
    /// of parking forever.
    pub fn synthesize_quantum(&mut self, budget: Duration) -> SynthResult {
        let started = Instant::now();
        let (hits0, misses0) = self.resolve_counters();
        let mut stats = SynthStats::default();

        if !self.begin_search(&mut stats) {
            stats.elapsed = started.elapsed();
            self.finish_resolve_stats(&mut stats, hits0, misses0);
            return self.rank(stats);
        }

        // Far deadline for speculation: a quantum never truncates the
        // item it is processing, or sliced and unsliced searches would
        // diverge.
        let far = started + Duration::from_secs(86_400);
        let quantum_deadline = started + budget;
        let timeout = self.ctx.cfg.timeout;
        loop {
            let Some(entry) = self.worklist.pop() else {
                self.searching = false;
                break;
            };
            let Some(item) = self.admit(entry.item) else {
                continue;
            };
            stats.pops += 1;
            self.process_item(item, &mut stats, far, false);
            if self.worklist.len() + self.processed.len() > self.ctx.cfg.max_items {
                stats.truncated = true;
                self.searching = false;
                break;
            }
            let now = Instant::now();
            if self.search_spent + (now - started) > timeout {
                stats.timed_out = true;
                self.searching = false;
                break;
            }
            if now >= quantum_deadline {
                stats.parked = true;
                break;
            }
        }

        self.search_spent += started.elapsed();
        stats.elapsed = started.elapsed();
        self.finish_resolve_stats(&mut stats, hits0, misses0);
        if stats.parked {
            return SynthResult {
                programs: Vec::new(),
                predictions: Vec::new(),
                stats,
            };
        }
        self.rank(stats)
    }

    /// `true` while a sliced search is parked mid-worklist (a
    /// [`synthesize_quantum`](Self::synthesize_quantum) call returned
    /// `stats.parked`) and another quantum is needed to conclude it.
    pub fn is_parked(&self) -> bool {
        self.searching
    }

    /// Runs the search prelude — from-scratch reset (the *No
    /// incremental* ablation), the cached-program fast path (paper §7.2:
    /// re-synthesis happens only when the previous program fails to
    /// predict the next action), and the incremental resume — unless a
    /// parked sliced search is in progress, in which case the prelude
    /// already ran. Returns `false` when cached generalizing programs
    /// answer the call without touching the worklist; the caller ranks
    /// and returns.
    fn begin_search(&mut self, stats: &mut SynthStats) -> bool {
        if self.searching {
            return true;
        }
        if !self.ctx.cfg.incremental {
            self.reset_from_scratch();
        } else {
            self.refresh_generalizing();
            if !self.generalizing.is_empty() {
                stats.fast_path = true;
                return false;
            }
            self.resume_incremental();
        }
        self.searching = true;
        self.search_spent = Duration::ZERO;
        true
    }

    /// Processes one admitted worklist item: the generalization check
    /// plus speculate / validate / push (Alg. 1 lines 4–6). `deadline`
    /// bounds speculation; when `interruptible` is set, validation may
    /// additionally abort between rewrites once the deadline passes (the
    /// legacy lossy timeout — quantum mode processes each item
    /// atomically instead and passes `false`).
    fn process_item(
        &mut self,
        item: Item,
        stats: &mut SynthStats,
        deadline: Instant,
        interruptible: bool,
    ) {
        let canon_ids: Vec<StmtId> = item
            .statements()
            .iter()
            .map(|s| self.ctx.canon_id(s))
            .collect();
        if !self.gen_fail.contains(&canon_ids)
            && !self.generalizing.iter().any(|e| e.canon_ids == canon_ids)
        {
            match GenEntry::build(
                &item,
                &canon_ids,
                self.ctx.trace(),
                self.ctx.cfg.dirty_tracking,
            ) {
                Some(gen) => self.store_generalizing(gen),
                None => {
                    self.gen_fail.insert(canon_ids.clone());
                }
            }
        }
        let rewrites: Vec<SRewrite> = speculate(&item, &mut self.ctx, deadline);
        for sr in &rewrites {
            stats.validations += 1;
            if let Some(new_item) = validate(sr, &item, &self.ctx) {
                stats.pushes += 1;
                self.push_spliced(new_item, &canon_ids, sr);
            }
            if interruptible && stats.validations.is_multiple_of(64) && Instant::now() > deadline {
                stats.timed_out = true;
                break;
            }
        }
        self.processed.push(item);
    }

    /// Sums the per-DOM resolution-cache counters over the trace's
    /// snapshots. Every resolution during synthesis targets a trace DOM,
    /// and snapshots are never shared across sessions, so before/after
    /// deltas of this sum attribute hits and misses exactly to this
    /// synthesizer even when other shards resolve concurrently.
    fn resolve_counters(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for dom in self.ctx.trace().doms() {
            let (h, m) = dom.resolve_cache_counters();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    fn finish_resolve_stats(&self, stats: &mut SynthStats, hits0: u64, misses0: u64) {
        let (hits, misses) = self.resolve_counters();
        stats.resolve_hits = hits - hits0;
        stats.resolve_misses = misses - misses0;
    }

    /// Drops cached generalizing programs that no longer generalize the
    /// (possibly grown) trace, or whose prediction does not denote a node
    /// on the latest DOM.
    ///
    /// Under dirty tracking each entry advances its resumable stepper by
    /// exactly the newly observed actions — O(new actions), not O(trace) —
    /// relying on the interpreter being deterministic in the DOM prefix.
    /// The ablation re-executes every program over the whole trace, which
    /// is the original (provably equivalent, measurably slower) behavior.
    fn refresh_generalizing(&mut self) {
        let trace = &self.ctx.trace;
        let m = trace.len();
        let latest = trace.latest_dom().clone();
        if self.ctx.cfg.dirty_tracking {
            self.generalizing.retain_mut(|entry| {
                let Some(pred) = entry.pred.as_mut() else {
                    return false;
                };
                while pred.synced < m {
                    let t = pred.synced;
                    if !action_consistent(&pred.prediction, &trace.actions()[t], &trace.doms()[t]) {
                        return false;
                    }
                    match pred.stepper.step(&trace.doms()[t + 1]) {
                        Ok(Some(a)) => {
                            pred.prediction = a;
                            pred.synced = t + 1;
                        }
                        _ => return false,
                    }
                }
                pred.prediction.selector().is_none_or(|s| s.valid(&latest))
            });
        } else {
            self.generalizing
                .retain(|entry| match generalizes(entry.item.statements(), trace) {
                    Some(pred) => pred.selector().is_none_or(|s| s.valid(&latest)),
                    None => false,
                });
        }
    }

    /// Keeps at most `max_programs` generalizing programs. Both admission
    /// and eviction follow the total ranking order (size, then statement
    /// count, then canonical rendering), so the retained set depends only
    /// on *which* programs were found, not on the order they were found in
    /// — a prerequisite for the incremental ≡ from-scratch equivalence.
    fn store_generalizing(&mut self, entry: GenEntry) {
        debug_assert!(
            !self.generalizing.iter().any(|e| e.canon == entry.canon),
            "alpha-duplicates are filtered before the generalization check"
        );
        if self.generalizing.len() < self.ctx.cfg.max_programs {
            self.generalizing.push(entry);
            return;
        }
        if let Some((idx, worst)) = self
            .generalizing
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.rank_key().cmp(&b.rank_key()))
        {
            if entry.rank_key() < worst.rank_key() {
                self.generalizing[idx] = entry;
            }
        }
    }

    /// Drops every stored rewrite (worklist, processed, generalizing
    /// programs) so the next call synthesizes from the singleton program
    /// `P₀` again, exactly as a freshly constructed synthesizer would —
    /// but keeping the context's selector caches warm.
    ///
    /// This is the from-scratch reference of the differential test
    /// harness (`tests/differential.rs`).
    pub fn reset_incremental(&mut self) {
        self.reset_from_scratch();
    }

    /// The *No incremental* ablation: drop every stored rewrite and start
    /// from the singleton program `P₀` again.
    fn reset_from_scratch(&mut self) {
        self.worklist.clear();
        self.processed.clear();
        self.generalizing.clear();
        self.gen_fail.clear();
        self.seen.clear();
        self.searching = false;
        self.synced_len = self.ctx.trace().len();
        let initial = Item::initial(self.ctx.trace());
        self.push_item(initial);
    }

    /// Incremental resume (§5.4): make the stored rewrites (worklist and
    /// processed `W′`) cover the newly demonstrated actions again.
    ///
    /// Under dirty tracking, queued items **carry over untouched**: the
    /// heap key is growth-invariant (see [`HeapEntry`]), so extension —
    /// and the trailing-loop absorption check, the only work whose result
    /// actually depends on the new actions — is deferred to
    /// [`Synthesizer::admit`] at pop time. Only the processed list is
    /// re-queued, un-extended. The ablation reproduces the original eager
    /// behavior: drain everything, extend and re-validate every item, and
    /// rebuild the heap, which is O(stored items × program length) per
    /// observation.
    fn resume_incremental(&mut self) {
        let m = self.ctx.trace().len();
        if m == self.synced_len {
            return;
        }
        self.synced_len = m;
        if self.ctx.cfg.dirty_tracking {
            // Only *suffix-reachable* items — those whose trailing
            // statement is a loop that may absorb the new actions, and
            // whose worklist rank may therefore change — are re-extended
            // now. Everything else carries over untouched: the heap key
            // is growth-invariant, so deferring the (pure-append)
            // extension to pop time preserves the eager pop order.
            let mut carried: Vec<HeapEntry> = Vec::with_capacity(self.worklist.len());
            let mut absorbers: Vec<Item> = Vec::new();
            for entry in self.worklist.drain() {
                let loop_tail = entry
                    .item
                    .statements()
                    .last()
                    .is_some_and(|s| !s.is_loop_free());
                if loop_tail {
                    absorbers.push(entry.item);
                } else {
                    carried.push(entry);
                }
            }
            self.worklist.extend(carried);
            for item in std::mem::take(&mut self.processed) {
                let loop_tail = item.statements().last().is_some_and(|s| !s.is_loop_free());
                if loop_tail {
                    absorbers.push(item);
                } else {
                    self.requeue(item);
                }
            }
            for item in absorbers {
                let extended = self.extend_and_absorb(item);
                if self.seen.insert(self.item_hash(&extended)) {
                    self.requeue(extended);
                }
            }
            return;
        }
        let mut stored: Vec<Item> = Vec::with_capacity(self.worklist.len() + self.processed.len());
        stored.extend(self.worklist.drain().map(|e| e.item));
        stored.append(&mut self.processed);
        // Extended items carry fresh hashes; dedup within this batch only
        // (the global `seen` set still filters future rewrites).
        let mut batch: FxHashSet<u64> = FxHashSet::default();
        for item in stored {
            debug_assert!(item.covered() <= m, "traces only grow");
            let extended = self.extend_and_absorb(item);
            let hash = self.item_hash(&extended);
            if batch.insert(hash) {
                self.seen.insert(hash);
                self.requeue(extended);
            }
        }
    }

    /// Pop-time admission (the lazy half of the dirty-tracked resume): an
    /// item that predates the newest observations is extended and
    /// absorption-checked now, and discarded if an identical item was
    /// already admitted through another path.
    fn admit(&mut self, item: Item) -> Option<Item> {
        if item.covered() == self.ctx.trace().len() {
            return Some(item);
        }
        let extended = self.extend_and_absorb(item);
        if self.seen.insert(self.item_hash(&extended)) {
            Some(extended)
        } else {
            None
        }
    }

    /// Extends `item` with the newly demonstrated actions as singleton
    /// statements and, if its last pre-extension statement is a loop whose
    /// coverage ended at the old frontier, re-validates that loop so it
    /// absorbs the fresh singletons. When absorption succeeds, the
    /// *unabsorbed* variant is dropped: its trailing loop would overrun
    /// its slice when re-executed on the longer DOM trace, producing
    /// spuriously-generalizing "zombie" programs.
    fn extend_and_absorb(&mut self, item: Item) -> Item {
        let boundary = item.len(); // index of first appended singleton
        let extended = item.extended_to(self.ctx.trace());
        if boundary > 0 && extended.len() > boundary {
            let k = boundary - 1;
            if !extended.statements()[k].is_loop_free() {
                let stmt = extended.statements()[k].clone();
                let sr = SRewrite {
                    cid: self.ctx.canon_id(&stmt),
                    stmt: std::sync::Arc::new(stmt),
                    i: k,
                    j: k,
                };
                if let Some(absorbed) = validate(&sr, &extended, &self.ctx) {
                    return absorbed;
                }
            }
        }
        extended
    }

    /// Ranks generalizing programs by AST size (then statement count, then
    /// *canonicalized* rendering — deterministic and independent of
    /// fresh-variable numbering) and extracts distinct predictions.
    ///
    /// Programs whose prediction does not denote a node on the latest DOM
    /// are dropped: the front-end could neither visualize nor perform such
    /// an action (paper §6, prediction authorization).
    fn rank(&self, stats: SynthStats) -> SynthResult {
        let trace = self.ctx.trace();
        let latest = trace.latest_dom().clone();
        let mut ranked: Vec<(&GenEntry, RankedProgram)> = Vec::new();
        for entry in &self.generalizing {
            let prediction = match &entry.pred {
                Some(p) => {
                    debug_assert_eq!(p.synced, trace.len(), "entries are refreshed before rank");
                    p.prediction.clone()
                }
                None => match generalizes(entry.item.statements(), trace) {
                    Some(p) => p,
                    None => continue,
                },
            };
            if let Some(selector) = prediction.selector() {
                if !selector.valid(&latest) {
                    continue;
                }
            }
            ranked.push((
                entry,
                RankedProgram {
                    size: entry.size,
                    program: entry.program.clone(),
                    prediction,
                },
            ));
        }
        ranked.sort_by(|(a, _), (b, _)| a.rank_key().cmp(&b.rank_key()));
        ranked.dedup_by(|(a, _), (b, _)| a.canon == b.canon);
        let ranked: Vec<RankedProgram> = ranked.into_iter().map(|(_, rp)| rp).collect();

        let mut predictions: Vec<Action> = Vec::new();
        for rp in &ranked {
            if predictions.len() >= self.ctx.cfg.max_predictions {
                break;
            }
            if !predictions
                .iter()
                .any(|p| action_consistent(p, &rp.prediction, &latest))
            {
                predictions.push(rp.prediction.clone());
            }
        }
        SynthResult {
            programs: ranked,
            predictions,
            stats,
        }
    }

    /// Captures the stored search state as an [`EngineDigest`], or `None`
    /// while a sliced search is parked mid-worklist (a half-run search
    /// has no consistent stored state to carry; conclude it first).
    pub fn digest(&self) -> Option<EngineDigest> {
        if self.searching {
            return None;
        }
        let mut queued: Vec<&HeapEntry> = self.worklist.iter().collect();
        queued.sort_by_key(|e| e.seq);
        Some(EngineDigest {
            worklist: queued.into_iter().map(|e| e.item.clone()).collect(),
            processed: self.processed.clone(),
            generalizing: self.generalizing.iter().map(|e| e.item.clone()).collect(),
            synced_len: self.synced_len,
        })
    }

    /// Replaces the stored search state with `digest`, rebuilding
    /// everything execution-dependent against this synthesizer's own
    /// trace: generalizing entries re-execute their programs (the
    /// generalization re-check doubles as stepper construction), the
    /// dedup set is recomputed from the adopted items, and worklist
    /// entries are re-keyed in digest order.
    ///
    /// Returns `false` — leaving the synthesizer untouched — when the
    /// digest is inconsistent with the trace: malformed slice bounds,
    /// items covering more actions than the trace holds, a sync point
    /// past the frontier, or a "generalizing" program that does not in
    /// fact generalize. A `false` return means the digest was not
    /// produced by [`Synthesizer::digest`] on an equivalent synthesizer
    /// (e.g. a hand-tampered persisted record); the caller falls back to
    /// re-deriving the state by synthesis.
    ///
    /// Failure memo tables (`gen_fail`, plus the context's validation
    /// memos) are *not* carried: they are pure caches whose absence only
    /// re-pays a lookup, never changes a result.
    pub fn adopt_digest(&mut self, digest: &EngineDigest) -> bool {
        let m = self.ctx.trace().len();
        if digest.synced_len > m {
            return false;
        }
        let well_formed = |item: &Item| {
            item.bounds().len() == item.len() + 1
                && item.bounds().first() == Some(&0)
                && item.bounds().windows(2).all(|w| w[0] < w[1])
                && item.covered() <= m
        };
        if !digest
            .worklist
            .iter()
            .chain(&digest.processed)
            .chain(&digest.generalizing)
            .all(well_formed)
        {
            return false;
        }
        // Rebuild the generalizing entries before touching any state, so
        // a rejected digest leaves the synthesizer exactly as it was.
        let mut gens: Vec<GenEntry> = Vec::with_capacity(digest.generalizing.len());
        for item in &digest.generalizing {
            let canon_ids: Vec<StmtId> = item
                .statements()
                .iter()
                .map(|s| self.ctx.canon_id(s))
                .collect();
            match GenEntry::build(
                item,
                &canon_ids,
                self.ctx.trace(),
                self.ctx.cfg.dirty_tracking,
            ) {
                Some(entry) => gens.push(entry),
                None => return false,
            }
        }
        self.worklist.clear();
        self.processed = digest.processed.clone();
        self.generalizing = gens;
        self.gen_fail.clear();
        self.seen.clear();
        self.seq = 0;
        self.searching = false;
        self.search_spent = Duration::ZERO;
        self.synced_len = digest.synced_len;
        for item in digest.worklist.iter().cloned() {
            let hash = self.item_hash(&item);
            self.seen.insert(hash);
            self.requeue(item);
        }
        // Processed items were admitted through the worklist once, so
        // their hashes were in the dedup set; restore that. (Hashes of
        // items that were since *extended* are unreachable to future
        // pushes — every push covers the full trace at push time, and
        // the covered length is part of the hash — so dropping them
        // cannot re-admit anything the original engine would have
        // deduplicated.)
        for i in 0..self.processed.len() {
            let hash = self.item_hash(&self.processed[i]);
            self.seen.insert(hash);
        }
        for i in 0..self.generalizing.len() {
            let hash = self.item_hash(&self.generalizing[i].item);
            self.seen.insert(hash);
        }
        true
    }

    /// Direct access to generalizing rewrites (e.g. for inspecting slice
    /// boundaries in tests and experiments).
    pub fn generalizing_items(&self) -> impl Iterator<Item = &Item> {
        self.generalizing.iter().map(|e| &e.item)
    }

    /// Convenience: the statements of the current best program, if any.
    pub fn best_program(&self) -> Option<Vec<Statement>> {
        let trace = self.ctx.trace();
        self.generalizing
            .iter()
            .filter(|entry| generalizes(entry.item.statements(), trace).is_some())
            .min_by(|a, b| a.rank_key().cmp(&b.rank_key()))
            .map(|entry| entry.item.statements().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;

    fn anchors(n: usize) -> Arc<Dom> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        Arc::new(parse_html(&format!("<html>{body}</html>")).unwrap())
    }

    fn scrape_trace(demonstrated: usize, total: usize) -> Trace {
        let dom = anchors(total);
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for i in 1..=demonstrated {
            t.push(
                Action::ScrapeText(format!("/a[{i}]").parse().unwrap()),
                dom.clone(),
            );
        }
        t
    }

    #[test]
    fn synthesizes_single_loop_from_two_actions() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(2, 5));
        let result = synth.synthesize();
        assert!(!result.programs.is_empty());
        let best = &result.programs[0];
        assert_eq!(best.program.len(), 1);
        assert_eq!(best.program.loop_depth(), 1);
        let want = Action::ScrapeText("/a[3]".parse().unwrap());
        assert!(action_consistent(
            &want,
            result.best_prediction().unwrap(),
            synth.trace().latest_dom()
        ));
    }

    #[test]
    fn one_action_cannot_generalize() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(1, 5));
        let result = synth.synthesize();
        assert!(result.programs.is_empty());
        assert!(result.best_prediction().is_none());
    }

    #[test]
    fn incremental_fast_path_reuses_program() {
        let full = scrape_trace(4, 6);
        let mut synth = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        let r1 = synth.synthesize();
        assert!(!r1.stats.fast_path);
        assert!(!r1.programs.is_empty());
        // The user accepts the prediction: the trace grows by one action.
        synth.observe(full.actions()[2].clone(), full.doms()[3].clone());
        let r2 = synth.synthesize();
        assert!(r2.stats.fast_path, "cached program still generalizes");
        assert!(action_consistent(
            r2.best_prediction().unwrap(),
            &Action::ScrapeText("/a[4]".parse().unwrap()),
            synth.trace().latest_dom()
        ));
    }

    #[test]
    fn fast_path_matches_legacy_retention() {
        // The stepper-driven fast path and the ablation (full re-execution
        // per call) must agree call by call on a growing demonstration.
        let full = scrape_trace(5, 7);
        let mut dirty = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        let mut legacy = Synthesizer::new(SynthConfig::no_optimizations(), full.prefix(2));
        for k in 2..=5 {
            if k > 2 {
                dirty.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
                legacy.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
            }
            let rd = dirty.synthesize();
            let rl = legacy.synthesize();
            assert_eq!(rd.stats.fast_path, rl.stats.fast_path, "prefix {k}");
            assert_eq!(rd.predictions, rl.predictions, "prefix {k}");
        }
    }

    #[test]
    fn no_incremental_restarts_every_time() {
        let full = scrape_trace(3, 6);
        let mut synth = Synthesizer::new(SynthConfig::no_incremental(), full.prefix(2));
        let r1 = synth.synthesize();
        assert!(!r1.programs.is_empty());
        synth.observe(full.actions()[2].clone(), full.doms()[3].clone());
        let r2 = synth.synthesize();
        assert!(!r2.stats.fast_path);
        assert!(!r2.programs.is_empty());
    }

    #[test]
    fn reset_incremental_matches_fresh_synthesizer() {
        let full = scrape_trace(4, 6);
        let mut warm = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        warm.synthesize();
        warm.observe(full.actions()[2].clone(), full.doms()[3].clone());
        warm.reset_incremental();
        let r_reset = warm.synthesize();
        let mut fresh = Synthesizer::new(SynthConfig::default(), full.prefix(3));
        let r_fresh = fresh.synthesize();
        assert!(!r_reset.stats.fast_path);
        assert_eq!(r_reset.predictions, r_fresh.predictions);
        assert_eq!(r_reset.programs.len(), r_fresh.programs.len());
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let dom = anchors(2);
        let t = Trace::new(dom, Value::Object(vec![]));
        let mut synth = Synthesizer::new(SynthConfig::default(), t);
        let result = synth.synthesize();
        assert!(result.programs.is_empty());
    }

    /// Drives a sliced search to completion one item per quantum,
    /// counting the number of parked quanta along the way.
    fn synthesize_in_quanta(synth: &mut Synthesizer) -> (SynthResult, usize) {
        let mut parked = 0;
        loop {
            let result = synth.synthesize_quantum(Duration::ZERO);
            if !result.stats.parked {
                return (result, parked);
            }
            assert!(
                result.programs.is_empty(),
                "parked results withhold programs"
            );
            assert!(result.predictions.is_empty());
            assert!(synth.is_parked());
            parked += 1;
        }
    }

    #[test]
    fn quantum_slicing_matches_unsliced_synthesis() {
        let full = scrape_trace(4, 6);
        let mut sliced = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        let mut unsliced = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        for k in 2..=4 {
            if k > 2 {
                sliced.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
                unsliced.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
            }
            let (rs, parked) = synthesize_in_quanta(&mut sliced);
            let ru = unsliced.synthesize();
            assert_eq!(rs.predictions, ru.predictions, "prefix {k}");
            assert_eq!(rs.programs.len(), ru.programs.len(), "prefix {k}");
            assert_eq!(rs.stats.fast_path, ru.stats.fast_path, "prefix {k}");
            if !rs.stats.fast_path {
                // A zero budget parks after every item but the last.
                assert!(parked > 0, "prefix {k} search was sliced");
            }
            assert!(!sliced.is_parked());
        }
    }

    #[test]
    fn large_quantum_completes_in_one_call() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(2, 5));
        let result = synth.synthesize_quantum(Duration::from_secs(3600));
        assert!(!result.stats.parked);
        assert!(!result.programs.is_empty());
        assert!(!synth.is_parked());
    }

    #[test]
    fn observe_invalidates_a_parked_search() {
        let full = scrape_trace(3, 6);
        let mut synth = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        let first = synth.synthesize_quantum(Duration::ZERO);
        assert!(first.stats.parked, "zero budget parks after one item");
        synth.observe(full.actions()[2].clone(), full.doms()[3].clone());
        assert!(!synth.is_parked(), "observation cancels the parked search");
        let (result, _) = synthesize_in_quanta(&mut synth);
        let mut fresh = Synthesizer::new(SynthConfig::default(), full.prefix(3));
        let reference = fresh.synthesize();
        assert_eq!(result.predictions, reference.predictions);
    }

    #[test]
    fn resolve_stats_cover_the_call() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(2, 5));
        let result = synth.synthesize();
        assert!(
            result.stats.resolve_hits + result.stats.resolve_misses > 0,
            "synthesis resolves selectors through the cache"
        );
    }

    /// A digest adopted by a fresh synthesizer over the same trace is
    /// behaviorally identical to the original engine: same results now,
    /// same results after further observations (including the incremental
    /// fast path and the worklist resume).
    #[test]
    fn digest_adoption_matches_the_original_engine() {
        let full = scrape_trace(5, 8);
        let mut original = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        original.synthesize();

        let digest = original.digest().expect("concluded search has a digest");
        assert!(!digest.generalizing.is_empty());
        let mut adopted = Synthesizer::new(SynthConfig::default(), full.prefix(2));
        assert!(adopted.adopt_digest(&digest));

        for k in 3..=5 {
            original.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
            adopted.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
            let ro = original.synthesize();
            let ra = adopted.synthesize();
            assert_eq!(ro.stats.fast_path, ra.stats.fast_path, "prefix {k}");
            assert_eq!(ro.stats.pops, ra.stats.pops, "prefix {k}");
            assert_eq!(ro.predictions, ra.predictions, "prefix {k}");
            assert_eq!(ro.programs.len(), ra.programs.len(), "prefix {k}");
        }
    }

    /// Digest round-trip: capture → adopt → capture yields the same
    /// digest (the image is a faithful, stable projection of the state).
    #[test]
    fn digest_round_trips_through_adoption() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 6));
        synth.synthesize();
        let digest = synth.digest().unwrap();
        let mut adopted = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 6));
        assert!(adopted.adopt_digest(&digest));
        assert_eq!(adopted.digest().unwrap(), digest);
    }

    /// Inconsistent digests are rejected wholesale, leaving the adopting
    /// synthesizer untouched.
    #[test]
    fn tampered_digests_are_rejected_without_side_effects() {
        let mut donor = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 6));
        donor.synthesize();
        let good = donor.digest().unwrap();

        let mut with_bad_bounds = good.clone();
        with_bad_bounds.generalizing[0].bounds.reverse();
        let mut overlong = good.clone();
        overlong.synced_len = 99;
        let mut overcovering = good.clone();
        // An item claiming to cover more actions than the trace holds.
        assert!(!overcovering.processed.is_empty());
        *overcovering.processed[0].bounds.last_mut().unwrap() = 99;
        let mut non_generalizing = good.clone();
        // Swap a worklist item in as a "generalizing" program: the
        // adoption re-check executes it and finds it does not predict.
        non_generalizing.generalizing = vec![Item::initial(donor.trace())];

        for bad in [with_bad_bounds, overlong, overcovering, non_generalizing] {
            let mut target = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 6));
            let before = target.digest().unwrap();
            assert!(!target.adopt_digest(&bad));
            assert_eq!(target.digest().unwrap(), before, "rejected ⇒ untouched");
        }
    }

    /// A parked sliced search has no digest (its stored state is
    /// mid-mutation); concluding the search restores capture.
    #[test]
    fn parked_searches_have_no_digest() {
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 6));
        let first = synth.synthesize_quantum(Duration::ZERO);
        assert!(first.stats.parked);
        assert!(synth.digest().is_none());
        synthesize_in_quanta(&mut synth);
        assert!(synth.digest().is_some());
    }

    #[test]
    fn predictions_are_deduplicated_by_node() {
        // Children(...) and Dscts(...) loops predict syntactically
        // different but node-identical actions: one prediction surfaces.
        let mut synth = Synthesizer::new(SynthConfig::default(), scrape_trace(3, 5));
        let result = synth.synthesize();
        assert!(result.programs.len() >= 2, "ambiguity exists");
        assert_eq!(result.predictions.len(), 1);
    }
}
