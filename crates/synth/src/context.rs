//! Shared synthesis context: the trace plus memoized selector analyses and
//! the speculation memo tables.

use std::sync::Arc;
use std::sync::Mutex;

use webrobot_dom::{alternatives, AltConfig, Axis, FxHashMap, Path, PathId, PathInterner, PredId};
use webrobot_lang::{Statement, StatementInterner, StmtId, VarGen};
use webrobot_semantics::Trace;

use crate::antiunify::LoopSeed;
use crate::config::SynthConfig;

/// Memo key for [`anti_unify`](crate::anti_unify): the DOM indices the two
/// statements execute on plus the pair itself, **canonicalized and
/// interned** so alpha-variant pairs (the same rewrite reached through
/// different fresh variables) share one entry and the key hashes as four
/// machine words.
pub(crate) type AuKey = (usize, usize, StmtId, StmtId);

/// Memo key for one `(window, p)` speculation expansion (Alg. 2 inner
/// loop): the canonicalized window statements `S_i ·· S_j`, their
/// absolute slice starts in the trace, the in-window offset of the
/// anti-unified statement `S_p`, and the second-iteration counterpart
/// `S_q = S_{p+len}` (which sits *outside* the window) with its slice
/// start. Everything the expansion reads is a function of this key, the
/// append-only trace, and the fixed config — so sibling worklist items
/// whose windows coincide share one expansion. The window slices are
/// `Arc`s built once per `(i, j)` window: the `p` loop clones refcounts,
/// not allocations, and hashing/equality still go by slice content.
pub(crate) type SpecKey = (Arc<[StmtId]>, Arc<[usize]>, usize, StmtId, usize);

/// One cached speculation expansion: the rewrite statements one
/// `(window, p)` pair produced, each paired with its canonical id (so
/// replays dedup without re-canonicalizing). Statements are shared
/// `Arc`s — a replay clones refcounts, not trees.
pub(crate) type SpecBodies = Arc<Vec<(StmtId, Arc<Statement>)>>;

/// One way of writing an alternative selector as
/// `prefix · axis pred[index] · suffix` — the decomposition shape consumed
/// by anti-unification (Fig. 10 rule (4)) and parametrization (Fig. 11
/// rule (2)).
///
/// Paths and predicates are interned in the context's [`PathInterner`]:
/// the anti-unification hash-join compares decompositions by `Copy` ids
/// instead of re-hashing string-laden paths, and prefixes shared by many
/// alternatives are stored once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Decomp {
    pub prefix: PathId,
    pub axis: Axis,
    pub pred: PredId,
    pub suffix: PathId,
}

/// Mutable synthesis context: owns the growing [`Trace`], the fresh-variable
/// generator, and caches keyed by `(DOM index, recorded path)`.
///
/// The DOM trace is append-only, so cache entries stay valid as the
/// demonstration grows — this cache is a large part of what makes
/// incremental synthesis cheap.
#[derive(Debug)]
pub struct SynthContext {
    pub(crate) cfg: SynthConfig,
    pub(crate) trace: Trace,
    pub(crate) vargen: VarGen,
    /// Interner backing every path-keyed memo table and the [`Decomp`]
    /// ids. Append-only for the lifetime of the context, so `Copy` ids in
    /// long-lived cache entries never dangle.
    paths: PathInterner,
    /// Canonical-statement interner behind the same uncontended-mutex
    /// pattern as the validation cache: [`canon_id`](Self::canon_id)
    /// takes `&self` so read-only phases (validation) can intern too.
    stmts: Mutex<StatementInterner>,
    alt_cache: FxHashMap<(usize, PathId), Arc<Vec<Path>>>,
    decomp_cache: FxHashMap<(usize, PathId, usize), Arc<Vec<Decomp>>>,
    /// Anti-unification results per canonicalized statement pair. The same
    /// `(S_p, S_q)` pair is revisited by up to `max_window` enclosing
    /// windows (and again by every worklist item sharing the statements),
    /// so this table turns the inner loop of Alg. 2 into a lookup.
    antiunify_cache: FxHashMap<AuKey, Arc<Vec<LoopSeed>>>,
    /// Parametrization suffixes per `(DOM, recorded path, binding)`: the
    /// alternatives of the path that extend the binding, with the binding
    /// stripped. Variable-independent, so one entry serves every seed.
    suffix_cache: FxHashMap<(usize, PathId, PathId), Arc<Vec<Path>>>,
    /// Validation outcomes per `(canonicalized statement, start action,
    /// trace length)`: where the statement's simulated execution stops on
    /// `doms[start..len]` while staying consistent with the recorded
    /// actions (`None` = inconsistent somewhere). Execution is
    /// item-independent — only the boundary check of Alg. 3 is not — and
    /// sibling worklist items speculate the same rewrites over the same
    /// slices constantly, so this cache removes the dominant cost of the
    /// worklist loop. Interior-mutable because `validate` reads the
    /// context immutably; a `Mutex` rather than a `RefCell` so the whole
    /// context is `Send + Sync` (one synthesizer per shard thread — the
    /// lock is never contended, so it costs an uncontended atomic).
    validate_cache: Mutex<FxHashMap<(StmtId, usize, usize), Option<usize>>>,
    /// Speculation expansions per [`SpecKey`]: the raw rewrite bodies one
    /// `(window, p)` pair produced, before per-item dedup. Sibling
    /// worklist items routinely carry identical windows (they differ only
    /// in program prefix), so replaying the stored bodies skips the whole
    /// decompose → anti-unify → parametrize → cartesian pipeline. Only
    /// *complete* expansions are stored — a deadline-cut expansion is
    /// nondeterministic and must not be replayed.
    spec_cache: FxHashMap<SpecKey, SpecBodies>,
}

impl SynthContext {
    /// Creates a context over `trace`.
    pub fn new(cfg: SynthConfig, trace: Trace) -> SynthContext {
        SynthContext {
            cfg,
            trace,
            vargen: VarGen::new(),
            paths: PathInterner::new(),
            stmts: Mutex::new(StatementInterner::new()),
            alt_cache: FxHashMap::default(),
            decomp_cache: FxHashMap::default(),
            antiunify_cache: FxHashMap::default(),
            suffix_cache: FxHashMap::default(),
            validate_cache: Mutex::new(FxHashMap::default()),
            spec_cache: FxHashMap::default(),
        }
    }

    /// The interner backing [`Decomp`] ids and the path-keyed memo keys.
    pub(crate) fn paths(&self) -> &PathInterner {
        &self.paths
    }

    /// Canonical interned id for `stmt`: alpha-variant statements map to
    /// the same id, so id-keyed memo tables share entries across variants
    /// exactly as the owned canonicalized keys did.
    pub(crate) fn canon_id(&self, stmt: &Statement) -> StmtId {
        lock(&self.stmts).intern_canonical(stmt)
    }

    /// [`canon_id`](Self::canon_id) for statements carrying fresh binders
    /// (speculative rewrites): skips the raw→canonical memo write, which
    /// could never hit again under the freshly-renamed spelling.
    pub(crate) fn canon_id_transient(&self, stmt: &Statement) -> StmtId {
        lock(&self.stmts).intern_canonical_transient(stmt)
    }

    /// The demonstration being generalized.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Appends one observed action to the trace.
    ///
    /// Validation outcomes are keyed on the trace length (a statement
    /// that stopped exactly at the old frontier may continue on the
    /// grown trace), so the old generation of entries can never hit
    /// again — drop them instead of letting dead keys exhaust the memo
    /// capacity over a long session.
    pub(crate) fn observe(
        &mut self,
        action: webrobot_lang::Action,
        dom: std::sync::Arc<webrobot_dom::Dom>,
    ) {
        self.trace.push(action, dom);
        lock(&self.validate_cache).clear();
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    fn alt_config(&self) -> AltConfig {
        AltConfig {
            max_alternatives: self.cfg.max_alternatives,
            ..AltConfig::default()
        }
    }

    /// Alternative selectors for `path` on DOM `dom_idx` of the trace.
    ///
    /// Honors the *No selector* ablation: with `alternative_selectors`
    /// disabled only the recorded path itself is returned.
    pub(crate) fn alternatives(&mut self, dom_idx: usize, path: &Path) -> Arc<Vec<Path>> {
        let key = (dom_idx, self.paths.path(path));
        if let Some(hit) = self.alt_cache.get(&key) {
            return hit.clone();
        }
        let alts = if self.cfg.alternative_selectors {
            alternatives(&self.trace.doms()[dom_idx], path, &self.alt_config())
        } else if path.valid(&self.trace.doms()[dom_idx]) {
            vec![path.clone()]
        } else {
            Vec::new()
        };
        let rc = Arc::new(alts);
        self.alt_cache.insert(key, rc.clone());
        rc
    }

    /// All decompositions `prefix · axis pred[want_index] · suffix` of the
    /// alternatives of `path` on DOM `dom_idx` whose pivot step has index
    /// `want_index` (1 for first-iteration statements, 2 for
    /// second-iteration statements).
    pub(crate) fn decomps(
        &mut self,
        dom_idx: usize,
        path: &Path,
        want_index: usize,
    ) -> Arc<Vec<Decomp>> {
        let key = (dom_idx, self.paths.path(path), want_index);
        if let Some(hit) = self.decomp_cache.get(&key) {
            return hit.clone();
        }
        let alts = self.alternatives(dom_idx, path);
        let mut out = Vec::new();
        for alt in alts.iter() {
            let steps = alt.steps();
            for (k, step) in steps.iter().enumerate() {
                if step.index != want_index {
                    continue;
                }
                out.push(Decomp {
                    prefix: self.paths.path(&alt.prefix(k)),
                    axis: step.axis,
                    pred: self.paths.pred(&step.pred),
                    suffix: self.paths.path(&Path::new(steps[k + 1..].to_vec())),
                });
            }
        }
        // Same order as sorting the materialized paths by step count:
        // `path_len` reads through the interner.
        out.sort_by_key(|d| (self.paths.path_len(d.prefix), self.paths.path_len(d.suffix)));
        out.dedup();
        let rc = Arc::new(out);
        self.decomp_cache.insert(key, rc.clone());
        rc
    }

    /// Cached anti-unification seeds for a canonicalized pair, or `None`
    /// on a miss (and always when memoization is disabled).
    pub(crate) fn antiunify_hit(&self, key: &AuKey) -> Option<Arc<Vec<LoopSeed>>> {
        if !self.cfg.memoization {
            return None;
        }
        self.antiunify_cache.get(key).cloned()
    }

    /// Stores freshly computed anti-unification seeds, respecting the
    /// memo capacity (full table ⇒ results are recomputed, never wrong).
    pub(crate) fn antiunify_store(&mut self, key: AuKey, seeds: Arc<Vec<LoopSeed>>) {
        if self.cfg.memoization && self.antiunify_cache.len() < self.cfg.memo_capacity {
            self.antiunify_cache.insert(key, seeds);
        }
    }

    /// The suffixes `s` such that some alternative of `path` (on DOM
    /// `dom_idx`) equals `binding · s` — the variable-independent core of
    /// parametrization rule (2) of Fig. 11, memoized per
    /// `(dom_idx, path, binding)`.
    pub(crate) fn strip_suffixes(
        &mut self,
        dom_idx: usize,
        path: &Path,
        binding: &Path,
    ) -> Arc<Vec<Path>> {
        if self.cfg.memoization {
            let key = (dom_idx, self.paths.path(path), self.paths.path(binding));
            if let Some(hit) = self.suffix_cache.get(&key) {
                return hit.clone();
            }
            let rc = Arc::new(self.compute_suffixes(dom_idx, path, binding));
            if self.suffix_cache.len() < self.cfg.memo_capacity {
                self.suffix_cache.insert(key, rc.clone());
            }
            rc
        } else {
            Arc::new(self.compute_suffixes(dom_idx, path, binding))
        }
    }

    /// The memo key for one validation execution: the statement's
    /// canonical id (alpha-variants execute identically — speculation
    /// already computed the id for its own dedup and carries it on the
    /// rewrite) plus the slice `start..m` it runs against. `m` matters: a
    /// statement that stopped exactly at the old frontier may continue on
    /// a grown trace.
    ///
    /// `None` when this execution should not go through the memo table —
    /// memoization disabled, or the slice so short that running it is
    /// cheaper than the bookkeeping.
    pub(crate) fn validation_key(
        &self,
        cid: StmtId,
        start: usize,
        m: usize,
    ) -> Option<(StmtId, usize, usize)> {
        if !self.cfg.memoization || m - start < 4 {
            return None;
        }
        Some((cid, start, m))
    }

    /// Cached execution stop index for a [`validation_key`](Self::validation_key).
    pub(crate) fn validation_hit(&self, key: &(StmtId, usize, usize)) -> Option<Option<usize>> {
        lock(&self.validate_cache).get(key).copied()
    }

    /// Stores one validation execution outcome, respecting the capacity.
    pub(crate) fn validation_store(&self, key: (StmtId, usize, usize), end: Option<usize>) {
        let mut cache = lock(&self.validate_cache);
        if cache.len() < self.cfg.memo_capacity {
            cache.insert(key, end);
        }
    }

    /// Cached speculation bodies for one `(window, p)` expansion — each
    /// paired with its canonical id so replays dedup without
    /// re-canonicalizing — or `None` on a miss (and always when
    /// memoization is disabled).
    pub(crate) fn speculation_hit(&self, key: &SpecKey) -> Option<SpecBodies> {
        if !self.cfg.memoization {
            return None;
        }
        self.spec_cache.get(key).cloned()
    }

    /// Stores the bodies of one **complete** speculation expansion,
    /// respecting the memo capacity. Callers must not store expansions
    /// cut short by the deadline — replaying a partial enumeration would
    /// diverge from recomputation.
    pub(crate) fn speculation_store(&mut self, key: SpecKey, bodies: SpecBodies) {
        if self.cfg.memoization && self.spec_cache.len() < self.cfg.memo_capacity {
            self.spec_cache.insert(key, bodies);
        }
    }

    fn compute_suffixes(&mut self, dom_idx: usize, path: &Path, binding: &Path) -> Vec<Path> {
        let mut out: Vec<Path> = self
            .alternatives(dom_idx, path)
            .iter()
            .filter_map(|alt| alt.strip_prefix(binding))
            .collect();
        out.dedup();
        out
    }
}

/// Locks the validation memo. The mutex only guards a cache, so a
/// poisoned lock (a panic while a guard was held) still protects a
/// perfectly usable map — recover it instead of propagating the poison.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::{parse_html, Pred};

    fn ctx(cfg: SynthConfig) -> SynthContext {
        let dom = Arc::new(
            parse_html(
                "<html><body><div class='nav'></div>\
                 <div class='item'><h3>a</h3></div>\
                 <div class='item'><h3>b</h3></div></body></html>",
            )
            .unwrap(),
        );
        let trace = Trace::new(dom, Value::Object(vec![]));
        SynthContext::new(cfg, trace)
    }

    #[test]
    fn alternatives_respect_ablation() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut full = ctx(SynthConfig::default());
        assert!(full.alternatives(0, &path).len() > 1);
        let mut ablated = ctx(SynthConfig::no_selector());
        assert_eq!(ablated.alternatives(0, &path).as_slice(), &[path]);
    }

    #[test]
    fn decomps_filter_by_pivot_index() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let d1 = c.decomps(0, &path, 1);
        assert!(!d1.is_empty());
        assert!(d1.iter().all(|d| {
            // Reconstruct through the interner and verify pivot index.
            let mut p = c.paths().get_path(d.prefix).clone();
            p = p.join(webrobot_dom::Step {
                axis: d.axis,
                pred: c.paths().get_pred(d.pred).clone(),
                index: 1,
            });
            p.concat(c.paths().get_path(d.suffix))
                .valid(&c.trace().doms()[0])
        }));
        // The second item decomposes with pivot index 2 at the item step.
        let path2: Path = "/body[1]/div[3]/h3[1]".parse().unwrap();
        let d2 = c.decomps(0, &path2, 2);
        assert!(d2
            .iter()
            .any(|d| c.paths().get_pred(d.pred) == &Pred::with_attr("div", "class", "item")));
    }

    #[test]
    fn caches_are_hit() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let a = c.alternatives(0, &path);
        let b = c.alternatives(0, &path);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
