//! Shared synthesis context: the trace plus memoized selector analyses.

use std::collections::HashMap;
use std::rc::Rc;

use webrobot_dom::{alternatives, AltConfig, Axis, Path, Pred};
use webrobot_lang::VarGen;
use webrobot_semantics::Trace;

use crate::config::SynthConfig;

/// One way of writing an alternative selector as
/// `prefix · axis pred[index] · suffix` — the decomposition shape consumed
/// by anti-unification (Fig. 10 rule (4)) and parametrization (Fig. 11
/// rule (2)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Decomp {
    pub prefix: Path,
    pub axis: Axis,
    pub pred: Pred,
    pub suffix: Path,
}

/// Mutable synthesis context: owns the growing [`Trace`], the fresh-variable
/// generator, and caches keyed by `(DOM index, recorded path)`.
///
/// The DOM trace is append-only, so cache entries stay valid as the
/// demonstration grows — this cache is a large part of what makes
/// incremental synthesis cheap.
#[derive(Debug)]
pub struct SynthContext {
    pub(crate) cfg: SynthConfig,
    pub(crate) trace: Trace,
    pub(crate) vargen: VarGen,
    alt_cache: HashMap<(usize, Path), Rc<Vec<Path>>>,
    decomp_cache: HashMap<(usize, Path, usize), Rc<Vec<Decomp>>>,
}

impl SynthContext {
    /// Creates a context over `trace`.
    pub fn new(cfg: SynthConfig, trace: Trace) -> SynthContext {
        SynthContext {
            cfg,
            trace,
            vargen: VarGen::new(),
            alt_cache: HashMap::new(),
            decomp_cache: HashMap::new(),
        }
    }

    /// The demonstration being generalized.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    fn alt_config(&self) -> AltConfig {
        AltConfig {
            max_alternatives: self.cfg.max_alternatives,
            ..AltConfig::default()
        }
    }

    /// Alternative selectors for `path` on DOM `dom_idx` of the trace.
    ///
    /// Honors the *No selector* ablation: with `alternative_selectors`
    /// disabled only the recorded path itself is returned.
    pub(crate) fn alternatives(&mut self, dom_idx: usize, path: &Path) -> Rc<Vec<Path>> {
        let key = (dom_idx, path.clone());
        if let Some(hit) = self.alt_cache.get(&key) {
            return hit.clone();
        }
        let alts = if self.cfg.alternative_selectors {
            alternatives(&self.trace.doms()[dom_idx], path, &self.alt_config())
        } else if path.valid(&self.trace.doms()[dom_idx]) {
            vec![path.clone()]
        } else {
            Vec::new()
        };
        let rc = Rc::new(alts);
        self.alt_cache.insert(key, rc.clone());
        rc
    }

    /// All decompositions `prefix · axis pred[want_index] · suffix` of the
    /// alternatives of `path` on DOM `dom_idx` whose pivot step has index
    /// `want_index` (1 for first-iteration statements, 2 for
    /// second-iteration statements).
    pub(crate) fn decomps(
        &mut self,
        dom_idx: usize,
        path: &Path,
        want_index: usize,
    ) -> Rc<Vec<Decomp>> {
        let key = (dom_idx, path.clone(), want_index);
        if let Some(hit) = self.decomp_cache.get(&key) {
            return hit.clone();
        }
        let alts = self.alternatives(dom_idx, path);
        let mut out = Vec::new();
        for alt in alts.iter() {
            let steps = alt.steps();
            for (k, step) in steps.iter().enumerate() {
                if step.index != want_index {
                    continue;
                }
                out.push(Decomp {
                    prefix: alt.prefix(k),
                    axis: step.axis,
                    pred: step.pred.clone(),
                    suffix: Path::new(steps[k + 1..].to_vec()),
                });
            }
        }
        out.sort_by_key(|d| (d.prefix.len(), d.suffix.len()));
        out.dedup();
        let rc = Rc::new(out);
        self.decomp_cache.insert(key, rc.clone());
        rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;

    fn ctx(cfg: SynthConfig) -> SynthContext {
        let dom = Arc::new(
            parse_html(
                "<html><body><div class='nav'></div>\
                 <div class='item'><h3>a</h3></div>\
                 <div class='item'><h3>b</h3></div></body></html>",
            )
            .unwrap(),
        );
        let trace = Trace::new(dom, Value::Object(vec![]));
        SynthContext::new(cfg, trace)
    }

    #[test]
    fn alternatives_respect_ablation() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut full = ctx(SynthConfig::default());
        assert!(full.alternatives(0, &path).len() > 1);
        let mut ablated = ctx(SynthConfig::no_selector());
        assert_eq!(ablated.alternatives(0, &path).as_slice(), &[path]);
    }

    #[test]
    fn decomps_filter_by_pivot_index() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let d1 = c.decomps(0, &path, 1);
        assert!(!d1.is_empty());
        assert!(d1.iter().all(|d| {
            // Reconstruct and verify pivot index.
            let mut p = d.prefix.clone();
            p = p.join(webrobot_dom::Step {
                axis: d.axis,
                pred: d.pred.clone(),
                index: 1,
            });
            p.concat(&d.suffix).valid(&c.trace().doms()[0])
        }));
        // The second item decomposes with pivot index 2 at the item step.
        let path2: Path = "/body[1]/div[3]/h3[1]".parse().unwrap();
        let d2 = c.decomps(0, &path2, 2);
        assert!(d2
            .iter()
            .any(|d| d.pred == Pred::with_attr("div", "class", "item")));
    }

    #[test]
    fn caches_are_hit() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let a = c.alternatives(0, &path);
        let b = c.alternatives(0, &path);
        assert!(Rc::ptr_eq(&a, &b));
    }
}
