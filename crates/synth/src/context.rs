//! Shared synthesis context: the trace plus memoized selector analyses and
//! the speculation memo tables.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use webrobot_dom::{alternatives, AltConfig, Axis, Path, Pred};
use webrobot_lang::{Statement, VarGen};
use webrobot_semantics::Trace;

use crate::antiunify::LoopSeed;
use crate::config::SynthConfig;

/// Memo key for [`anti_unify`](crate::anti_unify): the DOM indices the two
/// statements execute on plus the pair itself, **canonicalized** so
/// alpha-variant pairs (the same rewrite reached through different fresh
/// variables) share one entry.
pub(crate) type AuKey = (usize, usize, Statement, Statement);

/// One way of writing an alternative selector as
/// `prefix · axis pred[index] · suffix` — the decomposition shape consumed
/// by anti-unification (Fig. 10 rule (4)) and parametrization (Fig. 11
/// rule (2)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Decomp {
    pub prefix: Path,
    pub axis: Axis,
    pub pred: Pred,
    pub suffix: Path,
}

/// Mutable synthesis context: owns the growing [`Trace`], the fresh-variable
/// generator, and caches keyed by `(DOM index, recorded path)`.
///
/// The DOM trace is append-only, so cache entries stay valid as the
/// demonstration grows — this cache is a large part of what makes
/// incremental synthesis cheap.
#[derive(Debug)]
pub struct SynthContext {
    pub(crate) cfg: SynthConfig,
    pub(crate) trace: Trace,
    pub(crate) vargen: VarGen,
    alt_cache: HashMap<(usize, Path), Arc<Vec<Path>>>,
    decomp_cache: HashMap<(usize, Path, usize), Arc<Vec<Decomp>>>,
    /// Anti-unification results per canonicalized statement pair. The same
    /// `(S_p, S_q)` pair is revisited by up to `max_window` enclosing
    /// windows (and again by every worklist item sharing the statements),
    /// so this table turns the inner loop of Alg. 2 into a lookup.
    antiunify_cache: HashMap<AuKey, Arc<Vec<LoopSeed>>>,
    /// Parametrization suffixes per `(DOM, recorded path, binding)`: the
    /// alternatives of the path that extend the binding, with the binding
    /// stripped. Variable-independent, so one entry serves every seed.
    suffix_cache: HashMap<(usize, Path, Path), Arc<Vec<Path>>>,
    /// Validation outcomes per `(canonicalized statement, start action,
    /// trace length)`: where the statement's simulated execution stops on
    /// `doms[start..len]` while staying consistent with the recorded
    /// actions (`None` = inconsistent somewhere). Execution is
    /// item-independent — only the boundary check of Alg. 3 is not — and
    /// sibling worklist items speculate the same rewrites over the same
    /// slices constantly, so this cache removes the dominant cost of the
    /// worklist loop. Interior-mutable because `validate` reads the
    /// context immutably; a `Mutex` rather than a `RefCell` so the whole
    /// context is `Send + Sync` (one synthesizer per shard thread — the
    /// lock is never contended, so it costs an uncontended atomic).
    validate_cache: Mutex<HashMap<(Statement, usize, usize), Option<usize>>>,
}

impl SynthContext {
    /// Creates a context over `trace`.
    pub fn new(cfg: SynthConfig, trace: Trace) -> SynthContext {
        SynthContext {
            cfg,
            trace,
            vargen: VarGen::new(),
            alt_cache: HashMap::new(),
            decomp_cache: HashMap::new(),
            antiunify_cache: HashMap::new(),
            suffix_cache: HashMap::new(),
            validate_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The demonstration being generalized.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Appends one observed action to the trace.
    ///
    /// Validation outcomes are keyed on the trace length (a statement
    /// that stopped exactly at the old frontier may continue on the
    /// grown trace), so the old generation of entries can never hit
    /// again — drop them instead of letting dead keys exhaust the memo
    /// capacity over a long session.
    pub(crate) fn observe(
        &mut self,
        action: webrobot_lang::Action,
        dom: std::sync::Arc<webrobot_dom::Dom>,
    ) {
        self.trace.push(action, dom);
        lock(&self.validate_cache).clear();
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    fn alt_config(&self) -> AltConfig {
        AltConfig {
            max_alternatives: self.cfg.max_alternatives,
            ..AltConfig::default()
        }
    }

    /// Alternative selectors for `path` on DOM `dom_idx` of the trace.
    ///
    /// Honors the *No selector* ablation: with `alternative_selectors`
    /// disabled only the recorded path itself is returned.
    pub(crate) fn alternatives(&mut self, dom_idx: usize, path: &Path) -> Arc<Vec<Path>> {
        let key = (dom_idx, path.clone());
        if let Some(hit) = self.alt_cache.get(&key) {
            return hit.clone();
        }
        let alts = if self.cfg.alternative_selectors {
            alternatives(&self.trace.doms()[dom_idx], path, &self.alt_config())
        } else if path.valid(&self.trace.doms()[dom_idx]) {
            vec![path.clone()]
        } else {
            Vec::new()
        };
        let rc = Arc::new(alts);
        self.alt_cache.insert(key, rc.clone());
        rc
    }

    /// All decompositions `prefix · axis pred[want_index] · suffix` of the
    /// alternatives of `path` on DOM `dom_idx` whose pivot step has index
    /// `want_index` (1 for first-iteration statements, 2 for
    /// second-iteration statements).
    pub(crate) fn decomps(
        &mut self,
        dom_idx: usize,
        path: &Path,
        want_index: usize,
    ) -> Arc<Vec<Decomp>> {
        let key = (dom_idx, path.clone(), want_index);
        if let Some(hit) = self.decomp_cache.get(&key) {
            return hit.clone();
        }
        let alts = self.alternatives(dom_idx, path);
        let mut out = Vec::new();
        for alt in alts.iter() {
            let steps = alt.steps();
            for (k, step) in steps.iter().enumerate() {
                if step.index != want_index {
                    continue;
                }
                out.push(Decomp {
                    prefix: alt.prefix(k),
                    axis: step.axis,
                    pred: step.pred.clone(),
                    suffix: Path::new(steps[k + 1..].to_vec()),
                });
            }
        }
        out.sort_by_key(|d| (d.prefix.len(), d.suffix.len()));
        out.dedup();
        let rc = Arc::new(out);
        self.decomp_cache.insert(key, rc.clone());
        rc
    }

    /// Cached anti-unification seeds for a canonicalized pair, or `None`
    /// on a miss (and always when memoization is disabled).
    pub(crate) fn antiunify_hit(&self, key: &AuKey) -> Option<Arc<Vec<LoopSeed>>> {
        if !self.cfg.memoization {
            return None;
        }
        self.antiunify_cache.get(key).cloned()
    }

    /// Stores freshly computed anti-unification seeds, respecting the
    /// memo capacity (full table ⇒ results are recomputed, never wrong).
    pub(crate) fn antiunify_store(&mut self, key: AuKey, seeds: Arc<Vec<LoopSeed>>) {
        if self.cfg.memoization && self.antiunify_cache.len() < self.cfg.memo_capacity {
            self.antiunify_cache.insert(key, seeds);
        }
    }

    /// The suffixes `s` such that some alternative of `path` (on DOM
    /// `dom_idx`) equals `binding · s` — the variable-independent core of
    /// parametrization rule (2) of Fig. 11, memoized per
    /// `(dom_idx, path, binding)`.
    pub(crate) fn strip_suffixes(
        &mut self,
        dom_idx: usize,
        path: &Path,
        binding: &Path,
    ) -> Arc<Vec<Path>> {
        if self.cfg.memoization {
            let key = (dom_idx, path.clone(), binding.clone());
            if let Some(hit) = self.suffix_cache.get(&key) {
                return hit.clone();
            }
            let rc = Arc::new(self.compute_suffixes(dom_idx, path, binding));
            if self.suffix_cache.len() < self.cfg.memo_capacity {
                self.suffix_cache.insert(key, rc.clone());
            }
            rc
        } else {
            Arc::new(self.compute_suffixes(dom_idx, path, binding))
        }
    }

    /// The memo key for one validation execution: canonicalized statement
    /// (alpha-variants execute identically) plus the slice `start..m` it
    /// runs against. `m` matters: a statement that stopped exactly at the
    /// old frontier may continue on a grown trace.
    ///
    /// `None` when this execution should not go through the memo table —
    /// memoization disabled, or the slice so short that running it is
    /// cheaper than canonicalize-and-hash bookkeeping.
    pub(crate) fn validation_key(
        &self,
        stmt: &Statement,
        start: usize,
        m: usize,
    ) -> Option<(Statement, usize, usize)> {
        if !self.cfg.memoization || m - start < 4 {
            return None;
        }
        Some((stmt.canonicalize(), start, m))
    }

    /// Cached execution stop index for a [`validation_key`](Self::validation_key).
    pub(crate) fn validation_hit(&self, key: &(Statement, usize, usize)) -> Option<Option<usize>> {
        lock(&self.validate_cache).get(key).copied()
    }

    /// Stores one validation execution outcome, respecting the capacity.
    pub(crate) fn validation_store(&self, key: (Statement, usize, usize), end: Option<usize>) {
        let mut cache = lock(&self.validate_cache);
        if cache.len() < self.cfg.memo_capacity {
            cache.insert(key, end);
        }
    }

    fn compute_suffixes(&mut self, dom_idx: usize, path: &Path, binding: &Path) -> Vec<Path> {
        let mut out: Vec<Path> = self
            .alternatives(dom_idx, path)
            .iter()
            .filter_map(|alt| alt.strip_prefix(binding))
            .collect();
        out.dedup();
        out
    }
}

/// Locks the validation memo. The mutex only guards a cache, so a
/// poisoned lock (a panic while a guard was held) still protects a
/// perfectly usable map — recover it instead of propagating the poison.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;

    fn ctx(cfg: SynthConfig) -> SynthContext {
        let dom = Arc::new(
            parse_html(
                "<html><body><div class='nav'></div>\
                 <div class='item'><h3>a</h3></div>\
                 <div class='item'><h3>b</h3></div></body></html>",
            )
            .unwrap(),
        );
        let trace = Trace::new(dom, Value::Object(vec![]));
        SynthContext::new(cfg, trace)
    }

    #[test]
    fn alternatives_respect_ablation() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut full = ctx(SynthConfig::default());
        assert!(full.alternatives(0, &path).len() > 1);
        let mut ablated = ctx(SynthConfig::no_selector());
        assert_eq!(ablated.alternatives(0, &path).as_slice(), &[path]);
    }

    #[test]
    fn decomps_filter_by_pivot_index() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let d1 = c.decomps(0, &path, 1);
        assert!(!d1.is_empty());
        assert!(d1.iter().all(|d| {
            // Reconstruct and verify pivot index.
            let mut p = d.prefix.clone();
            p = p.join(webrobot_dom::Step {
                axis: d.axis,
                pred: d.pred.clone(),
                index: 1,
            });
            p.concat(&d.suffix).valid(&c.trace().doms()[0])
        }));
        // The second item decomposes with pivot index 2 at the item step.
        let path2: Path = "/body[1]/div[3]/h3[1]".parse().unwrap();
        let d2 = c.decomps(0, &path2, 2);
        assert!(d2
            .iter()
            .any(|d| d.pred == Pred::with_attr("div", "class", "item")));
    }

    #[test]
    fn caches_are_hit() {
        let path: Path = "/body[1]/div[2]/h3[1]".parse().unwrap();
        let mut c = ctx(SynthConfig::default());
        let a = c.alternatives(0, &path);
        let b = c.alternatives(0, &path);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
