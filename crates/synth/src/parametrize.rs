//! Parametrization (paper Fig. 11): rewriting the remaining statements of a
//! speculated first iteration against the loop variable's first-iteration
//! binding.

use webrobot_data::ValuePath;
use webrobot_dom::Path;
use webrobot_lang::{SelVar, Selector, Statement, ValuePathExpr, VpVar};

use crate::context::SynthContext;

/// All parametrizations of `stmt` with respect to the selector binding
/// `var ↦ binding` (the first element of the speculated collection).
///
/// Always includes the identity (Fig. 11 rules (1)/(3): a statement inside
/// a loop need not use the loop variable). A selector is parametrized when
/// one of its alternatives (on the DOM of the statement's first action,
/// `dom_idx`) extends `binding`: the alternative `binding · suffix` becomes
/// `var · suffix` (rules (2)/(4)–(6)).
pub(crate) fn parametrize_sel(
    stmt: &Statement,
    var: SelVar,
    binding: &Path,
    dom_idx: usize,
    ctx: &mut SynthContext,
) -> Vec<Statement> {
    let mut out = vec![stmt.clone()];
    match stmt {
        Statement::Click(s)
        | Statement::ScrapeText(s)
        | Statement::ScrapeLink(s)
        | Statement::Download(s)
        | Statement::SendKeys(s, _)
        | Statement::EnterData(s, _) => {
            for replacement in selector_rewrites(s, var, binding, dom_idx, ctx) {
                out.push(replace_selector(stmt, replacement));
            }
        }
        Statement::ForeachSel(l) => {
            // Rules (4)–(6): parametrize the collection base.
            for replacement in selector_rewrites(&l.list.base, var, binding, dom_idx, ctx) {
                let mut new_loop = l.clone();
                new_loop.list.base = replacement;
                out.push(Statement::ForeachSel(new_loop));
            }
        }
        // Fig. 11 gives no rules descending into value-path loops or while
        // loops; they participate as-is (identity).
        Statement::ForeachVal(_)
        | Statement::While(_)
        | Statement::GoBack
        | Statement::ExtractUrl => {}
    }
    out.dedup();
    out
}

/// Variable-based rewrites of one concrete selector. The suffix scan over
/// the selector's alternatives is variable-independent and memoized in
/// `ctx` (`strip_suffixes`), so every seed sharing a binding reuses it.
fn selector_rewrites(
    sel: &Selector,
    var: SelVar,
    binding: &Path,
    dom_idx: usize,
    ctx: &mut SynthContext,
) -> Vec<Selector> {
    let Some(path) = sel.as_concrete() else {
        return Vec::new();
    };
    let path = path.clone();
    ctx.strip_suffixes(dom_idx, &path, binding)
        .iter()
        .map(|suffix| Selector::var_path(var, suffix.clone()))
        .collect()
}

fn replace_selector(stmt: &Statement, sel: Selector) -> Statement {
    match stmt {
        Statement::Click(_) => Statement::Click(sel),
        Statement::ScrapeText(_) => Statement::ScrapeText(sel),
        Statement::ScrapeLink(_) => Statement::ScrapeLink(sel),
        Statement::Download(_) => Statement::Download(sel),
        Statement::SendKeys(_, s) => Statement::SendKeys(sel, s.clone()),
        Statement::EnterData(_, v) => Statement::EnterData(sel, v.clone()),
        other => other.clone(),
    }
}

/// All parametrizations of `stmt` with respect to the value-path binding
/// `var ↦ binding` (the first element of the speculated `ValuePaths`
/// collection). Includes the identity.
pub(crate) fn parametrize_vp(stmt: &Statement, var: VpVar, binding: &ValuePath) -> Vec<Statement> {
    let mut out = vec![stmt.clone()];
    match stmt {
        Statement::EnterData(sel, vp) => {
            if let Some(concrete) = vp.as_concrete() {
                if let Some(suffix) = concrete.strip_prefix(binding) {
                    out.push(Statement::EnterData(
                        sel.clone(),
                        ValuePathExpr::var_path(var, suffix),
                    ));
                }
            }
        }
        Statement::ForeachVal(l) => {
            if let Some(concrete) = l.list.array.as_concrete() {
                if let Some(suffix) = concrete.strip_prefix(binding) {
                    let mut new_loop = l.clone();
                    new_loop.list.array = ValuePathExpr::var_path(var, suffix);
                    out.push(Statement::ForeachVal(new_loop));
                }
            }
        }
        _ => {}
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use std::sync::Arc;
    use webrobot_data::{PathSeg, Value};
    use webrobot_dom::parse_html;
    use webrobot_semantics::Trace;

    fn ctx() -> SynthContext {
        let dom = Arc::new(
            parse_html(
                "<html><body>\
                 <div class='item'><h3>a</h3><span class='ph'>1</span></div>\
                 <div class='item'><h3>b</h3><span class='ph'>2</span></div>\
                 </body></html>",
            )
            .unwrap(),
        );
        let trace = Trace::new(dom, Value::Object(vec![]));
        SynthContext::new(SynthConfig::default(), trace)
    }

    #[test]
    fn identity_is_always_first() {
        let mut c = ctx();
        let stmt = Statement::GoBack;
        let binding: Path = "//div[@class='item'][1]".parse().unwrap();
        let outs = parametrize_sel(&stmt, SelVar(0), &binding, 0, &mut c);
        assert_eq!(outs, vec![Statement::GoBack]);
    }

    #[test]
    fn sibling_field_is_parametrized() {
        let mut c = ctx();
        // The phone span of item 1, recorded as an absolute path.
        let stmt =
            Statement::ScrapeText(Selector::rooted("/body[1]/div[1]/span[1]".parse().unwrap()));
        let binding: Path = "//div[@class='item'][1]".parse().unwrap();
        let outs = parametrize_sel(&stmt, SelVar(3), &binding, 0, &mut c);
        assert!(outs.len() > 1);
        let rendered: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("%r3//span[@class='ph'][1]") || s.contains("%r3/span[1]")),
            "{rendered:?}"
        );
    }

    #[test]
    fn unrelated_selector_only_gets_identity() {
        let mut c = ctx();
        let stmt = Statement::Click(Selector::rooted("/body[1]".parse().unwrap()));
        let binding: Path = "//div[@class='item'][1]".parse().unwrap();
        let outs = parametrize_sel(&stmt, SelVar(0), &binding, 0, &mut c);
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn vp_parametrization_strips_prefix() {
        let binding = ValuePath::new(vec![PathSeg::key("rows"), PathSeg::Index(1)]);
        let concrete = ValuePath::new(vec![
            PathSeg::key("rows"),
            PathSeg::Index(1),
            PathSeg::key("name"),
        ]);
        let stmt = Statement::EnterData(
            Selector::rooted("/body[1]".parse().unwrap()),
            ValuePathExpr::input(concrete),
        );
        let outs = parametrize_vp(&stmt, VpVar(5), &binding);
        assert_eq!(outs.len(), 2);
        assert!(outs[1].to_string().contains("%v5[name]"));
    }

    #[test]
    fn vp_parametrization_ignores_unrelated_paths() {
        let binding = ValuePath::new(vec![PathSeg::key("rows"), PathSeg::Index(1)]);
        let stmt = Statement::EnterData(
            Selector::rooted("/body[1]".parse().unwrap()),
            ValuePathExpr::input(ValuePath::new(vec![PathSeg::key("other")])),
        );
        assert_eq!(parametrize_vp(&stmt, VpVar(0), &binding).len(), 1);
    }
}
