//! The `Speculate` procedure (paper Alg. 2): generating speculative
//! rewrites from the first two iterations of would-be loops.

use std::mem::discriminant;
use std::sync::Arc;
use std::time::Instant;

use webrobot_dom::FxHashSet;
use webrobot_lang::{ForeachSel, ForeachVal, Statement, StmtId, While};

use crate::antiunify::{anti_unify, LoopSeed};
use crate::context::SynthContext;
use crate::item::Item;
use crate::parametrize::{parametrize_sel, parametrize_vp};

/// A speculative rewrite `(S′, S_i, S_j)`: `stmt` is a loop whose *first
/// iteration* reproduces statements `i..=j` of the item it was speculated
/// from. Whether it is a *true* rewrite (covers more than that iteration)
/// is decided by [`validate`](crate::validate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SRewrite {
    /// The speculated loop statement. Shared, not owned: a speculation-cache
    /// replay hands the same statement to every sibling item (binder names
    /// are observationally irrelevant — predictions are actions and every
    /// ranking/dedup key is alpha-invariant — so replays clone a refcount,
    /// not a statement tree).
    pub stmt: Arc<Statement>,
    /// Start of the first iteration (statement index, 0-based).
    pub i: usize,
    /// End of the first iteration (inclusive).
    pub j: usize,
    /// Canonical interned id of `stmt`, computed where the rewrite was
    /// produced (dedup already needs it there). Validation keys its memo
    /// table on this id; carrying it saves re-canonicalizing every
    /// rewrite — which, with freshened binders on cache replays, would
    /// never hit an interner fast path.
    pub(crate) cid: StmtId,
}

/// Runs Alg. 2 on `item`, producing s-rewrites for selector loops,
/// value-path loops and while loops.
///
/// `deadline` aborts the (cubic) enumeration early; partial results are
/// returned. Results are deduplicated up to alpha-equivalence.
pub fn speculate(item: &Item, ctx: &mut SynthContext, deadline: Instant) -> Vec<SRewrite> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<(StmtId, usize, usize)> = FxHashSet::default();
    speculate_foreach(item, ctx, deadline, &mut out, &mut seen);
    speculate_while(item, ctx, &mut out, &mut seen);
    out
}

/// Alpha-equivalence dedup keyed on the context's canonical-statement
/// interner: one canonicalize-and-hash per distinct statement for the
/// whole synthesis run, instead of one per pushed rewrite.
fn push_unique(
    out: &mut Vec<SRewrite>,
    seen: &mut FxHashSet<(StmtId, usize, usize)>,
    ctx: &SynthContext,
    stmt: Statement,
    i: usize,
    j: usize,
) {
    let cid = ctx.canon_id_transient(&stmt);
    if seen.insert((cid, i, j)) {
        out.push(SRewrite {
            stmt: Arc::new(stmt),
            i,
            j,
            cid,
        });
    }
}

/// Lines 2–13 of Alg. 2: windows `[S_i ·· S_j]` as first iterations, with
/// the anti-unified pair `(S_p, S_q)`, `q = p + window length`.
///
/// With `window_pruning` enabled, a per-shift "kind run-length" table
/// (`runs[len-1][t]` = how many consecutive positions from `t` have
/// `kind(S_t) == kind(S_{t+len})`) bounds the inner `p` loop up front:
/// windows whose statement-kind sequences cannot start a second iteration
/// are skipped without entering the loop at all. The enumeration order —
/// and therefore every downstream tie-break — is unchanged.
fn speculate_foreach(
    item: &Item,
    ctx: &mut SynthContext,
    deadline: Instant,
    out: &mut Vec<SRewrite>,
    seen: &mut FxHashSet<(StmtId, usize, usize)>,
) {
    let stmts = item.statements();
    let l = stmts.len();
    let max_w = ctx.cfg.max_window;
    // Canonical ids for the whole item up front: they key both the
    // per-item dedup and the cross-item speculation cache below.
    let canon: Vec<StmtId> = stmts.iter().map(|s| ctx.canon_id(s)).collect();
    let runs: Option<Vec<Vec<u32>>> = ctx.cfg.window_pruning.then(|| {
        (1..=max_w)
            .map(|len| {
                let mut run = vec![0u32; l];
                for t in (0..l).rev() {
                    if t + len < l && discriminant(&stmts[t]) == discriminant(&stmts[t + len]) {
                        run[t] = run.get(t + 1).copied().unwrap_or(0) + 1;
                    }
                }
                run
            })
            .collect()
    });
    for i in 0..l {
        for len in 1..=max_w {
            let j = i + len - 1;
            if j >= l {
                break;
            }
            // p walks the window; q is its second-iteration counterpart.
            // If the statement kinds at (i+t, i+len+t) diverge for some t,
            // no p ≥ i+t can belong to a real second iteration: stop.
            let p_end = match &runs {
                Some(r) => {
                    let n = r[len - 1][i] as usize;
                    if n == 0 {
                        continue;
                    }
                    j.min(i + n - 1)
                }
                None => j,
            };
            if Instant::now() > deadline {
                return;
            }
            // The window half of the speculation-cache key, built once per
            // `(i, j)`: the `p` loop below only bumps refcounts.
            let window = (ctx.cfg.memoization && i + len < l).then(|| {
                (
                    Arc::<[StmtId]>::from(&canon[i..=j]),
                    (i..=j)
                        .map(|k| item.slice_start(k))
                        .collect::<Arc<[usize]>>(),
                )
            });
            for p in i..=p_end {
                let q = p + len;
                if q >= l {
                    break;
                }
                if discriminant(&stmts[p]) != discriminant(&stmts[q]) {
                    break;
                }
                // Cross-item reuse: sibling worklist items routinely carry
                // this exact window (they differ only in consumed prefix),
                // so the expansion is keyed by window content — not by
                // item — and a hit replays the shared statements verbatim.
                let key = window.as_ref().map(|(ids, starts)| {
                    (
                        ids.clone(),
                        starts.clone(),
                        p - i,
                        canon[q],
                        item.slice_start(q),
                    )
                });
                if let Some(key) = &key {
                    if let Some(hit) = ctx.speculation_hit(key) {
                        // Dedup against the stored canonical id; survivors
                        // are refcount bumps of the stored statements.
                        for (cid, stmt) in hit.iter() {
                            if seen.insert((*cid, i, j)) {
                                out.push(SRewrite {
                                    stmt: stmt.clone(),
                                    i,
                                    j,
                                    cid: *cid,
                                });
                            }
                        }
                        continue;
                    }
                }
                let seeds = anti_unify(
                    &stmts[p],
                    &stmts[q],
                    item.slice_start(p),
                    item.slice_start(q),
                    ctx,
                );
                let mut raw = Vec::new();
                let mut complete = true;
                for seed in seeds {
                    complete &= expand_seed(item, ctx, seed, i, j, p, deadline, &mut raw);
                }
                // Canonicalize once per raw statement: the id keys both
                // this item's dedup and the cached entry replays read.
                let mut entries: Vec<(StmtId, Arc<Statement>)> = Vec::with_capacity(raw.len());
                for stmt in raw {
                    let cid = ctx.canon_id_transient(&stmt);
                    let stmt = Arc::new(stmt);
                    if seen.insert((cid, i, j)) {
                        out.push(SRewrite {
                            stmt: stmt.clone(),
                            i,
                            j,
                            cid,
                        });
                    }
                    entries.push((cid, stmt));
                }
                // Deadline-cut expansions are nondeterministic: storing
                // one would replay the truncation forever.
                if complete {
                    if let Some(key) = key {
                        ctx.speculation_store(key, Arc::new(entries));
                    }
                }
            }
        }
    }
}

/// Lines 4–7 / 10–13 of Alg. 2: build every loop body from the Cartesian
/// product of per-statement parametrizations (capped).
///
/// `deadline` also bounds the product expansion itself: a seed over a wide
/// window with many parametrizations per slot can be expensive even under
/// the `max_bodies_per_seed` cap, and previously ran to completion no
/// matter how late it was. Partial results are returned — only complete
/// loop bodies, never truncated ones.
///
/// Pushes the raw (pre-dedup) loop statements into `raw` and returns
/// whether the expansion ran to completion — `false` exactly when the
/// deadline cut the product, in which case the caller must not memoize
/// the result.
#[allow(clippy::too_many_arguments)]
fn expand_seed(
    item: &Item,
    ctx: &mut SynthContext,
    seed: LoopSeed,
    i: usize,
    j: usize,
    p: usize,
    deadline: Instant,
    raw: &mut Vec<Statement>,
) -> bool {
    let stmts = item.statements();
    // Per-position choices: the template at p, parametrizations elsewhere.
    let mut choices: Vec<Vec<Statement>> = Vec::with_capacity(j - i + 1);
    match &seed {
        LoopSeed::Sel {
            template,
            var,
            list,
        } => {
            let Some(base) = list.base.as_concrete() else {
                return true;
            };
            let first = list.element(base, 1);
            for (k, stmt) in stmts.iter().enumerate().take(j + 1).skip(i) {
                if k == p {
                    choices.push(vec![template.clone()]);
                } else {
                    choices.push(parametrize_sel(
                        stmt,
                        *var,
                        &first,
                        item.slice_start(k),
                        ctx,
                    ));
                }
            }
        }
        LoopSeed::Vp {
            template,
            var,
            list,
        } => {
            let Some(array) = list.array.as_concrete() else {
                return true;
            };
            let first = list.element(array, 1);
            for (k, stmt) in stmts.iter().enumerate().take(j + 1).skip(i) {
                if k == p {
                    choices.push(vec![template.clone()]);
                } else {
                    choices.push(parametrize_vp(stmt, *var, &first));
                }
            }
        }
    }
    let cap = ctx.cfg.max_bodies_per_seed;
    let (bodies, complete) = cartesian(&choices, cap, deadline);
    for body in bodies {
        let stmt = match &seed {
            LoopSeed::Sel { var, list, .. } => Statement::ForeachSel(ForeachSel {
                var: *var,
                list: list.clone(),
                body,
            }),
            LoopSeed::Vp { var, list, .. } => Statement::ForeachVal(ForeachVal {
                var: *var,
                list: list.clone(),
                body,
            }),
        };
        raw.push(stmt);
    }
    complete
}

/// Odometer-style Cartesian product: the first `cap` complete bodies in
/// lexicographic slot order (last slot varying fastest), stopping early —
/// with only whole bodies emitted — once `deadline` passes.
///
/// The flag is `true` iff the enumeration was *deterministic*: it ran to
/// the end or to the (configured, reproducible) cap. A deadline cut
/// returns `false` — that prefix depends on wall-clock time and must not
/// be memoized.
fn cartesian(
    choices: &[Vec<Statement>],
    cap: usize,
    deadline: Instant,
) -> (Vec<Vec<Statement>>, bool) {
    if choices.iter().any(Vec::is_empty) {
        return (Vec::new(), true);
    }
    let mut out: Vec<Vec<Statement>> = Vec::new();
    let mut odometer = vec![0usize; choices.len()];
    loop {
        out.push(
            choices
                .iter()
                .zip(&odometer)
                .map(|(slot, &k)| slot[k].clone())
                .collect(),
        );
        if out.len() >= cap {
            return (out, true);
        }
        if Instant::now() > deadline {
            return (out, false);
        }
        // Increment, last slot fastest; full wrap-around means done.
        let mut slot = choices.len();
        loop {
            let Some(s) = slot.checked_sub(1) else {
                return (out, true);
            };
            slot = s;
            odometer[slot] += 1;
            if odometer[slot] < choices[slot].len() {
                break;
            }
            odometer[slot] = 0;
        }
    }
}

/// Lines 14–16 of Alg. 2: while loops. The first iteration is
/// `S_i ·· S_p` where `S_p` is a `Click`; its counterpart `S_q` (with
/// `p − i + 1 = q − p`) must be the *same* click.
fn speculate_while(
    item: &Item,
    ctx: &mut SynthContext,
    out: &mut Vec<SRewrite>,
    seen: &mut FxHashSet<(StmtId, usize, usize)>,
) {
    let stmts = item.statements();
    let l = stmts.len();
    let max_w = ctx.cfg.max_window;
    for p in 1..l {
        let Statement::Click(click) = &stmts[p] else {
            continue;
        };
        if click.as_concrete().is_none() {
            continue;
        }
        // Body length p − i ranges 1..=max_w (paper requires i < p).
        for body_len in 1..=max_w.min(p) {
            let i = p - body_len;
            let q = 2 * p - i + 1;
            if q >= l {
                continue;
            }
            if stmts[q] != stmts[p] {
                continue;
            }
            let stmt = Statement::While(While {
                body: stmts[i..p].to_vec(),
                click: click.clone(),
            });
            push_unique(out, seen, ctx, stmt, i, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use std::sync::Arc;
    use std::time::Duration;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;
    use webrobot_lang::Action;
    use webrobot_semantics::Trace;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    /// Trace scraping two fields of the first two of three items.
    fn two_field_trace() -> Trace {
        let dom = Arc::new(
            parse_html(
                "<html><body>\
                 <div class='item'><h3>a</h3><span class='ph'>1</span></div>\
                 <div class='item'><h3>b</h3><span class='ph'>2</span></div>\
                 <div class='item'><h3>c</h3><span class='ph'>3</span></div>\
                 </body></html>",
            )
            .unwrap(),
        );
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for i in 1..=2 {
            t.push(
                Action::ScrapeText(format!("/body[1]/div[{i}]/h3[1]").parse().unwrap()),
                dom.clone(),
            );
            t.push(
                Action::ScrapeText(format!("/body[1]/div[{i}]/span[1]").parse().unwrap()),
                dom.clone(),
            );
        }
        t
    }

    #[test]
    fn speculates_two_statement_loop_body() {
        let trace = two_field_trace();
        let mut ctx = SynthContext::new(SynthConfig::default(), trace.clone());
        let item = Item::initial(&trace);
        let srs = speculate(&item, &mut ctx, far_deadline());
        // Look for a loop whose first iteration is statements 0..=1 and
        // whose body scrapes both fields through the loop variable.
        let found = srs.iter().any(|sr| {
            sr.i == 0
                && sr.j == 1
                && matches!(&*sr.stmt, Statement::ForeachSel(l)
                    if l.body.len() == 2
                    && l.body.iter().all(|s| s.selector().is_some_and(|sel| sel.base_var().is_some())))
        });
        assert!(found, "wanted a fully parametrized 2-stmt loop body");
    }

    #[test]
    fn while_rule_requires_equal_clicks() {
        // [Scrape, Click(next), Scrape, Click(next)] → while {Scrape; Click}.
        let dom =
            Arc::new(parse_html("<html><h3>t</h3><span class='next'>&gt;</span></html>").unwrap());
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for _ in 0..2 {
            t.push(Action::ScrapeText("/h3[1]".parse().unwrap()), dom.clone());
            t.push(Action::Click("/span[1]".parse().unwrap()), dom.clone());
        }
        let mut ctx = SynthContext::new(SynthConfig::default(), t.clone());
        let item = Item::initial(&t);
        let srs = speculate(&item, &mut ctx, far_deadline());
        let whiles: Vec<_> = srs
            .iter()
            .filter(|sr| matches!(*sr.stmt, Statement::While(_)))
            .collect();
        assert_eq!(whiles.len(), 1);
        assert_eq!((whiles[0].i, whiles[0].j), (0, 1));
    }

    #[test]
    fn kind_mismatch_windows_are_speculated_but_rejected() {
        // [Scrape a1, GoBack, Scrape a2, Scrape a3]: a window (i=0, j=1)
        // with pair (a1, a2) IS speculated — s-rewrites over-approximate —
        // but its body [Scrape(ϱ…); GoBack] cannot reproduce the recorded
        // slice, so validation filters it out (speculate-and-validate).
        let dom = Arc::new(parse_html("<html><a>1</a><a>2</a><a>3</a></html>").unwrap());
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        t.push(Action::ScrapeText("/a[1]".parse().unwrap()), dom.clone());
        t.push(Action::GoBack, dom.clone());
        t.push(Action::ScrapeText("/a[2]".parse().unwrap()), dom.clone());
        t.push(Action::ScrapeText("/a[3]".parse().unwrap()), dom.clone());
        let mut ctx = SynthContext::new(SynthConfig::default(), t.clone());
        let item = Item::initial(&t);
        let srs = speculate(&item, &mut ctx, far_deadline());
        let spurious: Vec<_> = srs
            .iter()
            .filter(|sr| sr.i == 0 && sr.j == 1 && matches!(*sr.stmt, Statement::ForeachSel(_)))
            .collect();
        assert!(!spurious.is_empty(), "the over-approximation exists");
        for sr in spurious {
            assert!(
                crate::validate(sr, &item, &ctx).is_none(),
                "validation must reject {}",
                sr.stmt
            );
        }
    }

    #[test]
    fn speculation_cache_replays_alpha_equivalent_rewrites() {
        let trace = two_field_trace();
        let mut ctx = SynthContext::new(SynthConfig::default(), trace.clone());
        let item = Item::initial(&trace);
        let first = speculate(&item, &mut ctx, far_deadline());
        // Second pass over the same windows: every foreach expansion is a
        // cache replay, and the result is the same rewrite list up to
        // binder freshening.
        let second = speculate(&item, &mut ctx, far_deadline());
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!((a.i, a.j), (b.i, b.j));
            assert_eq!(a.stmt.canonicalize(), b.stmt.canonicalize());
        }
        // Disabling memoization must bypass the cache entirely.
        let mut plain = SynthContext::new(SynthConfig::no_optimizations(), trace.clone());
        let uncached = speculate(&item, &mut plain, far_deadline());
        assert_eq!(first.len(), uncached.len());
        for (a, b) in first.iter().zip(&uncached) {
            assert_eq!((a.i, a.j), (b.i, b.j));
            assert_eq!(a.stmt.canonicalize(), b.stmt.canonicalize());
        }
    }

    #[test]
    fn deadline_aborts_enumeration() {
        let trace = two_field_trace();
        let mut ctx = SynthContext::new(SynthConfig::default(), trace.clone());
        let item = Item::initial(&trace);
        let srs = speculate(&item, &mut ctx, Instant::now() - Duration::from_secs(1));
        // Only the (cheap) while pass may contribute; foreach pass aborted.
        assert!(srs.iter().all(|sr| matches!(*sr.stmt, Statement::While(_))));
    }

    #[test]
    fn cartesian_caps_products() {
        let a = Statement::GoBack;
        let choices = vec![vec![a.clone(); 4], vec![a.clone(); 4], vec![a; 4]];
        let (capped, complete) = cartesian(&choices, 10, far_deadline());
        assert_eq!(capped.len(), 10);
        // A cap cut is deterministic, so it still counts as complete.
        assert!(complete);
        let (full, complete) = cartesian(&choices, 1000, far_deadline());
        assert_eq!(full.len(), 64);
        assert!(complete);
    }

    proptest::proptest! {
        /// The odometer rewrite preserves the original cap behavior: the
        /// first `cap` products of the slot-lexicographic enumeration
        /// (last slot fastest), exactly as the old prefix-growing
        /// implementation produced them.
        #[test]
        fn cartesian_cap_behavior_is_unchanged(
            shape in proptest::collection::vec(1usize..4, 1..4),
            cap in 1usize..30,
        ) {
            // Distinguishable statements per slot: GoBack vs scrapes of
            // distinct anchors.
            let slot = |n: usize, s: usize| -> Vec<Statement> {
                (0..n)
                    .map(|k| {
                        Statement::ScrapeText(Selector::rooted(
                            format!("/a[{}]", s * 10 + k + 1).parse().unwrap(),
                        ))
                    })
                    .collect()
            };
            let choices: Vec<Vec<Statement>> =
                shape.iter().enumerate().map(|(s, &n)| slot(n, s)).collect();
            // Reference: the pre-rewrite prefix-growing algorithm.
            let mut reference: Vec<Vec<Statement>> = vec![Vec::new()];
            for slot in &choices {
                let mut next = Vec::new();
                'fill: for prefix in &reference {
                    for choice in slot {
                        let mut body = prefix.clone();
                        body.push(choice.clone());
                        next.push(body);
                        if next.len() >= cap {
                            break 'fill;
                        }
                    }
                }
                reference = next;
            }
            let (got, complete) = cartesian(&choices, cap, far_deadline());
            proptest::prop_assert!(complete);
            proptest::prop_assert_eq!(got, reference);
        }
    }

    #[test]
    fn cartesian_deadline_returns_partial_complete_bodies() {
        // Regression: a deadline mid-expansion must return *some* bodies,
        // each of full window length (never truncated), and they must be
        // a prefix of the unbounded enumeration.
        let mk = |s: &str| Statement::ScrapeText(Selector::rooted(s.parse().unwrap()));
        let choices = vec![
            vec![mk("/a[1]"), mk("/a[2]")],
            vec![mk("/b[1]"), mk("/b[2]"), mk("/b[3]")],
            vec![mk("/c[1]"), mk("/c[2]")],
        ];
        let expired = Instant::now() - Duration::from_secs(1);
        let (partial, partial_complete) = cartesian(&choices, 1000, expired);
        let (full, full_complete) = cartesian(&choices, 1000, far_deadline());
        assert!(!partial_complete, "a deadline cut is flagged incomplete");
        assert!(full_complete);
        assert_eq!(full.len(), 12);
        assert!(!partial.is_empty(), "at least one body is always produced");
        assert!(
            partial.len() < full.len(),
            "deadline actually cut the product"
        );
        assert!(partial.iter().all(|body| body.len() == choices.len()));
        assert_eq!(partial[..], full[..partial.len()]);
    }

    use webrobot_lang::Selector;
}
