//! The `Validate` procedure (paper Alg. 3): checking s-rewrites against the
//! trace semantics and turning true rewrites into new worklist items.

use webrobot_semantics::{action_consistent, Stepper};

use crate::context::SynthContext;
use crate::item::Item;
use crate::speculate::SRewrite;

/// Validates one s-rewrite against `item`.
///
/// Executes the speculated statement on the DOM slice starting at its first
/// iteration (`Π_i ++ ·· ++ Π_l`, i.e. everything up to — but excluding —
/// the latest DOM), then checks that the produced action trace equals the
/// recorded slice up to some statement boundary `r > j` (consistency is
/// node-identity per DOM, not selector syntax).
///
/// Execution is driven step by step through the resumable [`Stepper`] and
/// compared against the recorded slice *as it goes*: most speculative
/// rewrites are spurious and die on their first or second action, so
/// aborting there — instead of simulating the statement across the whole
/// slice and comparing afterwards — removes the dominant cost of the
/// worklist loop. Accept/reject verdicts are unchanged: a rewrite whose
/// produced trace mismatches anywhere is rejected either way, and one
/// that matches everywhere runs the exact same number of steps.
///
/// On success, returns the rewritten item with statements `i..=r` replaced
/// by the loop; invariants I1/I2 hold by this very check.
pub fn validate(sr: &SRewrite, item: &Item, ctx: &SynthContext) -> Option<Item> {
    let m = item.covered();
    let start = item.bounds()[sr.i];
    // The execution outcome is item-independent (it only reads the slice
    // `start..m` of the shared trace), so sibling items speculating the
    // same rewrite share one run through the memo table.
    let end = match ctx.validation_key(sr.cid, start, m) {
        Some(key) => match ctx.validation_hit(&key) {
            Some(hit) => hit?,
            None => {
                let end = consistent_stop(&sr.stmt, start, m, ctx);
                ctx.validation_store(key, end);
                end?
            }
        },
        None => consistent_stop(&sr.stmt, start, m, ctx)?,
    };
    // The produced trace must stop exactly at a statement boundary…
    let boundary = item.bounds().binary_search(&end).ok()?;
    // …strictly beyond the first iteration (r ≥ j + 1, boundary = r + 1).
    if boundary < sr.j + 2 {
        return None;
    }
    Some(item.splice(sr.i, boundary - 1, (*sr.stmt).clone()))
}

/// Drives `stmt` over `doms[start..m]` and returns where its produced
/// trace stops, or `None` as soon as a produced action is inconsistent
/// with its recorded counterpart.
fn consistent_stop(
    stmt: &webrobot_lang::Statement,
    start: usize,
    m: usize,
    ctx: &SynthContext,
) -> Option<usize> {
    let trace = ctx.trace();
    let mut stepper = Stepper::new(std::slice::from_ref(stmt), trace.input().clone());
    let mut end = start;
    while end < m {
        match stepper.step(&trace.doms()[end]) {
            Ok(Some(produced)) => {
                if !action_consistent(&produced, &trace.actions()[end], &trace.doms()[end]) {
                    return None;
                }
                end += 1;
            }
            Ok(None) => break,
            Err(_) => return None,
        }
    }
    Some(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::speculate::speculate;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use webrobot_data::Value;
    use webrobot_dom::parse_html;
    use webrobot_lang::{Action, Statement};
    use webrobot_semantics::{generalizes, Trace};

    /// Four items, two demonstrated: validation must stretch a speculated
    /// loop across all four recorded scrapes.
    fn four_anchor_trace() -> Trace {
        let dom =
            Arc::new(parse_html("<html><a>1</a><a>2</a><a>3</a><a>4</a><a>5</a></html>").unwrap());
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for i in 1..=4 {
            t.push(
                Action::ScrapeText(format!("/a[{i}]").parse().unwrap()),
                dom.clone(),
            );
        }
        t
    }

    #[test]
    fn true_rewrite_covers_beyond_first_iteration() {
        let trace = four_anchor_trace();
        let mut ctx = SynthContext::new(SynthConfig::default(), trace.clone());
        let item = Item::initial(&trace);
        let srs = speculate(&item, &mut ctx, Instant::now() + Duration::from_secs(10));
        let mut validated: Vec<Item> = srs
            .iter()
            .filter_map(|sr| validate(sr, &item, &ctx))
            .collect();
        assert!(!validated.is_empty());
        validated.sort_by_key(Item::len);
        // The best rewrite collapses everything into one loop statement…
        let best = &validated[0];
        assert_eq!(best.len(), 1);
        assert!(matches!(best.statements()[0], Statement::ForeachSel(_)));
        // …which also generalizes the trace (predicting the 5th anchor).
        let pred = generalizes(best.statements(), &trace).expect("generalizes");
        let want = Action::ScrapeText("/a[5]".parse().unwrap());
        assert!(webrobot_semantics::action_consistent(
            &pred,
            &want,
            trace.latest_dom()
        ));
    }

    #[test]
    fn spurious_rewrite_is_rejected() {
        // Demonstration scrapes a[1], a[2], then a *header* h3 — a loop
        // over anchors speculated from (a[1], a[2]) must NOT absorb the h3,
        // and covering only its own first two statements is not enough…
        let dom = Arc::new(parse_html("<html><a>1</a><a>2</a><h3>x</h3></html>").unwrap());
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        t.push(Action::ScrapeText("/a[1]".parse().unwrap()), dom.clone());
        t.push(Action::ScrapeText("/a[2]".parse().unwrap()), dom.clone());
        t.push(Action::ScrapeText("/h3[1]".parse().unwrap()), dom.clone());
        let mut ctx = SynthContext::new(SynthConfig::default(), t.clone());
        let item = Item::initial(&t);
        let srs = speculate(&item, &mut ctx, Instant::now() + Duration::from_secs(10));
        // A window [a1] with pair (a1, a2) speculates a 1-statement loop;
        // executing it scrapes a[1], a[2] and then *stops* (no a[3]), so
        // r = 1 ≥ j+1 = 1 ✓ — it IS a true rewrite covering exactly the two
        // anchors, but never the h3.
        for sr in &srs {
            if let Some(rewritten) = validate(sr, &item, &ctx) {
                let last = rewritten.statements().last().unwrap();
                assert_eq!(last, &t.actions()[2].to_statement(), "h3 stays raw");
            }
        }
    }

    #[test]
    fn rewrite_must_stop_on_statement_boundary() {
        // Items have TWO fields each; a bogus loop that only scrapes the
        // first field would stop mid-slice when re-executed… construct the
        // situation by hand-feeding a 1-field s-rewrite on a 2-field trace.
        use webrobot_lang::parse_program;
        let dom = Arc::new(
            parse_html(
                "<html><div class='i'><h3>a</h3><b>1</b></div>\
                 <div class='i'><h3>b</h3><b>2</b></div></html>",
            )
            .unwrap(),
        );
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for i in 1..=2 {
            t.push(
                Action::ScrapeText(format!("/div[{i}]/h3[1]").parse().unwrap()),
                dom.clone(),
            );
            t.push(
                Action::ScrapeText(format!("/div[{i}]/b[1]").parse().unwrap()),
                dom.clone(),
            );
        }
        let ctx = SynthContext::new(SynthConfig::default(), t.clone());
        let item = Item::initial(&t);
        let loop_stmt = parse_program("foreach %r0 in Dscts(eps, h3) do {\n  ScrapeText(%r0)\n}")
            .unwrap()
            .into_statements()
            .remove(0);
        // This loop would produce [h3#1, h3#2] = recorded actions 0 and 2 —
        // not a contiguous slice; action 1 (the <b>) mismatches.
        let sr = SRewrite {
            cid: ctx.canon_id(&loop_stmt),
            stmt: Arc::new(loop_stmt),
            i: 0,
            j: 0,
        };
        assert!(validate(&sr, &item, &ctx).is_none());
    }
}
