//! Worklist items: a partial rewrite of the trace plus the slice
//! boundaries that witness invariants I1/I2 of paper Alg. 1.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use webrobot_lang::{Program, Statement};
use webrobot_semantics::Trace;

/// A worklist entry `(P, A⃗, Π⃗)`.
///
/// `stmts` is the program rewritten so far; `bounds` partitions the action
/// trace: statement `k` covers actions `bounds[k] .. bounds[k+1]` (and the
/// DOMs of the same indices). The invariants of Alg. 1 —
///
/// * **I1**: the slices concatenate back to the full trace, and
/// * **I2**: each statement satisfies its slice —
///
/// hold by construction: items are only created by [`Item::initial`]
/// (singleton statements) and by `validate` (which checks I2 semantically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    pub(crate) stmts: Vec<Statement>,
    pub(crate) bounds: Vec<usize>,
}

impl Item {
    /// The initial item `P₀ = a₁; ··; a_m` with singleton slices.
    pub fn initial(trace: &Trace) -> Item {
        let stmts: Vec<Statement> = trace.actions().iter().map(|a| a.to_statement()).collect();
        let bounds = (0..=trace.len()).collect();
        Item { stmts, bounds }
    }

    /// The rewritten program.
    pub fn statements(&self) -> &[Statement] {
        &self.stmts
    }

    /// Slice boundaries (length `statements().len() + 1`).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// `true` for the empty item (empty trace).
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Number of actions this item covers (= trace length at creation).
    pub fn covered(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// First action index covered by statement `k` — also the index of the
    /// DOM that statement's first action executes on.
    pub fn slice_start(&self, k: usize) -> usize {
        self.bounds[k]
    }

    /// Extends the item with newly demonstrated actions as singleton
    /// statements (incremental synthesis, paper §5.4).
    ///
    /// # Panics
    ///
    /// Panics if the trace is shorter than what the item already covers.
    pub fn extended_to(&self, trace: &Trace) -> Item {
        let covered = self.covered();
        assert!(trace.len() >= covered, "trace shrank under an item");
        let mut stmts = self.stmts.clone();
        let mut bounds = self.bounds.clone();
        for idx in covered..trace.len() {
            stmts.push(trace.actions()[idx].to_statement());
            bounds.push(idx + 1);
        }
        Item { stmts, bounds }
    }

    /// The item as a [`Program`].
    pub fn to_program(&self) -> Program {
        Program::new(self.stmts.clone())
    }

    /// Hash of the canonicalized program + bounds, used to deduplicate
    /// alpha-equivalent rewrites across the worklist.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.to_program().canonicalize().hash(&mut h);
        self.bounds.hash(&mut h);
        h.finish()
    }

    /// Rebuilds an item from a program and its slice boundaries — the
    /// inverse of [`Item::statements`] / [`Item::bounds`], used to adopt
    /// a persisted engine digest. Returns `None` unless `bounds` is a
    /// plausible partition witness: one more entry than statements,
    /// starting at 0, strictly increasing. (Whether each statement
    /// actually satisfies its slice is re-checked semantically when the
    /// adopted item next reaches the generalization check, exactly as a
    /// live item would be.)
    pub fn from_parts(stmts: Vec<Statement>, bounds: Vec<usize>) -> Option<Item> {
        let valid = bounds.len() == stmts.len() + 1
            && bounds.first() == Some(&0)
            && bounds.windows(2).all(|w| w[0] < w[1]);
        valid.then_some(Item { stmts, bounds })
    }

    /// Replaces statements `i..=r` with `stmt`, whose slice is
    /// `bounds[i] .. bounds[r+1]`.
    pub(crate) fn splice(&self, i: usize, r: usize, stmt: Statement) -> Item {
        let mut stmts = Vec::with_capacity(self.stmts.len() - (r - i));
        stmts.extend_from_slice(&self.stmts[..i]);
        stmts.push(stmt);
        stmts.extend_from_slice(&self.stmts[r + 1..]);
        let mut bounds = Vec::with_capacity(self.bounds.len() - (r - i));
        bounds.extend_from_slice(&self.bounds[..=i]);
        bounds.extend_from_slice(&self.bounds[r + 1..]);
        Item { stmts, bounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;
    use webrobot_lang::Action;

    fn trace(n: usize) -> Trace {
        let dom = Arc::new(parse_html("<html><a>x</a></html>").unwrap());
        let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
        for _ in 0..n {
            t.push(Action::ScrapeText("/a[1]".parse().unwrap()), dom.clone());
        }
        t
    }

    #[test]
    fn initial_item_has_singleton_slices() {
        let t = trace(3);
        let item = Item::initial(&t);
        assert_eq!(item.len(), 3);
        assert_eq!(item.bounds(), &[0, 1, 2, 3]);
        assert_eq!(item.covered(), 3);
    }

    #[test]
    fn extension_appends_singletons() {
        let t3 = trace(3);
        let item = Item::initial(&t3.prefix(1));
        let ext = item.extended_to(&t3);
        assert_eq!(ext.len(), 3);
        assert_eq!(ext.bounds(), &[0, 1, 2, 3]);
    }

    #[test]
    fn splice_replaces_slice_range() {
        let t = trace(4);
        let item = Item::initial(&t);
        let spliced = item.splice(1, 2, Statement::GoBack);
        assert_eq!(spliced.len(), 3);
        assert_eq!(spliced.bounds(), &[0, 1, 3, 4]);
        assert_eq!(spliced.statements()[1], Statement::GoBack);
    }

    #[test]
    fn canonical_hash_ignores_var_numbering() {
        use webrobot_lang::{parse_program, SelVar};
        let t = trace(2);
        let mut a = Item::initial(&t);
        let mut b = Item::initial(&t);
        let make = |v: u32| {
            parse_program(&format!(
                "foreach %r{v} in Dscts(eps, a) do {{\n  ScrapeText(%r{v})\n}}"
            ))
            .unwrap()
            .into_statements()
            .remove(0)
        };
        a.stmts[0] = make(0);
        b.stmts[0] = make(9);
        let _ = SelVar(0); // silence unused import lint in some cfgs
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        assert_ne!(a.canonical_hash(), Item::initial(&t).canonical_hash());
    }
}
