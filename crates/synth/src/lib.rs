//! The WebRobot synthesis engine (paper §5): **speculative rewriting**.
//!
//! Given a demonstration [`Trace`] (actions + DOMs + input data), the
//! [`Synthesizer`] searches for web RPA programs that *generalize* the
//! trace — reproduce every demonstrated action and predict at least one
//! more (paper Defs. 4.1–4.3). The search is a worklist of partial rewrites
//! (Alg. 1):
//!
//! 1. **Speculate** (Alg. 2, [`speculate`]): pattern-match just the *first
//!    two iterations* of a would-be loop using anti-unification (Fig. 10)
//!    and parametrization (Fig. 11), producing cheap, over-approximate
//!    *s-rewrites*;
//! 2. **Validate** (Alg. 3, [`validate`]): execute each s-rewrite under the
//!    trace semantics and keep only *true rewrites* — those that actually
//!    reproduce a longer slice of the trace than the two iterations they
//!    were guessed from.
//!
//! Nested loops emerge inside-out: a validated loop becomes a single
//! statement that later speculation rounds can fold into outer loops.
//! Synthesis is **incremental** (§5.4): the worklist survives across calls,
//! newly demonstrated actions are appended to stored rewrites, and trailing
//! loops *absorb* the new actions by re-validation.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use webrobot_dom::parse_html;
//! use webrobot_lang::{Action, Value};
//! use webrobot_semantics::Trace;
//! use webrobot_synth::{SynthConfig, Synthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let page = Arc::new(parse_html("<html><a>1</a><a>2</a><a>3</a></html>")?);
//! let mut trace = Trace::new(page.clone(), Value::Object(vec![]));
//! trace.push(Action::ScrapeText("/a[1]".parse()?), page.clone());
//! trace.push(Action::ScrapeText("/a[2]".parse()?), page);
//!
//! let mut synth = Synthesizer::new(SynthConfig::default(), trace);
//! let result = synth.synthesize();
//! let best = result.programs.first().expect("a loop generalizes this trace");
//! assert_eq!(best.prediction.to_string(), "ScrapeText(/a[3])");
//! # Ok(())
//! # }
//! ```

mod antiunify;
mod config;
mod context;
mod engine;
mod item;
mod parametrize;
mod speculate;
mod validate;

pub use antiunify::{anti_unify, LoopSeed};
pub use config::SynthConfig;
pub use context::SynthContext;
pub use engine::{EngineDigest, RankedProgram, SynthResult, SynthStats, Synthesizer};
pub use item::Item;
pub use speculate::{speculate, SRewrite};
pub use validate::validate;

pub use webrobot_semantics::Trace;
