//! Property tests for the speculation memo tables: memoization must be a
//! pure optimization. For random statement pairs over a listing DOM,
//!
//! * a memoized `anti_unify` call (including the var-freshened cache-hit
//!   path) produces the same seeds, up to alpha-equivalence, as an
//!   uncached call;
//! * the memoized parametrization suffix scan matches the uncached one
//!   exactly (it is variable-independent, so no renaming is involved);
//! * the capacity knob never changes results, only whether they are
//!   cached.

use std::sync::Arc;

use proptest::prelude::*;

use webrobot_data::{PathSeg, Value, ValuePath};
use webrobot_dom::parse_html;
use webrobot_lang::{Action, ForeachSel, ForeachVal, Selector, Statement, ValuePathExpr};
use webrobot_semantics::Trace;
use webrobot_synth::{anti_unify, LoopSeed, SynthConfig, SynthContext};

/// A three-item listing page with a nav offset (so alternative-selector
/// decompositions are non-trivial) and two fields per item.
fn listing_trace() -> Trace {
    let dom = Arc::new(
        parse_html(
            "<html><body><div class='nav'><a>skip</a></div>\
             <div class='item'><h3>a</h3><span class='ph'>1</span></div>\
             <div class='item'><h3>b</h3><span class='ph'>2</span></div>\
             <div class='item'><h3>c</h3><span class='ph'>3</span></div>\
             </body></html>",
        )
        .unwrap(),
    );
    let mut trace = Trace::new(dom.clone(), Value::Object(vec![]));
    for i in 2..=3 {
        trace.push(
            Action::ScrapeText(format!("/body[1]/div[{i}]/h3[1]").parse().unwrap()),
            dom.clone(),
        );
    }
    trace
}

fn ctx(cfg: SynthConfig) -> SynthContext {
    SynthContext::new(cfg, listing_trace())
}

/// A random loop-free statement over the listing DOM.
fn stmt_strategy() -> impl Strategy<Value = Statement> {
    (0usize..4, 1usize..4, 1usize..3).prop_map(|(kind, div, field)| {
        let field_path: webrobot_dom::Path = if field == 1 {
            format!("/body[1]/div[{div}]/h3[1]").parse().unwrap()
        } else {
            format!("/body[1]/div[{div}]/span[1]").parse().unwrap()
        };
        match kind {
            0 => Statement::ScrapeText(Selector::rooted(field_path)),
            1 => Statement::Click(Selector::rooted(field_path)),
            2 => Statement::ScrapeLink(Selector::rooted(field_path)),
            _ => Statement::EnterData(
                Selector::rooted(format!("/body[1]/div[{div}]").parse().unwrap()),
                ValuePathExpr::input(ValuePath::new(vec![
                    PathSeg::key("rows"),
                    PathSeg::Index(field),
                ])),
            ),
        }
    })
}

/// Seeds compared up to alpha-equivalence: wrap each into the loop it
/// would speculate and canonicalize, erasing fresh-variable numbering.
fn canonical(seeds: &[LoopSeed]) -> Vec<Statement> {
    seeds
        .iter()
        .map(|seed| match seed {
            LoopSeed::Sel {
                template,
                var,
                list,
            } => Statement::ForeachSel(ForeachSel {
                var: *var,
                list: list.clone(),
                body: vec![template.clone()],
            })
            .canonicalize(),
            LoopSeed::Vp {
                template,
                var,
                list,
            } => Statement::ForeachVal(ForeachVal {
                var: *var,
                list: list.clone(),
                body: vec![template.clone()],
            })
            .canonicalize(),
        })
        .collect()
}

proptest! {
    /// Memoized results — first call (miss) and second call (hit through
    /// the var-freshening path) — match the memo-free reference.
    #[test]
    fn memoized_anti_unify_equals_uncached((sp, sq) in (stmt_strategy(), stmt_strategy())) {
        let mut plain = ctx(SynthConfig { memoization: false, ..SynthConfig::default() });
        let reference = canonical(&anti_unify(&sp, &sq, 0, 1, &mut plain));

        let mut memo = ctx(SynthConfig::default());
        let miss = canonical(&anti_unify(&sp, &sq, 0, 1, &mut memo));
        let hit = canonical(&anti_unify(&sp, &sq, 0, 1, &mut memo));
        prop_assert_eq!(&miss, &reference, "cache miss diverged");
        prop_assert_eq!(&hit, &reference, "cache hit (freshened) diverged");

        // Different DOM indices are distinct memo entries, not stale hits.
        let other = canonical(&anti_unify(&sp, &sq, 1, 2, &mut memo));
        let mut plain2 = ctx(SynthConfig { memoization: false, ..SynthConfig::default() });
        let other_ref = canonical(&anti_unify(&sp, &sq, 1, 2, &mut plain2));
        prop_assert_eq!(&other, &other_ref);
    }

    /// A zero-capacity memo (nothing is ever stored) still computes the
    /// same seeds — capacity only trades memory for speed.
    #[test]
    fn memo_capacity_never_changes_results((sp, sq) in (stmt_strategy(), stmt_strategy())) {
        let mut unbounded = ctx(SynthConfig::default());
        let mut starved = ctx(SynthConfig { memo_capacity: 0, ..SynthConfig::default() });
        for _ in 0..2 {
            let a = canonical(&anti_unify(&sp, &sq, 0, 1, &mut unbounded));
            let b = canonical(&anti_unify(&sp, &sq, 0, 1, &mut starved));
            prop_assert_eq!(a, b);
        }
    }
}
