//! Regression test for per-session DOM-resolution statistics.
//!
//! The resolution-cache hit/miss counters used to live in process-wide
//! statics and were deltaed per synthesis call; with two shards
//! synthesizing concurrently the deltas raced and misattributed counts
//! across sessions. The counters are per-[`Dom`] now, so each call's
//! delta must be exact no matter what other threads are doing — which is
//! what this test pins: two synthesizers hammered from two threads (the
//! shape of a two-shard service) must report, call for call, the same
//! resolution stats as an isolated sequential baseline.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use webrobot_data::Value;
use webrobot_dom::{parse_html, Dom};
use webrobot_lang::Action;
use webrobot_semantics::Trace;
use webrobot_synth::{SynthConfig, Synthesizer};

fn anchors(n: usize) -> Arc<Dom> {
    let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
    Arc::new(parse_html(&format!("<html>{body}</html>")).unwrap())
}

/// A scrape demonstration over `total` anchors, `demonstrated` of them
/// already performed. `stride` varies the selector shape per session so
/// the two sessions do different amounts of resolution work.
fn scrape_trace(demonstrated: usize, total: usize, stride: usize) -> Trace {
    let dom = anchors(total);
    let mut t = Trace::new(dom.clone(), Value::Object(vec![]));
    for i in 0..demonstrated {
        let idx = 1 + i * stride;
        t.push(
            Action::ScrapeText(format!("/a[{idx}]").parse().unwrap()),
            dom.clone(),
        );
    }
    t
}

/// One session's workload: synthesize over a growing demonstration and
/// collect the per-call `(hits, misses)` deltas.
fn drive(stride: usize) -> Vec<(u64, u64)> {
    let full = scrape_trace(4, 16, stride);
    let mut synth = Synthesizer::new(SynthConfig::default(), full.prefix(2));
    let mut stats = Vec::new();
    for k in 2..=4 {
        if k > 2 {
            synth.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
        }
        let r = synth.synthesize();
        stats.push((r.stats.resolve_hits, r.stats.resolve_misses));
    }
    stats
}

/// Like [`drive`], but sliced into quanta — the shape a quantum shard
/// runs — with the same exactness requirement on the summed deltas.
fn drive_quantum(stride: usize) -> Vec<(u64, u64)> {
    let full = scrape_trace(4, 16, stride);
    let mut synth = Synthesizer::new(SynthConfig::default(), full.prefix(2));
    let mut stats = Vec::new();
    for k in 2..=4 {
        if k > 2 {
            synth.observe(full.actions()[k - 1].clone(), full.doms()[k].clone());
        }
        let (mut hits, mut misses) = (0, 0);
        loop {
            let r = synth.synthesize_quantum(Duration::ZERO);
            hits += r.stats.resolve_hits;
            misses += r.stats.resolve_misses;
            if !r.stats.parked {
                break;
            }
        }
        stats.push((hits, misses));
    }
    stats
}

#[test]
fn concurrent_sessions_report_exact_resolve_stats() {
    // Sequential baselines, one session at a time: nothing else resolves
    // while these run, so the deltas are exact by construction.
    let baseline_a = drive(1);
    let baseline_b = drive(3);
    assert!(
        baseline_a.iter().any(|&(h, m)| h + m > 0),
        "synthesis exercises the resolution cache"
    );
    assert_ne!(
        baseline_a, baseline_b,
        "the two sessions do different resolution work"
    );

    // Two shards synthesizing concurrently, many rounds to give a racy
    // counter implementation every chance to misattribute.
    for _ in 0..8 {
        let a = thread::spawn(|| drive(1));
        let b = thread::spawn(|| drive(3));
        let got_a = a.join().unwrap();
        let got_b = b.join().unwrap();
        assert_eq!(
            got_a, baseline_a,
            "session A stats drifted under concurrency"
        );
        assert_eq!(
            got_b, baseline_b,
            "session B stats drifted under concurrency"
        );
    }
}

#[test]
fn quantum_slicing_reports_the_same_resolve_totals() {
    // Summed per-quantum deltas equal the unsliced call's delta: the
    // sliced search does the same resolutions, just in pieces.
    assert_eq!(drive_quantum(1), drive(1));
    assert_eq!(drive_quantum(3), drive(3));
}
