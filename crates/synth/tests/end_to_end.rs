//! End-to-end synthesis tests: record a ground-truth demonstration on a
//! simulated website, then replay the paper's interactive protocol — feed
//! the trace action by action, synthesize after each step, and check the
//! predictions (paper §7.1) and the final program's structure (§2).

use std::sync::Arc;

use webrobot_browser::{record_demonstration, Browser, RecordLimits, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::{parse_html, Dom};
use webrobot_lang::{parse_program, Program};
use webrobot_semantics::{action_consistent, satisfies, Trace};
use webrobot_synth::{SynthConfig, Synthesizer};

/// Builds a Subway-store-locator-like site (paper Fig. 4): a search page
/// plus, per zip code, a chain of paginated result pages. Every page keeps
/// the search bar at the same absolute position; result pages contain a
/// header div (so container indices are offset — selector search is
/// required), `rightContainer` items with name + phone, and a next button
/// except on the last page.
fn subway_site(zips: &[(&str, &[usize])]) -> Arc<webrobot_browser::Site> {
    let mut b = SiteBuilder::new();
    let searchbar = "<div class='searchbar'>\
         <input name='search' data-field='q' value=''/>\
         <button class='btnDoSearch' data-search='q'>GO</button></div>";
    let home = b.add_page(
        "https://stores.test/",
        parse_html(&format!("<html><body>{searchbar}</body></html>")).unwrap(),
    );
    let mut routes = Vec::new();
    // Pre-plan page ids: pages are appended in order, so the id of the
    // next page is predictable.
    let mut next_id = 1usize;
    for (zip, pages) in zips {
        routes.push((
            zip.to_string(),
            webrobot_browser::PageId::from_index(next_id),
        ));
        for (pi, &count) in pages.iter().enumerate() {
            let mut items = String::from("<div class='header'>results</div>");
            for item in 0..count {
                items.push_str(&format!(
                    "<div class='rightContainer'><h3>Store {zip}-{pi}-{item}</h3>\
                     <div class='locatorPhone'>555-{pi}{item}</div></div>"
                ));
            }
            let next = if pi + 1 < pages.len() {
                format!(
                    "<button class='next' href='#p{}'>&gt;</button>",
                    next_id + 1
                )
            } else {
                String::new()
            };
            let html = format!(
                "<html><body>{searchbar}<div class='results'>{items}{next}</div></body></html>"
            );
            b.add_page(
                format!("https://stores.test/?q={zip}&page={}", pi + 1),
                parse_html(&html).unwrap(),
            );
            next_id += 1;
        }
    }
    let miss = b.add_page(
        "https://stores.test/none",
        parse_html(&format!(
            "<html><body>{searchbar}<div class='results'><div class='header'>no results</div></div></body></html>"
        ))
        .unwrap(),
    );
    b.add_search("q", routes, miss);
    Arc::new(b.start_at(home).finish())
}

fn subway_ground_truth() -> Program {
    parse_program(
        "foreach %v0 in ValuePaths(x[zips]) do {\n\
           EnterData(//input[@name='search'][1], %v0)\n\
           Click(//button[@class='btnDoSearch'][1])\n\
           while true do {\n\
             foreach %r1 in Dscts(eps, div[@class='rightContainer']) do {\n\
               ScrapeText(%r1//h3[1])\n\
               ScrapeText(%r1//div[@class='locatorPhone'][1])\n\
             }\n\
             Click(//button[@class='next'][1])\n\
           }\n\
         }",
    )
    .unwrap()
}

/// Replays the recorded trace through an incremental synthesizer, counting
/// correct predictions (the paper's accuracy measure). The "final program"
/// is the best program of the last test (the one predicting `a_n`), as in
/// the paper's §7.1 protocol.
fn replay(trace: &Trace, cfg: SynthConfig) -> (usize, usize, Option<Program>, Synthesizer) {
    let n = trace.len();
    let mut synth = Synthesizer::new(cfg, trace.prefix(0));
    let mut correct = 0;
    let mut final_best: Option<Program> = None;
    for k in 1..n {
        synth.observe(trace.actions()[k - 1].clone(), trace.doms()[k].clone());
        let result = synth.synthesize();
        let want = &trace.actions()[k];
        let dom = &trace.doms()[k];
        if result
            .predictions
            .iter()
            .any(|p| action_consistent(p, want, dom))
        {
            correct += 1;
        }
        if let Some(rp) = result.programs.first() {
            final_best = Some(rp.program.clone());
        }
    }
    (correct, n - 1, final_best, synth)
}

#[test]
fn subway_scenario_synthesizes_three_level_loop() {
    let site = subway_site(&[("48105", &[5, 4, 3]), ("10001", &[4, 3])]);
    let input = Value::object([("zips".to_string(), Value::str_array(["48105", "10001"]))]);
    let gt = subway_ground_truth();
    let rec = record_demonstration(
        site.clone(),
        input.clone(),
        gt.statements(),
        RecordLimits::default(),
    )
    .expect("ground truth replays");
    assert!(!rec.truncated);
    assert!(satisfies(gt.statements(), &rec.trace));

    let (correct, total, best, _synth) = replay(&rec.trace, SynthConfig::default());
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy >= 0.7,
        "accuracy {accuracy:.2} ({correct}/{total}) too low"
    );

    // The final program is the paper's P4 shape: a three-level nest.
    let best = best.expect("a program generalizes… or covers the trace");
    assert_eq!(best.loop_depth(), 3, "final program:\n{best}");

    // Running the synthesized program live reproduces the ground truth's
    // scraped outputs on a fresh browser.
    let mut browser = Browser::new(site, input);
    webrobot_browser::run_program(&mut browser, best.statements(), 10_000).unwrap();
    let got: Vec<&str> = browser.outputs().iter().map(|o| o.payload()).collect();
    let want: Vec<&str> = rec.outputs.iter().map(|o| o.payload()).collect();
    assert_eq!(got, want);
}

#[test]
fn no_selector_ablation_degrades_on_offset_containers() {
    // With the leading header div, container absolute indices are 2, 3, …:
    // without alternative selectors the item scrapes cannot be rolled into
    // the intended loop. The ablated engine still invents *unintended*
    // generalizing programs (the paper's b9 phenomenon), so accuracy drops
    // rather than vanishing — and the final program is wrong: replaying it
    // live diverges from the ground truth.
    let site = subway_site(&[("48105", &[3, 2])]);
    let input = Value::object([("zips".to_string(), Value::str_array(["48105"]))]);
    let gt = subway_ground_truth();
    let rec = record_demonstration(
        site.clone(),
        input.clone(),
        gt.statements(),
        RecordLimits::default(),
    )
    .unwrap();
    let (correct_full, total, best_full, _) = replay(&rec.trace, SynthConfig::default());
    let (correct_ablated, _, best_ablated, _) = replay(&rec.trace, SynthConfig::no_selector());
    assert!(
        correct_full > correct_ablated,
        "full {correct_full} vs ablated {correct_ablated} of {total}"
    );
    // The full engine's final program reproduces the ground-truth outputs…
    let best_full = best_full.expect("full engine synthesizes");
    let mut browser = Browser::new(site.clone(), input.clone());
    webrobot_browser::run_program(&mut browser, best_full.statements(), 1_000).unwrap();
    let want: Vec<&str> = rec.outputs.iter().map(|o| o.payload()).collect();
    let got: Vec<&str> = browser.outputs().iter().map(|o| o.payload()).collect();
    assert_eq!(got, want);
    // …the ablated engine's final program (if any) does not.
    if let Some(p) = best_ablated {
        let mut browser = Browser::new(site, input);
        let ok = webrobot_browser::run_program(&mut browser, p.statements(), 1_000);
        let got: Vec<&str> = browser.outputs().iter().map(|o| o.payload()).collect();
        assert!(ok.is_err() || got != want, "ablated program is unintended");
    }
}

#[test]
fn master_detail_with_goback_synthesizes() {
    // Listing page with item links; each detail page carries a spec div;
    // the robot clicks through, scrapes the spec, and goes back.
    let mut b = SiteBuilder::new();
    let n = 4;
    let mut listing_items = String::new();
    for i in 0..n {
        // Detail pages will be ids 1..=n.
        listing_items.push_str(&format!(
            "<div class='item'><h3>Item {i}</h3><a href='#p{}'>view</a></div>",
            i + 1
        ));
    }
    let listing = b.add_page(
        "https://cat.test/",
        parse_html(&format!("<html><body>{listing_items}</body></html>")).unwrap(),
    );
    for i in 0..n {
        b.add_page(
            format!("https://cat.test/item/{i}"),
            parse_html(&format!(
                "<html><body><div class='spec'>Spec of item {i}</div></body></html>"
            ))
            .unwrap(),
        );
    }
    let site = Arc::new(b.start_at(listing).finish());
    let gt = parse_program(
        "foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
           ScrapeText(%r0//h3[1])\n\
           Click(%r0//a[1])\n\
           ScrapeText(//div[@class='spec'][1])\n\
           GoBack\n\
         }",
    )
    .unwrap();
    let rec = record_demonstration(
        site.clone(),
        Value::Object(vec![]),
        gt.statements(),
        RecordLimits::default(),
    )
    .unwrap();
    assert_eq!(rec.trace.len(), 4 * n);

    let (correct, total, best, _) = replay(&rec.trace, SynthConfig::default());
    // After one full iteration + the second item's first scrape the loop is
    // pinned down; earlier predictions are impossible or ambiguous.
    assert!(correct as f64 / total as f64 > 0.6, "{correct}/{total}");
    let best = best.expect("loop synthesized");
    assert_eq!(best.loop_depth(), 1);
    assert_eq!(best.len(), 1);

    let mut browser = Browser::new(site, Value::Object(vec![]));
    webrobot_browser::run_program(&mut browser, best.statements(), 1_000).unwrap();
    assert_eq!(browser.outputs().len(), rec.outputs.len());
}

#[test]
fn value_path_rows_with_two_fields() {
    // Data entry from a table of rows: enter name and city per row into a
    // form, submit, scrape the greeting. Exercises value-path loops whose
    // bodies have several parametrized EnterData statements.
    let rows: Vec<(String, String)> = (0..4)
        .map(|i| (format!("Name{i}"), format!("City{i}")))
        .collect();
    let form = "<div class='form'>\
        <input name='who' data-field='who' value=''/>\
        <input name='where' value=''/>\
        <button data-search='who'>SUBMIT</button></div>";
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://greet.test/",
        parse_html(&format!("<html><body>{form}</body></html>")).unwrap(),
    );
    let mut routes = Vec::new();
    for (i, (name, _)) in rows.iter().enumerate() {
        let id = webrobot_browser::PageId::from_index(i + 1);
        routes.push((name.clone(), id));
        b.add_page(
            format!("https://greet.test/hello/{i}"),
            parse_html(&format!(
                "<html><body>{form}<div class='greeting'>Hello {name}!</div></body></html>"
            ))
            .unwrap(),
        );
    }
    let miss = b.add_page(
        "https://greet.test/none",
        parse_html(&format!("<html><body>{form}</body></html>")).unwrap(),
    );
    b.add_search("who", routes, miss);
    let site = Arc::new(b.start_at(home).finish());

    let input = Value::object([(
        "rows".to_string(),
        Value::Array(
            rows.iter()
                .map(|(n, c)| {
                    Value::object([
                        ("name".to_string(), Value::str(n.clone())),
                        ("city".to_string(), Value::str(c.clone())),
                    ])
                })
                .collect(),
        ),
    )]);
    let gt = parse_program(
        "foreach %v0 in ValuePaths(x[rows]) do {\n\
           EnterData(//input[@name='who'][1], %v0[name])\n\
           EnterData(//input[@name='where'][1], %v0[city])\n\
           Click(//button[1])\n\
           ScrapeText(//div[@class='greeting'][1])\n\
         }",
    )
    .unwrap();
    let rec = record_demonstration(site, input, gt.statements(), RecordLimits::default()).unwrap();
    assert_eq!(rec.trace.len(), 16);
    let (correct, total, best, _) = replay(&rec.trace, SynthConfig::default());
    assert!(correct as f64 / total as f64 > 0.6, "{correct}/{total}");
    let best = best.expect("vp loop synthesized");
    assert_eq!(best.loop_depth(), 1, "{best}");
    assert!(best.to_string().contains("ValuePaths(x[rows])"), "{best}");
}

/// Helper re-exported for tests: Arc<Dom> page sharing sanity.
#[test]
fn trace_prefixes_share_dom_snapshots() {
    let site = subway_site(&[("48105", &[2])]);
    let input = Value::object([("zips".to_string(), Value::str_array(["48105"]))]);
    let gt = subway_ground_truth();
    let rec = record_demonstration(site, input, gt.statements(), RecordLimits::default()).unwrap();
    let p = rec.trace.prefix(2);
    assert!(Arc::ptr_eq(&p.doms()[0], &rec.trace.doms()[0]));
    let _: &Dom = &p.doms()[0];
}
