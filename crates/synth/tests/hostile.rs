//! Minimized hostile-shape regression tests distilled from the
//! DOM-perturbation fuzz sweep (`tests/fuzz.rs` at the workspace root).
//!
//! The sweep (≈15 000 synthesis+replay cycles over seeded perturbations of
//! every generated family) flushed out no panics or hangs; these tests pin
//! the minimized versions of the shapes that came closest — the cases
//! where a panic *would* live if the engine ever regressed: snapshots that
//! contradict the recorded actions, payload nodes deleted mid-trace,
//! "unique" anchors duplicated, and pagination links bent into cycles.
//! Each case must finish within a deadline and report failure only through
//! typed channels (`SynthStats` flags, empty prediction lists,
//! `BrowserError`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use webrobot_browser::{record_demonstration, run_program, Browser, RecordLimits, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::parse_html;
use webrobot_lang::parse_program;
use webrobot_semantics::Trace;
use webrobot_synth::{SynthConfig, Synthesizer};

const DEADLINE: Duration = Duration::from_secs(15);

fn bounded_config() -> SynthConfig {
    SynthConfig {
        timeout: Duration::from_millis(500),
        max_items: 400,
        ..SynthConfig::default()
    }
}

fn synthesize_within_deadline(synth: &mut Synthesizer) -> webrobot_synth::SynthResult {
    let started = Instant::now();
    let r = synth.synthesize();
    assert!(
        started.elapsed() < DEADLINE,
        "synthesis overran its deadline; stats: {:?}",
        r.stats
    );
    r
}

/// A three-item listing page and its straight-scrape recording.
fn listing_recording() -> (Arc<webrobot_browser::Site>, webrobot_browser::Recording) {
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        "https://tiny.test/",
        parse_html(
            "<html><body><ul>\
             <li>alpha</li><li>beta</li><li>gamma</li>\
             </ul></body></html>",
        )
        .unwrap(),
    );
    let site = Arc::new(b.start_at(home).finish());
    let gt =
        parse_program("foreach %r0 in Children(/body[1]/ul[1], li) do {\n  ScrapeText(%r0)\n}")
            .unwrap();
    let rec = record_demonstration(
        site.clone(),
        Value::Object(vec![]),
        gt.statements(),
        RecordLimits::default(),
    )
    .unwrap();
    (site, rec)
}

/// Every snapshot in the trace is an empty page that none of the recorded
/// scrape actions could have come from — the engine must degrade to "no
/// generalization" without touching a nonexistent node.
#[test]
fn contradictory_empty_snapshots_degrade_typed() {
    let (_, rec) = listing_recording();
    let empty = Arc::new(parse_html("<html><body></body></html>").unwrap());
    let mut trace = Trace::new(empty.clone(), Value::Object(vec![]));
    for action in rec.trace.actions() {
        trace.push(action.clone(), empty.clone());
    }
    let mut synth = Synthesizer::new(bounded_config(), trace);
    let r = synthesize_within_deadline(&mut synth);
    assert!(
        r.predictions.is_empty(),
        "no program can generalize a trace its snapshots contradict"
    );
}

/// The payload list disappears halfway through the trace (the perturbation
/// fuzzer's node-deletion op): later snapshots lack the nodes earlier
/// actions scraped.
#[test]
fn payload_deleted_mid_trace_degrades_typed() {
    let (site, rec) = listing_recording();
    let mut gutted = site.dom(site.start()).as_ref().clone();
    let body = gutted.children(webrobot_dom::NodeId::ROOT)[0];
    let ul = gutted.children(body)[0];
    gutted.detach(ul);
    let gutted = Arc::new(gutted);
    let mut trace = Trace::new(rec.trace.doms()[0].clone(), Value::Object(vec![]));
    for (i, action) in rec.trace.actions().iter().enumerate() {
        // First half sees the real page, second half the gutted one.
        let dom = if i < rec.trace.actions().len() / 2 {
            rec.trace.doms()[i + 1].clone()
        } else {
            gutted.clone()
        };
        trace.push(action.clone(), dom);
    }
    let mut synth = Synthesizer::new(bounded_config(), trace);
    let _ = synthesize_within_deadline(&mut synth);
}

/// The "unique" next-page anchor is duplicated (list-length jitter on a
/// singleton): selector resolution must stay deterministic and synthesis
/// must conclude.
#[test]
fn duplicated_anchor_stays_deterministic() {
    let mut b = SiteBuilder::new();
    let p0 = b.add_page(
        "https://dup.test/1",
        parse_html(
            "<html><body>\
             <div class='item'><h3>one</h3></div>\
             <div class='item'><h3>two</h3></div>\
             <button class='next' href='#p1'>&gt;</button>\
             <button class='next' href='#p0'>&gt;</button>\
             </body></html>",
        )
        .unwrap(),
    );
    b.add_page(
        "https://dup.test/2",
        parse_html(
            "<html><body>\
             <div class='item'><h3>three</h3></div>\
             </body></html>",
        )
        .unwrap(),
    );
    let site = Arc::new(b.start_at(p0).finish());
    let gt = parse_program(
        "while true do {\n\
           foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
             ScrapeText(%r0//h3[1])\n\
           }\n\
           Click(//button[@class='next'][1])\n\
         }",
    )
    .unwrap();
    let rec = record_demonstration(
        site.clone(),
        Value::Object(vec![]),
        gt.statements(),
        RecordLimits::default(),
    )
    .unwrap();
    let mut a = Synthesizer::new(bounded_config(), rec.trace.clone());
    let mut b2 = Synthesizer::new(bounded_config(), rec.trace.clone());
    let ra = synthesize_within_deadline(&mut a);
    let rb = synthesize_within_deadline(&mut b2);
    assert_eq!(ra.predictions, rb.predictions);
}

/// Pagination bent into a cycle (the fuzzer's href churn): recording hits
/// the action cap with `truncated` set, the replay cap bounds execution,
/// and both plain and zero-budget-quantum synthesis conclude on the
/// truncated trace.
#[test]
fn cyclic_pagination_truncates_and_synthesizes() {
    let mut b = SiteBuilder::new();
    let p0 = b.add_page(
        "https://cycle.test/1",
        parse_html(
            "<html><body>\
             <div class='item'><h3>one</h3></div>\
             <button class='next' href='#p1'>&gt;</button>\
             </body></html>",
        )
        .unwrap(),
    );
    b.add_page(
        "https://cycle.test/2",
        parse_html(
            "<html><body>\
             <div class='item'><h3>two</h3></div>\
             <button class='next' href='#p0'>&gt;</button>\
             </body></html>",
        )
        .unwrap(),
    );
    let site = Arc::new(b.start_at(p0).finish());
    let gt = parse_program(
        "while true do {\n\
           foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
             ScrapeText(%r0//h3[1])\n\
           }\n\
           Click(//button[@class='next'][1])\n\
         }",
    )
    .unwrap();
    let rec = record_demonstration(
        site.clone(),
        Value::Object(vec![]),
        gt.statements(),
        RecordLimits::default(),
    )
    .unwrap();
    assert!(rec.truncated, "a pagination cycle must hit the action cap");

    let mut browser = Browser::new(site.clone(), Value::Object(vec![]));
    let run = run_program(&mut browser, gt.statements(), 50).unwrap();
    assert!(run.truncated, "replay over the cycle must be cap-bounded");

    let mut synth = Synthesizer::new(bounded_config(), rec.trace.clone());
    let _ = synthesize_within_deadline(&mut synth);

    let mut quantum = Synthesizer::new(bounded_config(), rec.trace);
    let started = Instant::now();
    let mut quanta = 0u64;
    loop {
        let r = quantum.synthesize_quantum(Duration::ZERO);
        if !r.stats.parked {
            break;
        }
        quanta += 1;
        assert!(
            quanta < 5_000_000 && started.elapsed() < DEADLINE,
            "quantum scheduler failed to conclude on the truncated trace"
        );
    }
}
