//! Fidelity tests against the paper's worked derivation (Example 3.1 /
//! Fig. 9) and the rule-by-rule behaviour of the trace semantics.

use std::sync::Arc;

use webrobot_data::Value;
use webrobot_dom::{parse_html, Dom};
use webrobot_lang::{parse_program, Action};
use webrobot_semantics::{execute, generalizes, satisfies, Trace};

fn dom(html: &str) -> Arc<Dom> {
    Arc::new(parse_html(html).unwrap())
}

/// Example 3.1: `foreach ϱ in Dscts(ε, a) do { Click(ϱ) }` on Π = [π₁, π₂]
/// produces exactly [Click(//a[1]), Click(//a[2])] — the Fig. 9 result.
#[test]
fn example_31_derivation() {
    let pi = dom("<html><a>x</a><a>y</a><a>z</a></html>");
    let prog = parse_program("foreach %r0 in Dscts(eps, a) do {\n  Click(%r0)\n}").unwrap();
    let out = execute(prog.statements(), &[pi.clone(), pi], &Value::Object(vec![])).unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(rendered, ["Click(//a[1])", "Click(//a[2])"]);
    // Fig. 9 bottoms out in the Term rule: Π is exhausted mid-loop.
    assert!(out.exhausted);
}

/// Example 3.1's P′: `Click(ϱ/b[1])` inside the loop. The element check
/// (S-Cont) still passes — //a[1] exists — but the click action refers to
/// //a[1]/b[1]; consistency (not the interpreter) rejects such programs.
#[test]
fn example_31_p_prime() {
    let pi = dom("<html><a>x</a><a>y</a></html>");
    let prog = parse_program("foreach %r0 in Dscts(eps, a) do {\n  Click(%r0/b[1])\n}").unwrap();
    let out = execute(
        prog.statements(),
        &[pi.clone(), pi.clone()],
        &Value::Object(vec![]),
    )
    .unwrap();
    assert_eq!(out.actions.len(), 2);
    // Against a demonstration that clicked the anchors themselves, P′
    // neither satisfies nor generalizes.
    let mut trace = Trace::new(pi.clone(), Value::Object(vec![]));
    trace.push(Action::Click("/a[1]".parse().unwrap()), pi);
    assert!(!satisfies(prog.statements(), &trace));
    assert_eq!(generalizes(prog.statements(), &trace), None);
}

/// S-Term: the selector loop ends exactly when the next element stops
/// existing, not one iteration later.
#[test]
fn s_term_fires_at_first_invalid_element() {
    let pi = dom("<html><a>x</a><a>y</a><h3>t</h3></html>");
    let prog = parse_program(
        "foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}\nScrapeText(/h3[1])",
    )
    .unwrap();
    let doms: Vec<_> = (0..3).map(|_| pi.clone()).collect();
    let out = execute(prog.statements(), &doms, &Value::Object(vec![])).unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(
        rendered,
        [
            "ScrapeText(//a[1])",
            "ScrapeText(//a[2])",
            "ScrapeText(/h3[1])"
        ]
    );
    assert!(!out.exhausted);
}

/// While-Init runs the body once before any click-validity check: the
/// first iteration happens even if the click target never exists.
#[test]
fn while_init_runs_body_before_check() {
    let pi = dom("<html><h3>only page</h3></html>");
    let prog =
        parse_program("while true do {\n  ScrapeText(/h3[1])\n  Click(//button[1])\n}").unwrap();
    let out = execute(prog.statements(), &[pi.clone(), pi], &Value::Object(vec![])).unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(rendered, ["ScrapeText(/h3[1])"]);
    assert!(
        !out.exhausted,
        "While-Term fired, execution continued normally"
    );
}

/// VP-Loop is eager: it iterates exactly |arr| times even when later
/// iterations' actions run out of DOMs (Term mid-loop).
#[test]
fn vp_loop_eagerness_meets_term() {
    let pi = dom("<html><input/></html>");
    let prog =
        parse_program("foreach %v0 in ValuePaths(x[zips]) do {\n  EnterData(/input[1], %v0)\n}")
            .unwrap();
    let input = Value::object([("zips".to_string(), Value::str_array(["a", "b", "c", "d"]))]);
    // Only two DOMs available for four entries.
    let out = execute(prog.statements(), &[pi.clone(), pi], &input).unwrap();
    assert_eq!(out.actions.len(), 2);
    assert!(out.exhausted);
}

/// The angelic DOM transition: base statements do not check validity; a
/// Click on a non-existent node still consumes a DOM and emits an action
/// (Def. 4.1's consistency is what rules such programs out).
#[test]
fn base_statements_are_angelic() {
    let pi = dom("<html><a>x</a></html>");
    let prog = parse_program("Click(/div[9])").unwrap();
    let out = execute(prog.statements(), &[pi], &Value::Object(vec![])).unwrap();
    assert_eq!(out.actions.len(), 1);
}

/// Environment scoping: an inner loop variable shadows nothing and outer
/// bindings are restored after the loop (Fig. 8 rules (1)–(4)).
#[test]
fn nested_variable_scoping_follows_fig8() {
    let pi = dom("<html><ul><li>a</li></ul><ul><li>b</li><li>c</li></ul></html>");
    let prog = parse_program(
        "foreach %r0 in Dscts(eps, ul) do {\n\
           foreach %r1 in Children(%r0, li) do {\n\
             ScrapeText(%r1)\n\
           }\n\
           ScrapeText(%r0/li[1])\n\
         }",
    )
    .unwrap();
    let doms: Vec<_> = (0..6).map(|_| pi.clone()).collect();
    let out = execute(prog.statements(), &doms, &Value::Object(vec![])).unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(
        rendered,
        [
            "ScrapeText(//ul[1]/li[1])",
            "ScrapeText(//ul[1]/li[1])", // outer var still bound to ul[1]
            "ScrapeText(//ul[2]/li[1])",
            "ScrapeText(//ul[2]/li[2])",
            "ScrapeText(//ul[2]/li[1])",
        ]
    );
}
