//! Trace semantics of the web RPA language (paper §3.2, Figs. 7–9) and the
//! synthesis-problem definitions built on it (paper §4).
//!
//! The key judgment is `Π, Σ ⊢ P ⇝ A′, Π′, Σ′`: given a recorded DOM trace
//! Π and an environment Σ, the program `P` *would* execute the actions `A′`.
//! Execution is **simulated** — no real browser is touched; instead each
//! action "angelically" consumes the next DOM from Π, and loop guards
//! (`valid(ρ, π)`) are answered against the current DOM. This is what lets
//! the synthesizer evaluate arbitrarily wrong candidate programs without
//! side effects.
//!
//! The crate provides:
//!
//! * [`execute`] — the interpreter (Fig. 7 rules, including lazy selector
//!   loops, eager value-path loops and click-terminated while loops),
//! * [`action_consistent`] / [`trace_consistent`] — the DOM-node-identity
//!   based consistency relation of Def. 4.1,
//! * [`satisfies`] and [`generalizes`] — Defs. 4.1 and 4.2,
//! * [`Trace`] — a recorded demonstration (actions + DOMs + input data).
//!
//! # Example (paper Example 3.1 / Fig. 9)
//!
//! ```
//! use std::sync::Arc;
//! use webrobot_dom::parse_html;
//! use webrobot_lang::{parse_program, Value};
//! use webrobot_semantics::execute;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pi1 = Arc::new(parse_html("<html><a>1</a><a>2</a></html>")?);
//! let pi2 = Arc::new(parse_html("<html><a>1</a><a>2</a></html>")?);
//! let prog = parse_program("foreach %r0 in Dscts(eps, a) do {\n  Click(%r0)\n}")?;
//! let out = execute(prog.statements(), &[pi1, pi2], &Value::Object(vec![]))?;
//! let printed: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
//! assert_eq!(printed, vec!["Click(//a[1])", "Click(//a[2])"]);
//! # Ok(())
//! # }
//! ```

mod consistency;
mod interp;
mod problem;
mod stepper;
mod trace;

pub use consistency::{action_consistent, same_node, trace_consistent};
pub use interp::{execute, EvalError, EvalOutcome};
pub use problem::{generalizes, satisfies};
pub use stepper::Stepper;
pub use trace::Trace;
