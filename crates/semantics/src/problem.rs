//! The synthesis-problem definitions (paper §4).

use webrobot_lang::{Action, Statement};

use crate::consistency::trace_consistent;
use crate::interp::execute;
use crate::trace::Trace;

/// Def. 4.1 (Satisfaction): `P` satisfies the trace iff simulating `P` on
/// the full DOM trace reproduces (at least) all demonstrated actions, each
/// consistent with its recorded counterpart on the corresponding DOM.
///
/// Programs with unbound variables never satisfy anything.
pub fn satisfies(program: &[Statement], trace: &Trace) -> bool {
    let Ok(out) = execute(program, trace.doms(), trace.input()) else {
        return false;
    };
    out.actions.len() >= trace.len()
        && trace_consistent(&out.actions[..trace.len()], trace.actions(), trace.doms())
}

/// Def. 4.2 (Generalization): `P` generalizes the trace iff it satisfies it
/// *and* produces at least one further action — the prediction `a_{m+1}`
/// that would execute on the latest DOM `π_{m+1}`.
///
/// Returns the prediction on success.
pub fn generalizes(program: &[Statement], trace: &Trace) -> Option<Action> {
    let out = execute(program, trace.doms(), trace.input()).ok()?;
    let m = trace.len();
    if out.actions.len() > m && trace_consistent(&out.actions[..m], trace.actions(), trace.doms()) {
        Some(out.actions[m].clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_data::Value;
    use webrobot_dom::parse_html;
    use webrobot_lang::parse_program;

    /// Trace: scrape the first two of three anchors; π₄ still shows all
    /// three anchors.
    fn two_scrapes() -> Trace {
        let d = Arc::new(parse_html("<html><a>1</a><a>2</a><a>3</a></html>").unwrap());
        let mut t = Trace::new(d.clone(), Value::Object(vec![]));
        t.push(Action::ScrapeText("//a[1]".parse().unwrap()), d.clone());
        t.push(Action::ScrapeText("//a[2]".parse().unwrap()), d);
        t
    }

    #[test]
    fn straight_line_program_satisfies_but_does_not_generalize() {
        let t = two_scrapes();
        let p = parse_program("ScrapeText(//a[1])\nScrapeText(//a[2])").unwrap();
        assert!(satisfies(p.statements(), &t));
        assert_eq!(generalizes(p.statements(), &t), None);
    }

    #[test]
    fn loop_satisfies_and_predicts_next_action() {
        let t = two_scrapes();
        let p = parse_program("foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}").unwrap();
        assert!(satisfies(p.statements(), &t));
        let prediction = generalizes(p.statements(), &t).expect("loop generalizes");
        assert_eq!(prediction.to_string(), "ScrapeText(//a[3])");
    }

    #[test]
    fn wrong_program_neither_satisfies_nor_generalizes() {
        let t = two_scrapes();
        let p = parse_program("foreach %r0 in Dscts(eps, a) do {\n  Click(%r0)\n}").unwrap();
        assert!(!satisfies(p.statements(), &t));
        assert_eq!(generalizes(p.statements(), &t), None);
    }

    #[test]
    fn empty_trace_is_satisfied_by_everything_but_generalized_by_producers() {
        let d = Arc::new(parse_html("<html><a>1</a></html>").unwrap());
        let t = Trace::new(d, Value::Object(vec![]));
        let empty = parse_program("").unwrap();
        assert!(satisfies(empty.statements(), &t));
        assert_eq!(generalizes(empty.statements(), &t), None);
        let p = parse_program("ScrapeText(//a[1])").unwrap();
        assert!(satisfies(p.statements(), &t));
        assert!(generalizes(p.statements(), &t).is_some());
    }
}
