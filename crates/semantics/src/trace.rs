//! Recorded demonstrations: an action trace, the DOM trace it was performed
//! on, and the input data source.

use std::fmt;
use std::sync::Arc;

use webrobot_data::Value;
use webrobot_dom::Dom;
use webrobot_lang::Action;

/// A recorded demonstration.
///
/// Maintains the paper's invariant that the DOM trace is one longer than
/// the action trace: action `a_i` was performed on DOM `π_i`, and the final
/// DOM `π_{m+1}` is the page currently in front of the user (the one a
/// prediction would execute on) — paper Def. 4.3.
#[derive(Debug, Clone)]
pub struct Trace {
    actions: Vec<Action>,
    doms: Vec<Arc<Dom>>,
    input: Value,
}

impl Trace {
    /// Starts an empty trace on `initial_dom` with data source `input`.
    pub fn new(initial_dom: Arc<Dom>, input: Value) -> Trace {
        Trace {
            actions: Vec::new(),
            doms: vec![initial_dom],
            input,
        }
    }

    /// Builds a trace from parts.
    ///
    /// # Panics
    ///
    /// Panics unless `doms.len() == actions.len() + 1`.
    pub fn from_parts(actions: Vec<Action>, doms: Vec<Arc<Dom>>, input: Value) -> Trace {
        assert_eq!(
            doms.len(),
            actions.len() + 1,
            "DOM trace must have one more entry than the action trace"
        );
        Trace {
            actions,
            doms,
            input,
        }
    }

    /// Records one step: `action` was performed on the current last DOM and
    /// the page transitioned to `resulting_dom`.
    pub fn push(&mut self, action: Action, resulting_dom: Arc<Dom>) {
        self.actions.push(action);
        self.doms.push(resulting_dom);
    }

    /// The demonstrated actions `A = [a₁, ··, a_m]`.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The DOM trace `Π = [π₁, ··, π_{m+1}]`.
    pub fn doms(&self) -> &[Arc<Dom>] {
        &self.doms
    }

    /// The input data source `I`.
    pub fn input(&self) -> &Value {
        &self.input
    }

    /// Number of demonstrated actions `m`.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` iff nothing has been demonstrated yet.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The DOM the next (predicted) action would execute on: `π_{m+1}`.
    pub fn latest_dom(&self) -> &Arc<Dom> {
        self.doms.last().expect("trace always holds ≥ 1 DOM")
    }

    /// A prefix of this trace with `k` actions and `k + 1` DOMs — the shape
    /// used by the paper's per-test evaluation protocol (§7.1).
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    pub fn prefix(&self, k: usize) -> Trace {
        assert!(k <= self.len());
        Trace {
            actions: self.actions[..k].to_vec(),
            doms: self.doms[..k + 1].to_vec(),
            input: self.input.clone(),
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace of {} actions:", self.actions.len())?;
        for (i, a) in self.actions.iter().enumerate() {
            writeln!(f, "  {:>4}  {a}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_dom::parse_html;

    fn d() -> Arc<Dom> {
        Arc::new(parse_html("<html><a>x</a></html>").unwrap())
    }

    #[test]
    fn push_keeps_invariant() {
        let mut t = Trace::new(d(), Value::Object(vec![]));
        assert!(t.is_empty());
        t.push(Action::Click("//a[1]".parse().unwrap()), d());
        assert_eq!(t.len(), 1);
        assert_eq!(t.doms().len(), 2);
    }

    #[test]
    fn prefix_truncates_both_traces() {
        let mut t = Trace::new(d(), Value::Object(vec![]));
        for _ in 0..3 {
            t.push(Action::GoBack, d());
        }
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.doms().len(), 3);
    }

    #[test]
    #[should_panic(expected = "one more entry")]
    fn from_parts_validates_lengths() {
        let _ = Trace::from_parts(vec![Action::GoBack], vec![d()], Value::Object(vec![]));
    }
}
