//! The simulated interpreter (paper Fig. 7 and the auxiliary rules of
//! Fig. 8).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use webrobot_data::{PathSeg, Value, ValuePath};
use webrobot_dom::{Dom, Path};
use webrobot_lang::{Action, SelVar, Selector, Statement, ValuePathExpr, VpVar};

/// Result of a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// The action trace `A′` the program would perform. Each action consumed
    /// exactly one DOM from the input trace, so `actions.len()` is also the
    /// number of DOMs consumed.
    pub actions: Vec<Action>,
    /// `true` iff execution stopped because the DOM trace was exhausted
    /// (the paper's `Term` rule) rather than because the program finished.
    pub exhausted: bool,
}

/// Error produced by [`execute`] on malformed (open) programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A selector used a loop variable that is not in scope.
    UnboundSelVar(SelVar),
    /// A value path used a loop variable that is not in scope.
    UnboundVpVar(VpVar),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundSelVar(v) => write!(f, "unbound selector variable {v}"),
            EvalError::UnboundVpVar(v) => write!(f, "unbound value-path variable {v}"),
        }
    }
}

impl Error for EvalError {}

/// Simulates `program` against the DOM trace `doms` with input data
/// `input`, returning the action trace it would produce (top-level judgment
/// `Π, I ⊢ P : A′`).
///
/// Execution stops when the program terminates or when `doms` is exhausted,
/// whichever comes first.
///
/// # Errors
///
/// Returns [`EvalError`] if the program references an unbound loop variable
/// (synthesized programs are always closed; this guards API misuse).
pub fn execute(
    program: &[Statement],
    doms: &[Arc<Dom>],
    input: &Value,
) -> Result<EvalOutcome, EvalError> {
    let mut interp = Interp {
        doms,
        input,
        cursor: 0,
        out: Vec::new(),
        env: Env::default(),
    };
    let flow = interp.exec_block(program)?;
    Ok(EvalOutcome {
        actions: interp.out,
        exhausted: flow == Flow::Exhausted,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// The statement finished; continue with the next one.
    Continue,
    /// The DOM trace ran out (`Term` rule): stop the entire execution.
    Exhausted,
}

/// Environment Σ: lexically scoped bindings for selector and value-path
/// loop variables. Shared with the resumable [`Stepper`](crate::Stepper).
#[derive(Debug, Default, Clone)]
pub(crate) struct Env {
    pub(crate) sel: Vec<(SelVar, Path)>,
    pub(crate) vp: Vec<(VpVar, ValuePath)>,
}

impl Env {
    fn lookup_sel(&self, v: SelVar) -> Option<&Path> {
        self.sel
            .iter()
            .rev()
            .find(|(var, _)| *var == v)
            .map(|(_, p)| p)
    }

    fn lookup_vp(&self, v: VpVar) -> Option<&ValuePath> {
        self.vp
            .iter()
            .rev()
            .find(|(var, _)| *var == v)
            .map(|(_, p)| p)
    }

    pub(crate) fn resolve_selector(&self, s: &Selector) -> Result<Path, EvalError> {
        match s.base_var() {
            None => Ok(s.path.clone()),
            Some(v) => {
                let binding = self.lookup_sel(v).ok_or(EvalError::UnboundSelVar(v))?;
                Ok(binding.concat(&s.path))
            }
        }
    }

    pub(crate) fn resolve_vp(&self, v: &ValuePathExpr) -> Result<ValuePath, EvalError> {
        match v.base_var() {
            None => Ok(v.path.clone()),
            Some(var) => {
                let binding = self.lookup_vp(var).ok_or(EvalError::UnboundVpVar(var))?;
                Ok(binding.concat(&v.path))
            }
        }
    }
}

struct Interp<'a> {
    doms: &'a [Arc<Dom>],
    input: &'a Value,
    cursor: usize,
    out: Vec<Action>,
    env: Env,
}

impl Interp<'_> {
    fn current_dom(&self) -> Option<&Dom> {
        self.doms.get(self.cursor).map(|d| d.as_ref())
    }

    /// `Seq` rule: statements run left to right; exhaustion aborts the rest.
    fn exec_block(&mut self, stmts: &[Statement]) -> Result<Flow, EvalError> {
        for s in stmts {
            if self.exec_stmt(s)? == Flow::Exhausted {
                return Ok(Flow::Exhausted);
            }
        }
        Ok(Flow::Continue)
    }

    /// Emits one action, consuming one DOM ("angelic" transition).
    fn emit(&mut self, action: Action) -> Flow {
        if self.cursor >= self.doms.len() {
            return Flow::Exhausted;
        }
        self.out.push(action);
        self.cursor += 1;
        Flow::Continue
    }

    fn exec_stmt(&mut self, stmt: &Statement) -> Result<Flow, EvalError> {
        match stmt {
            Statement::Click(s) => {
                let p = self.env.resolve_selector(s)?;
                Ok(self.emit(Action::Click(p)))
            }
            Statement::ScrapeText(s) => {
                let p = self.env.resolve_selector(s)?;
                Ok(self.emit(Action::ScrapeText(p)))
            }
            Statement::ScrapeLink(s) => {
                let p = self.env.resolve_selector(s)?;
                Ok(self.emit(Action::ScrapeLink(p)))
            }
            Statement::Download(s) => {
                let p = self.env.resolve_selector(s)?;
                Ok(self.emit(Action::Download(p)))
            }
            Statement::GoBack => Ok(self.emit(Action::GoBack)),
            Statement::ExtractUrl => Ok(self.emit(Action::ExtractUrl)),
            Statement::SendKeys(s, text) => {
                let p = self.env.resolve_selector(s)?;
                Ok(self.emit(Action::SendKeys(p, text.clone())))
            }
            Statement::EnterData(s, v) => {
                let p = self.env.resolve_selector(s)?;
                let vp = self.env.resolve_vp(v)?;
                Ok(self.emit(Action::EnterData(p, vp)))
            }
            Statement::ForeachSel(l) => {
                // S-Init / S-Cont / S-Term: lazy unrolling guarded by
                // valid(ρ_i, π₁) on the *current* DOM.
                let base = self.env.resolve_selector(&l.list.base)?;
                let mut i = 1usize;
                loop {
                    let Some(dom) = self.current_dom() else {
                        return Ok(Flow::Exhausted);
                    };
                    let element = l.list.element(&base, i);
                    if !element.valid(dom) {
                        return Ok(Flow::Continue); // S-Term
                    }
                    self.env.sel.push((l.var, element));
                    let flow = self.exec_block(&l.body)?;
                    self.env.sel.pop();
                    if flow == Flow::Exhausted {
                        return Ok(Flow::Exhausted);
                    }
                    i += 1;
                }
            }
            Statement::ForeachVal(l) => {
                // VP-Loop: eager iteration over ValuePaths(v).
                let array_path = self.env.resolve_vp(&l.list.array)?;
                let count = self
                    .input
                    .get_array(&array_path)
                    .map(|a| a.len())
                    .unwrap_or(0);
                for i in 1..=count {
                    let element = array_path.join(PathSeg::Index(i));
                    self.env.vp.push((l.var, element));
                    let flow = self.exec_block(&l.body)?;
                    self.env.vp.pop();
                    if flow == Flow::Exhausted {
                        return Ok(Flow::Exhausted);
                    }
                }
                Ok(Flow::Continue)
            }
            Statement::While(w) => {
                // While-Init / While-Cont / While-Term: run the body, then
                // click-and-repeat while the click target is still valid.
                loop {
                    if self.exec_block(&w.body)? == Flow::Exhausted {
                        return Ok(Flow::Exhausted);
                    }
                    let click = self.env.resolve_selector(&w.click)?;
                    let Some(dom) = self.current_dom() else {
                        return Ok(Flow::Exhausted);
                    };
                    if !click.valid(dom) {
                        return Ok(Flow::Continue); // While-Term
                    }
                    if self.emit(Action::Click(click)) == Flow::Exhausted {
                        return Ok(Flow::Exhausted);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_dom::parse_html;
    use webrobot_lang::parse_program;

    fn dom(html: &str) -> Arc<Dom> {
        Arc::new(parse_html(html).unwrap())
    }

    fn input() -> Value {
        Value::object([("zips".to_string(), Value::str_array(["48105", "10001"]))])
    }

    fn run(src: &str, doms: &[Arc<Dom>]) -> EvalOutcome {
        let prog = parse_program(src).unwrap();
        execute(prog.statements(), doms, &input()).unwrap()
    }

    #[test]
    fn loop_free_statements_consume_one_dom_each() {
        let d = dom("<html><a>x</a><input/></html>");
        let out = run(
            "Click(//a[1])\nScrapeText(//a[1])\nGoBack",
            &[d.clone(), d.clone(), d],
        );
        assert_eq!(out.actions.len(), 3);
        assert!(!out.exhausted);
    }

    #[test]
    fn execution_stops_when_dom_trace_exhausted() {
        let d = dom("<html><a>x</a></html>");
        let out = run("Click(//a[1])\nGoBack\nGoBack", &[d.clone(), d]);
        assert_eq!(out.actions.len(), 2);
        assert!(out.exhausted);
    }

    #[test]
    fn fig9_selector_loop_unrolls_lazily() {
        let d = dom("<html><a>1</a><a>2</a></html>");
        let out = run(
            "foreach %r0 in Dscts(eps, a) do {\n  Click(%r0)\n}",
            &[d.clone(), d],
        );
        let printed: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(printed, ["Click(//a[1])", "Click(//a[2])"]);
        // After the second click Π is empty: S-Cont cannot check a[3], so
        // the run is Term-inated (exhausted), exactly as in Fig. 9.
        assert!(out.exhausted);
    }

    #[test]
    fn selector_loop_terminates_on_invalid_element() {
        // Three DOMs available, but only two anchors: loop must stop itself.
        let d = dom("<html><a>1</a><a>2</a></html>");
        let out = run(
            "foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}\nGoBack",
            &[d.clone(), d.clone(), d],
        );
        let kinds: Vec<_> = out.actions.iter().map(|a| a.kind()).collect();
        assert_eq!(kinds.len(), 3);
        assert_eq!(kinds[2], webrobot_lang::ActionKind::GoBack);
        assert!(!out.exhausted);
    }

    #[test]
    fn p_prime_from_example_31_stops_early() {
        // P' = foreach ϱ in Dscts(ε, a) do { Click(ϱ/b[1]) }: //a[1]/b[1]
        // does not exist, so S-Term fires immediately with no actions.
        let d = dom("<html><a>1</a><a>2</a></html>");
        let out = run(
            "foreach %r0 in Dscts(eps, a) do {\n  Click(%r0/b[1])\n}",
            &[d.clone(), d],
        );
        // valid() checks the loop *element* a[1] (which exists), then the
        // body click on a[1]/b[1] emits an action referring to nothing —
        // consistency checking (not the interpreter) rejects it.
        assert_eq!(out.actions.len(), 2);
    }

    #[test]
    fn value_path_loop_iterates_input_array() {
        let d = dom("<html><input/></html>");
        let doms: Vec<_> = (0..2).map(|_| d.clone()).collect();
        let out = run(
            "foreach %v0 in ValuePaths(x[zips]) do {\n  EnterData(//input[1], %v0)\n}",
            &doms,
        );
        let printed: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            printed,
            [
                "EnterData(//input[1], x[zips][1])",
                "EnterData(//input[1], x[zips][2])"
            ]
        );
        assert!(!out.exhausted);
    }

    #[test]
    fn value_path_loop_over_missing_array_is_empty() {
        let d = dom("<html><input/></html>");
        let out = run(
            "foreach %v0 in ValuePaths(x[nope]) do {\n  EnterData(//input[1], %v0)\n}",
            &[d],
        );
        assert!(out.actions.is_empty());
        assert!(!out.exhausted);
    }

    #[test]
    fn while_loop_clicks_until_button_disappears() {
        let with_next = dom("<html><h3>s</h3><span class='next'>&gt;</span></html>");
        let last = dom("<html><h3>s</h3></html>");
        // Trace: scrape page1, click next, scrape page2; the While-Term
        // check then sees `last` (no next button) and exits the loop, so
        // the trailing GoBack runs on the remaining DOM.
        let doms = vec![with_next.clone(), with_next, last.clone(), last];
        let out = run(
            "while true do {\n  ScrapeText(//h3[1])\n  Click(//span[@class='next'][1])\n}\nGoBack",
            &doms,
        );
        let printed: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            printed,
            [
                "ScrapeText(//h3[1])",
                "Click(//span[@class='next'][1])",
                "ScrapeText(//h3[1])",
                "GoBack",
            ]
        );
        assert!(!out.exhausted);
    }

    #[test]
    fn while_loop_exhausts_at_trace_frontier() {
        // Same program, but the trace ends right after the second scrape:
        // the While-Term check has no DOM to look at, so the whole
        // execution Term-inates (this is how a still-running while loop
        // generalizes at the demonstration frontier).
        let with_next = dom("<html><h3>s</h3><span class='next'>&gt;</span></html>");
        let doms = vec![with_next.clone(), with_next.clone(), with_next];
        let out = run(
            "while true do {\n  ScrapeText(//h3[1])\n  Click(//span[@class='next'][1])\n}",
            &doms,
        );
        assert_eq!(out.actions.len(), 3);
        assert!(out.exhausted);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let d = dom("<html></html>");
        let prog = parse_program("Click(%r7)").unwrap();
        let err = execute(prog.statements(), &[d], &input()).unwrap_err();
        assert_eq!(err, EvalError::UnboundSelVar(SelVar(7)));
    }

    #[test]
    fn nested_loops_shadow_and_restore_bindings() {
        let d = dom("<html><ul><li>a</li><li>b</li></ul><ul><li>c</li></ul></html>");
        let doms: Vec<_> = (0..3).map(|_| d.clone()).collect();
        let out = run(
            "foreach %r0 in Dscts(eps, ul) do {\n  foreach %r1 in Children(%r0, li) do {\n    ScrapeText(%r1)\n  }\n}",
            &doms,
        );
        let printed: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            printed,
            [
                "ScrapeText(//ul[1]/li[1])",
                "ScrapeText(//ul[1]/li[2])",
                "ScrapeText(//ul[2]/li[1])",
            ]
        );
    }
}
