//! A resumable interpreter: [`execute`](crate::execute) refactored into an
//! explicit-stack machine that consumes one DOM per [`Stepper::step`] call.
//!
//! This is the engine of the *true incremental fast path* (paper §5.4 /
//! §7.2): a cached generalizing program keeps a `Stepper` that has already
//! consumed the whole demonstration, so checking it against one newly
//! observed action costs one `step` — O(1) in the trace length — instead
//! of a full re-execution. The same machine drives validation (Alg. 3)
//! with per-action early abort.
//!
//! The machine is action-trace equivalent to [`execute`]: feeding the DOMs
//! of a trace one at a time yields exactly `execute(..).actions`, in
//! order (a unit test and the suite-wide differential harness both pin
//! this down). Equivalence is what makes the fast path a *proof-carrying*
//! optimization rather than an approximation.
//!
//! Statement blocks are shared as `Arc<[Statement]>`, so entering a loop
//! iteration is a pointer bump, not a deep clone of the body.

use std::sync::Arc;

use webrobot_data::{PathSeg, Value, ValuePath};
use webrobot_dom::{Dom, Path};
use webrobot_lang::{Action, Selector, SelectorList, Statement};

use crate::interp::Env;
use crate::interp::EvalError;

/// One suspended control-flow frame of the machine.
#[derive(Debug, Clone)]
enum Frame {
    /// A statement sequence being executed left to right.
    Block { stmts: Arc<[Statement]>, idx: usize },
    /// A selector loop between iterations: the guard for iteration `i`
    /// has not been checked yet (`in_body == false`), or iteration `i`'s
    /// body block sits directly above this frame (`in_body == true`).
    Sel {
        var: webrobot_lang::SelVar,
        base: Path,
        list: SelectorList,
        body: Arc<[Statement]>,
        i: usize,
        in_body: bool,
    },
    /// A value-path loop mid-iteration (`i` is 1-based, `i <= count`).
    Vp {
        var: webrobot_lang::VpVar,
        array: ValuePath,
        count: usize,
        body: Arc<[Statement]>,
        i: usize,
    },
    /// A while loop: body block above when `guard_pending == false`,
    /// otherwise the click guard is due on the next available DOM.
    While {
        click: Selector,
        body: Arc<[Statement]>,
        guard_pending: bool,
    },
}

/// Resumable execution state of one program over a growing DOM trace.
#[derive(Debug, Clone)]
pub struct Stepper {
    input: Value,
    frames: Vec<Frame>,
    env: Env,
    finished: bool,
}

// The stepper is the deepest state the session stack suspends (cached
// generalizing programs each carry one), so this bound is what makes the
// whole stack shardable across threads. A compile-time assertion rather
// than a test: reintroducing `Rc` anywhere in a frame fails `cargo check`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Stepper>();
};

impl Stepper {
    /// Starts `program` with input data `input`. Nothing executes until
    /// the first [`Stepper::step`].
    pub fn new(program: &[Statement], input: Value) -> Stepper {
        Stepper {
            input,
            frames: vec![Frame::Block {
                stmts: program.to_vec().into(),
                idx: 0,
            }],
            env: Env::default(),
            finished: false,
        }
    }

    /// `true` once the program has terminated (no further action can ever
    /// be produced).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Runs the program up to its next action, answering every loop guard
    /// on the way against `dom` (the first not-yet-consumed DOM of the
    /// trace, exactly like the interpreter's `current_dom`).
    ///
    /// Returns `Ok(Some(action))` when the program performs an action on
    /// `dom` (consuming it), or `Ok(None)` when the program terminates
    /// without consuming `dom`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on unbound loop variables, mirroring
    /// [`execute`](crate::execute); the machine is finished afterwards.
    pub fn step(&mut self, dom: &Dom) -> Result<Option<Action>, EvalError> {
        match self.run(dom) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.finished = true;
                Err(e)
            }
        }
    }

    fn run(&mut self, dom: &Dom) -> Result<Option<Action>, EvalError> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let Some(top) = self.frames.last_mut() else {
                self.finished = true;
                return Ok(None);
            };
            match top {
                Frame::Block { stmts, idx } => {
                    if *idx >= stmts.len() {
                        self.frames.pop();
                        self.resume_parent();
                        continue;
                    }
                    // Bump the shared block handle, not the statement: a
                    // statement may carry arbitrarily nested loop bodies,
                    // and `enter` only clones the pieces it keeps.
                    let cur = stmts.clone();
                    let at = *idx;
                    *idx += 1;
                    if let Some(action) = self.enter(&cur[at])? {
                        return Ok(Some(action));
                    }
                }
                Frame::Sel { .. } => {
                    // Guard of the next iteration (S-Cont / S-Term).
                    let (element, var, body) = {
                        let Some(Frame::Sel {
                            var,
                            base,
                            list,
                            body,
                            i,
                            in_body,
                        }) = self.frames.last()
                        else {
                            unreachable!("just matched Sel");
                        };
                        debug_assert!(!in_body, "body block sits above while in_body");
                        let element = list.element(base, *i);
                        if !element.valid(dom) {
                            (None, *var, Arc::from([]))
                        } else {
                            (Some(element), *var, body.clone())
                        }
                    };
                    match element {
                        None => {
                            self.frames.pop(); // S-Term: consumes nothing
                        }
                        Some(element) => {
                            if let Some(Frame::Sel { in_body, .. }) = self.frames.last_mut() {
                                *in_body = true;
                            }
                            self.env.sel.push((var, element));
                            self.frames.push(Frame::Block {
                                stmts: body,
                                idx: 0,
                            });
                        }
                    }
                }
                Frame::Vp { .. } => {
                    unreachable!("Vp frames always carry a body block above them")
                }
                Frame::While {
                    click,
                    body,
                    guard_pending,
                } => {
                    // While-Cont / While-Term: guard after each body run.
                    debug_assert!(
                        *guard_pending,
                        "body block sits above until the guard is due"
                    );
                    let path = self.env.resolve_selector(click)?;
                    if !path.valid(dom) {
                        self.frames.pop(); // While-Term: consumes nothing
                        continue;
                    }
                    *guard_pending = false;
                    let body = body.clone();
                    self.frames.push(Frame::Block {
                        stmts: body,
                        idx: 0,
                    });
                    return Ok(Some(Action::Click(path)));
                }
            }
        }
    }

    /// Begins executing one statement: loop-free statements produce their
    /// action immediately (cloning nothing but the resolved arguments),
    /// loops clone their body into a shared block once per loop *entry*.
    fn enter(&mut self, stmt: &Statement) -> Result<Option<Action>, EvalError> {
        match stmt {
            Statement::Click(s) => Ok(Some(Action::Click(self.env.resolve_selector(s)?))),
            Statement::ScrapeText(s) => Ok(Some(Action::ScrapeText(self.env.resolve_selector(s)?))),
            Statement::ScrapeLink(s) => Ok(Some(Action::ScrapeLink(self.env.resolve_selector(s)?))),
            Statement::Download(s) => Ok(Some(Action::Download(self.env.resolve_selector(s)?))),
            Statement::GoBack => Ok(Some(Action::GoBack)),
            Statement::ExtractUrl => Ok(Some(Action::ExtractUrl)),
            Statement::SendKeys(s, text) => Ok(Some(Action::SendKeys(
                self.env.resolve_selector(s)?,
                text.clone(),
            ))),
            Statement::EnterData(s, v) => {
                let p = self.env.resolve_selector(s)?;
                let vp = self.env.resolve_vp(v)?;
                Ok(Some(Action::EnterData(p, vp)))
            }
            Statement::ForeachSel(l) => {
                let base = self.env.resolve_selector(&l.list.base)?;
                self.frames.push(Frame::Sel {
                    var: l.var,
                    base,
                    list: l.list.clone(),
                    body: l.body.as_slice().into(),
                    i: 1,
                    in_body: false,
                });
                Ok(None)
            }
            Statement::ForeachVal(l) => {
                let array = self.env.resolve_vp(&l.list.array)?;
                let count = self.input.get_array(&array).map(|a| a.len()).unwrap_or(0);
                if count > 0 {
                    let body: Arc<[Statement]> = l.body.as_slice().into();
                    self.env.vp.push((l.var, array.join(PathSeg::Index(1))));
                    self.frames.push(Frame::Vp {
                        var: l.var,
                        array,
                        count,
                        body: body.clone(),
                        i: 1,
                    });
                    self.frames.push(Frame::Block {
                        stmts: body,
                        idx: 0,
                    });
                }
                Ok(None)
            }
            Statement::While(w) => {
                let body: Arc<[Statement]> = w.body.as_slice().into();
                self.frames.push(Frame::While {
                    click: w.click.clone(),
                    body: body.clone(),
                    guard_pending: false,
                });
                self.frames.push(Frame::Block {
                    stmts: body,
                    idx: 0,
                });
                Ok(None)
            }
        }
    }

    /// A body block just finished: advance the loop frame underneath it.
    fn resume_parent(&mut self) {
        match self.frames.last_mut() {
            Some(Frame::Sel { i, in_body, .. }) => {
                debug_assert!(*in_body);
                *in_body = false;
                *i += 1;
                self.env.sel.pop();
            }
            Some(Frame::Vp {
                var,
                array,
                count,
                body,
                i,
            }) => {
                self.env.vp.pop();
                *i += 1;
                if *i <= *count {
                    let binding = array.join(PathSeg::Index(*i));
                    let next = Frame::Block {
                        stmts: body.clone(),
                        idx: 0,
                    };
                    self.env.vp.push((*var, binding));
                    self.frames.push(next);
                } else {
                    self.frames.pop();
                }
            }
            Some(Frame::While { guard_pending, .. }) => {
                *guard_pending = true;
            }
            Some(Frame::Block { .. }) | None => {
                // Top-level block finished (or nested block directly under
                // the root): nothing to advance.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use std::sync::Arc;
    use webrobot_dom::parse_html;
    use webrobot_lang::parse_program;

    fn dom(html: &str) -> Arc<Dom> {
        Arc::new(parse_html(html).unwrap())
    }

    fn input() -> Value {
        Value::object([("zips".to_string(), Value::str_array(["48105", "10001"]))])
    }

    /// Feeds `doms` one at a time, collecting actions until the machine
    /// finishes or the DOMs run out.
    fn drive(src: &str, doms: &[Arc<Dom>]) -> Vec<Action> {
        let prog = parse_program(src).unwrap();
        let mut stepper = Stepper::new(prog.statements(), input());
        let mut out = Vec::new();
        for d in doms {
            match stepper.step(d).unwrap() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    fn check_matches_execute(src: &str, doms: &[Arc<Dom>]) {
        let prog = parse_program(src).unwrap();
        let reference = execute(prog.statements(), doms, &input()).unwrap();
        assert_eq!(drive(src, doms), reference.actions, "program:\n{src}");
    }

    #[test]
    fn matches_execute_on_interpreter_corpus() {
        let d = dom("<html><a>x</a><input/></html>");
        let anchors = dom("<html><a>1</a><a>2</a></html>");
        let lists = dom("<html><ul><li>a</li><li>b</li></ul><ul><li>c</li></ul></html>");
        let with_next = dom("<html><h3>s</h3><span class='next'>&gt;</span></html>");
        let last = dom("<html><h3>s</h3></html>");
        let cases: Vec<(&str, Vec<Arc<Dom>>)> = vec![
            (
                "Click(//a[1])\nScrapeText(//a[1])\nGoBack",
                vec![d.clone(), d.clone(), d.clone()],
            ),
            ("Click(//a[1])\nGoBack\nGoBack", vec![d.clone(), d.clone()]),
            (
                "foreach %r0 in Dscts(eps, a) do {\n  Click(%r0)\n}",
                vec![anchors.clone(), anchors.clone()],
            ),
            (
                "foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}\nGoBack",
                vec![anchors.clone(), anchors.clone(), anchors.clone()],
            ),
            (
                "foreach %r0 in Dscts(eps, a) do {\n  Click(%r0/b[1])\n}",
                vec![anchors.clone(), anchors.clone()],
            ),
            (
                "foreach %v0 in ValuePaths(x[zips]) do {\n  EnterData(//input[1], %v0)\n}",
                vec![d.clone(), d.clone()],
            ),
            (
                "foreach %v0 in ValuePaths(x[nope]) do {\n  EnterData(//input[1], %v0)\n}",
                vec![d.clone()],
            ),
            (
                "while true do {\n  ScrapeText(//h3[1])\n  Click(//span[@class='next'][1])\n}\nGoBack",
                vec![with_next.clone(), with_next.clone(), last.clone(), last.clone()],
            ),
            (
                "while true do {\n  ScrapeText(//h3[1])\n  Click(//span[@class='next'][1])\n}",
                vec![with_next.clone(), with_next.clone(), with_next.clone()],
            ),
            (
                "foreach %r0 in Dscts(eps, ul) do {\n  foreach %r1 in Children(%r0, li) do {\n    ScrapeText(%r1)\n  }\n}",
                vec![lists.clone(), lists.clone(), lists.clone()],
            ),
        ];
        for (src, doms) in cases {
            check_matches_execute(src, &doms);
        }
    }

    #[test]
    fn prefix_runs_are_prefixes_of_longer_runs() {
        // Determinism in the DOM prefix: stepping k DOMs yields the first
        // k actions of stepping k+1 DOMs — the property the incremental
        // fast path rests on.
        let anchors = dom("<html><a>1</a><a>2</a><a>3</a><a>4</a></html>");
        let src = "foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}";
        let doms: Vec<Arc<Dom>> = (0..4).map(|_| anchors.clone()).collect();
        let full = drive(src, &doms);
        for k in 0..doms.len() {
            assert_eq!(drive(src, &doms[..k]), full[..k.min(full.len())]);
        }
    }

    #[test]
    fn finishes_without_consuming_the_last_dom() {
        let anchors = dom("<html><a>1</a></html>");
        let prog =
            parse_program("foreach %r0 in Dscts(eps, a) do {\n  ScrapeText(%r0)\n}\n").unwrap();
        let mut s = Stepper::new(prog.statements(), input());
        assert!(s.step(&anchors).unwrap().is_some()); // scrape a[1]
        assert!(s.step(&anchors).unwrap().is_none()); // a[2] invalid: S-Term, done
        assert!(s.finished());
        assert!(s.step(&anchors).unwrap().is_none()); // stays finished
    }

    #[test]
    fn unbound_variable_errors_and_finishes() {
        let d = dom("<html></html>");
        let prog = parse_program("Click(%r7)").unwrap();
        let mut s = Stepper::new(prog.statements(), input());
        assert!(s.step(&d).is_err());
        assert!(s.finished());
    }
}
