//! Action and trace consistency (paper Def. 4.1's auxiliary relation).
//!
//! Two actions are consistent *given a DOM* when they are the same kind of
//! action and their arguments match; selector arguments match when they
//! denote the **same DOM node** on that DOM (not when they are syntactically
//! equal — the whole point of selector search is that the synthesized
//! program uses different selectors than the recorded absolute XPaths).

use std::sync::Arc;

use webrobot_dom::{Dom, Path};
use webrobot_lang::Action;

/// `true` iff `p1` and `p2` denote the same node on `dom`.
///
/// Both must resolve: a selector that denotes nothing matches nothing
/// (including another selector that denotes nothing).
pub fn same_node(p1: &Path, p2: &Path, dom: &Dom) -> bool {
    match (p1.resolve(dom), p2.resolve(dom)) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// Consistency of two actions given the DOM both were (or would be)
/// performed on.
pub fn action_consistent(a: &Action, b: &Action, dom: &Dom) -> bool {
    use Action::*;
    match (a, b) {
        (Click(p1), Click(p2))
        | (ScrapeText(p1), ScrapeText(p2))
        | (ScrapeLink(p1), ScrapeLink(p2))
        | (Download(p1), Download(p2)) => same_node(p1, p2, dom),
        (GoBack, GoBack) | (ExtractUrl, ExtractUrl) => true,
        (SendKeys(p1, s1), SendKeys(p2, s2)) => s1 == s2 && same_node(p1, p2, dom),
        (EnterData(p1, v1), EnterData(p2, v2)) => v1 == v2 && same_node(p1, p2, dom),
        _ => false,
    }
}

/// Consistency of two equal-length action traces given a DOM trace: the
/// `i`-th actions must be consistent on the `i`-th DOM.
///
/// Returns `false` when lengths differ or when `doms` is shorter than the
/// traces.
pub fn trace_consistent(a: &[Action], b: &[Action], doms: &[Arc<Dom>]) -> bool {
    a.len() == b.len()
        && a.len() <= doms.len()
        && a.iter()
            .zip(b)
            .zip(doms)
            .all(|((x, y), dom)| action_consistent(x, y, dom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_data::{PathSeg, ValuePath};
    use webrobot_dom::parse_html;

    fn dom() -> Dom {
        parse_html(
            "<html><body><div class='nav'><a>skip</a></div>\
             <div class='item'><h3>one</h3></div></body></html>",
        )
        .unwrap()
    }

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn different_selectors_same_node_are_consistent() {
        let d = dom();
        let abs = Action::ScrapeText(p("/body[1]/div[2]/h3[1]"));
        let alt = Action::ScrapeText(p("//div[@class='item'][1]//h3[1]"));
        assert!(action_consistent(&abs, &alt, &d));
    }

    #[test]
    fn same_kind_different_node_is_inconsistent() {
        let d = dom();
        let a = Action::Click(p("//a[1]"));
        let b = Action::Click(p("//h3[1]"));
        assert!(!action_consistent(&a, &b, &d));
    }

    #[test]
    fn different_kinds_are_inconsistent() {
        let d = dom();
        let a = Action::Click(p("//h3[1]"));
        let b = Action::ScrapeText(p("//h3[1]"));
        assert!(!action_consistent(&a, &b, &d));
    }

    #[test]
    fn unresolvable_selector_matches_nothing() {
        let d = dom();
        let ghost = Action::Click(p("//div[9]"));
        assert!(!action_consistent(&ghost, &ghost, &d));
    }

    #[test]
    fn enter_data_compares_value_paths_syntactically() {
        let d = dom();
        let path1 = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(1)]);
        let path2 = ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(2)]);
        let a = Action::EnterData(p("//h3[1]"), path1.clone());
        assert!(action_consistent(
            &a,
            &Action::EnterData(p("//h3[1]"), path1),
            &d
        ));
        assert!(!action_consistent(
            &a,
            &Action::EnterData(p("//h3[1]"), path2),
            &d
        ));
    }

    #[test]
    fn send_keys_compares_strings() {
        let d = dom();
        let a = Action::SendKeys(p("//h3[1]"), "x".into());
        let b = Action::SendKeys(p("//h3[1]"), "y".into());
        assert!(!action_consistent(&a, &b, &d));
    }

    #[test]
    fn trace_consistency_is_pointwise() {
        let d = Arc::new(dom());
        let xs = vec![Action::GoBack, Action::Click(p("//h3[1]"))];
        let ys = vec![Action::GoBack, Action::Click(p("/body[1]/div[2]/h3[1]"))];
        assert!(trace_consistent(&xs, &ys, &[d.clone(), d.clone()]));
        assert!(!trace_consistent(&xs, &ys[..1], &[d.clone(), d.clone()]));
        assert!(!trace_consistent(&xs, &ys, &[d]));
    }
}
