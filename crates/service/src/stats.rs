//! Aggregate service statistics: the versioned [`StatsV2`] shape the
//! manager maintains internally and the `metrics` wire response exposes,
//! plus the flat legacy [`ServiceStats`] blob the original `stats`
//! response (and the persisted metadata record) is pinned to.
//!
//! [`StatsV2`] is the source of truth: the manager bumps its grouped
//! counters directly, and every legacy surface is derived through
//! [`StatsV2::legacy`] / [`StatsV2::from_legacy`] (lossless in both
//! directions, which is what keeps the old `{"kind":"stats"}` response and
//! the on-disk metadata format byte-identical to previous releases).

/// Session lifecycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Sessions ever created.
    pub created: u64,
    /// Sessions closed (finished and forgotten).
    pub closed: u64,
    /// Sessions currently live (browser + synthesizer in memory). A
    /// point-in-time gauge, filled in when a snapshot is taken.
    pub live: u64,
    /// Sessions currently evicted to snapshots. A point-in-time gauge,
    /// filled in when a snapshot is taken.
    pub evicted: u64,
}

/// Event dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Events dispatched successfully.
    pub ok: u64,
    /// Events rejected with a typed error.
    pub rejected: u64,
}

/// Residency churn counters (the LRU eviction machinery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyCounters {
    /// Live→snapshot evictions performed.
    pub evictions: u64,
    /// Snapshot→live restorations performed.
    pub restores: u64,
}

/// Versioned, grouped service statistics — the v2 shape shared by the
/// `metrics` wire response, the manager's internal accounting, and
/// [`ServiceStats::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsV2 {
    /// Session lifecycle counters.
    pub sessions: SessionCounters,
    /// Event dispatch counters.
    pub events: EventCounters,
    /// Residency churn counters.
    pub residency: ResidencyCounters,
}

impl StatsV2 {
    /// Field-wise sum — how a sharded front end aggregates its shards'
    /// counters into one service-wide view. Every field is a disjoint
    /// per-shard count, so addition is exact.
    pub fn absorb(&mut self, other: &StatsV2) {
        self.sessions.created += other.sessions.created;
        self.sessions.closed += other.sessions.closed;
        self.sessions.live += other.sessions.live;
        self.sessions.evicted += other.sessions.evicted;
        self.events.ok += other.events.ok;
        self.events.rejected += other.events.rejected;
        self.residency.evictions += other.residency.evictions;
        self.residency.restores += other.residency.restores;
    }

    /// Projects into the flat legacy shape (lossless).
    pub fn legacy(&self) -> ServiceStats {
        ServiceStats {
            sessions_created: self.sessions.created,
            sessions_closed: self.sessions.closed,
            live_sessions: self.sessions.live,
            evicted_sessions: self.sessions.evicted,
            events_ok: self.events.ok,
            events_rejected: self.events.rejected,
            evictions: self.residency.evictions,
            restores: self.residency.restores,
        }
    }

    /// Lifts the flat legacy shape into v2 (lossless) — how counters
    /// persisted in the legacy metadata record are re-adopted.
    pub fn from_legacy(legacy: &ServiceStats) -> StatsV2 {
        StatsV2 {
            sessions: SessionCounters {
                created: legacy.sessions_created,
                closed: legacy.sessions_closed,
                live: legacy.live_sessions,
                evicted: legacy.evicted_sessions,
            },
            events: EventCounters {
                ok: legacy.events_ok,
                rejected: legacy.events_rejected,
            },
            residency: ResidencyCounters {
                evictions: legacy.evictions,
                restores: legacy.restores,
            },
        }
    }
}

/// Aggregate service statistics in the flat legacy shape (the wire
/// protocol's `stats` reply and the persisted metadata record).
///
/// New code should read [`StatsV2`] (via `SessionManager::stats_v2`, the
/// sharded equivalent, or the `{"kind":"metrics"}` wire request); this
/// shape is kept for the byte-pinned legacy `{"kind":"stats"}` response
/// and the on-disk metadata format, and converts losslessly both ways.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions closed (finished and forgotten).
    pub sessions_closed: u64,
    /// Sessions currently live (browser + synthesizer in memory).
    pub live_sessions: u64,
    /// Sessions currently evicted to snapshots.
    pub evicted_sessions: u64,
    /// Events dispatched successfully.
    pub events_ok: u64,
    /// Events rejected with a typed error.
    pub events_rejected: u64,
    /// Live→snapshot evictions performed.
    pub evictions: u64,
    /// Snapshot→live restorations performed.
    pub restores: u64,
}

impl ServiceStats {
    /// Field-wise sum, delegated through the v2 shape so both
    /// representations aggregate by the same rule.
    pub fn absorb(&mut self, other: &ServiceStats) {
        let mut v2 = StatsV2::from_legacy(self);
        v2.absorb(&StatsV2::from_legacy(other));
        *self = v2.legacy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsV2 {
        StatsV2 {
            sessions: SessionCounters {
                created: 5,
                closed: 2,
                live: 2,
                evicted: 1,
            },
            events: EventCounters {
                ok: 40,
                rejected: 3,
            },
            residency: ResidencyCounters {
                evictions: 4,
                restores: 3,
            },
        }
    }

    #[test]
    fn legacy_round_trips_losslessly() {
        let v2 = sample();
        assert_eq!(StatsV2::from_legacy(&v2.legacy()), v2);
        let legacy = v2.legacy();
        assert_eq!(StatsV2::from_legacy(&legacy).legacy(), legacy);
    }

    #[test]
    fn absorb_agrees_between_shapes() {
        let mut v2 = sample();
        v2.absorb(&sample());
        let mut legacy = sample().legacy();
        legacy.absorb(&sample().legacy());
        assert_eq!(v2.legacy(), legacy);
        assert_eq!(v2.sessions.created, 10);
        assert_eq!(v2.events.ok, 80);
    }
}
