//! Shard the session service across threads: a [`ShardedManager`] owns N
//! worker threads, each running a plain single-threaded [`SessionManager`],
//! and routes every request to the shard that owns its session.
//!
//! Sessions are share-nothing (one browser + one synthesizer each, made
//! `Send` by the `Rc`→`Arc` refactor underneath), so the natural unit of
//! parallelism is the whole session: a session is pinned to one shard for
//! its entire life, every one of its requests is handled on that shard's
//! thread in arrival order, and shards never touch each other's state. No
//! locks are held while a session executes — the only shared state is the
//! create-sequencing counter.
//!
//! **Routing guarantee.** `s-<n>` lives on shard `(n − 1) mod N`, forever.
//! Create requests are sequenced so the shards jointly issue the same
//! `s-1, s-2, …` id sequence a single manager would (shard `k` of `N` is
//! configured to issue `k+1, k+1+N, …`, and the router dispatches the
//! `j`-th successful create to shard `(j − 1) mod N`). Combined with the
//! FIFO per-shard channel and the synchronous request/response boundary,
//! a client that drives its session one request at a time observes
//! *byte-identical* wire responses to an unsharded [`SessionManager`] —
//! pinned for shard counts {1, 2, 4} by `tests/sharded.rs`.
//!
//! [`ShardedManager`] is `Sync`: any number of front-end threads may call
//! [`handle_json`](ShardedManager::handle_json) concurrently, and requests
//! for different sessions proceed in parallel on different shards. That is
//! the scaling story measured by the `sharded_service` Criterion group in
//! `crates/bench/benches/service.rs`.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use webrobot_browser::Site;
use webrobot_data::Value;

use crate::manager::{error_response, ServiceConfig, ServiceError, ServiceStats, SessionManager};
use crate::protocol::{Request, Response};
use crate::store::{SnapshotStore, StoreError};

/// One unit of work sent to a shard thread.
enum Job {
    /// Handle one wire request and send the response back.
    Request(Request, Sender<Response>),
    /// Register a site in this shard's catalog and acknowledge.
    Register {
        name: String,
        site: Arc<Site>,
        input: Value,
        ack: Sender<()>,
    },
}

/// Serializes session creation so the global id sequence (and therefore
/// create→shard routing) is deterministic.
#[derive(Debug)]
struct CreateRouter {
    /// Successful creates so far, across all shards; the next create will
    /// be `s-<created + 1>` and must go to shard `created mod N`.
    created: u64,
}

/// N shard threads, each owning a plain [`SessionManager`], behind the
/// same v1 string-in/string-out boundary.
///
/// See the module docs for the routing guarantee. Caps in
/// [`ServiceConfig`] (`max_live_sessions`, `max_sessions`) apply *per
/// shard*: total capacity scales with the shard count.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_service::{ShardedManager, ServiceConfig};
/// # use webrobot_lang::Value;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let manager = ShardedManager::new(ServiceConfig::default(), 4);
/// manager.register_site("anchors", Arc::new(b.start_at(home).finish()),
///     Value::Object(vec![]));
///
/// // Same wire boundary as `SessionManager`, but `&self`: many threads
/// // may drive their sessions concurrently.
/// let reply = manager.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
/// assert!(reply.contains(r#""session":"s-1""#), "{reply}");
/// let reply = manager.handle_json(
///     r#"{"v": 1, "kind": "event", "session": "s-1", "event":
///        {"type": "demonstrate", "action": {"op": "scrape_text", "selector": "/a[1]"}}}"#,
/// );
/// assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedManager {
    shards: Vec<Sender<Job>>,
    router: Mutex<CreateRouter>,
    workers: Vec<JoinHandle<()>>,
}

// The whole point: front-end threads share one `&ShardedManager`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedManager>();
};

impl ShardedManager {
    /// Spawns `shards` worker threads (clamped to ≥ 1), each owning a
    /// [`SessionManager`] built from `cfg`.
    pub fn new(cfg: ServiceConfig, shards: usize) -> ShardedManager {
        let shards = shards.max(1);
        let managers = (0..shards)
            .map(|k| SessionManager::new(cfg.clone()).with_id_sequence(k as u64 + 1, shards as u64))
            .collect();
        ShardedManager::spawn(managers, 0)
    }

    /// The durable form of [`ShardedManager::new`]: one persistent
    /// [`SnapshotStore`] per shard (the shard count is `stores.len()`),
    /// each shard **adopting the sessions it owns** from its store — this
    /// is how a whole sharded deployment survives a process restart.
    ///
    /// The store layout is shard-count-stable (session records are keyed
    /// by id only), so all stores may point at one shared directory: at
    /// shard count `N`, shard `k` adopts exactly the ids
    /// `≡ k+1 (mod N)`, and together the shards partition the store.
    /// Reopening at the *same* shard count also finds each shard's
    /// metadata record (`shard-<k+1>-of-<N>`), making the restart
    /// byte-unobservable on the wire — counters, id sequence and LRU
    /// clocks all continue (`tests/persistence.rs` pins this at shard
    /// counts 1, 2 and 4). Reopening at a *different* count keeps every
    /// session but starts fresh counters, and the dense id sequence may
    /// skip (never collide).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when `stores` is empty or any store fails to open
    /// and enumerate (a corrupt record fails the reopen fast; see
    /// [`SessionManager::with_store`]).
    pub fn with_stores(
        cfg: ServiceConfig,
        stores: Vec<Box<dyn SnapshotStore>>,
    ) -> Result<ShardedManager, StoreError> {
        if stores.is_empty() {
            return Err(StoreError::io("with_stores needs at least one store"));
        }
        let shards = stores.len();
        let managers = stores
            .into_iter()
            .enumerate()
            .map(|(k, store)| {
                SessionManager::with_store_sequenced(
                    cfg.clone(),
                    store,
                    k as u64 + 1,
                    shards as u64,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The create router resumes where the previous process stopped:
        // its cursor is exactly the number of successful creates ever,
        // which the adopted metadata carries as `sessions_created`.
        let created: u64 = managers.iter().map(|m| m.stats().sessions_created).sum();
        Ok(ShardedManager::spawn(managers, created))
    }

    /// Spawns one worker thread per prepared manager.
    fn spawn(managers: Vec<SessionManager>, created: u64) -> ShardedManager {
        let mut senders = Vec::with_capacity(managers.len());
        let mut workers = Vec::with_capacity(managers.len());
        for (k, manager) in managers.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job>();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("webrobot-shard-{k}"))
                    .spawn(move || shard_loop(manager, rx))
                    .expect("spawn shard thread"),
            );
            senders.push(tx);
        }
        ShardedManager {
            shards: senders,
            router: Mutex::new(CreateRouter { created }),
            workers,
        }
    }

    /// How many shard threads serve this manager.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a site on **every** shard (a session may be created on
    /// any of them), blocking until all shards acknowledge so a `create`
    /// sent immediately afterwards cannot race the registration.
    pub fn register_site(&self, name: impl Into<String>, site: Arc<Site>, input: Value) {
        let name = name.into();
        let mut acks = Vec::with_capacity(self.shards.len());
        for tx in &self.shards {
            let (ack, ack_rx) = mpsc::channel();
            if tx
                .send(Job::Register {
                    name: name.clone(),
                    site: site.clone(),
                    input: input.clone(),
                    ack,
                })
                .is_ok()
            {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            ack.recv().ok();
        }
    }

    /// Handles one typed request, routing it to the owning shard. Total,
    /// like [`SessionManager::handle`]: every failure is a
    /// [`Response::Error`].
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Create { .. } => self.create(request),
            Request::Event { ref session, .. }
            | Request::Outputs { ref session, .. }
            | Request::Close { ref session, .. } => match session.parse() {
                Ok(id) => {
                    let shard = self.shard_of(id);
                    self.roundtrip(shard, request)
                }
                // Byte-identical to the unsharded manager's rejection of a
                // syntactically invalid id.
                Err(()) => error_response(&ServiceError::UnknownSession(session.clone())),
            },
            Request::Stats => Response::Stats(self.stats()),
            // Durability requests fan out to every shard (each owns a
            // disjoint slice of the sessions and its own store handle)
            // and report the summed session count.
            Request::Checkpoint | Request::Recover => self.broadcast_durability(request),
        }
    }

    /// The string-in/string-out boundary, verbatim from
    /// [`SessionManager::handle_json`] — but `&self`, so any number of
    /// threads may call it concurrently.
    pub fn handle_json(&self, request: &str) -> String {
        match Request::from_json(request) {
            Ok(request) => self.handle(request),
            Err(e) => Response::from(e),
        }
        .to_json()
    }

    /// Aggregate statistics, summed field-wise over all shards. Each
    /// counter counts disjoint per-shard events, so the sum is exact
    /// (pinned against the unsharded manager by `tests/sharded.rs`).
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for reply in self.fan_out(&Request::Stats) {
            if let Some(Response::Stats(stats)) = reply {
                total.absorb(&stats);
            }
        }
        total
    }

    // ───────────────────── internals ─────────────────────

    /// Fans a `checkpoint`/`recover` request out to every shard and sums
    /// the per-shard session counts; the first shard error (in shard
    /// order) wins (shards already flushed stay flushed — both
    /// operations are idempotent). All shards are sent the request
    /// *before* any reply is awaited, so the shards' store I/O runs
    /// concurrently and wire-visible latency is bounded by the slowest
    /// shard, not the sum.
    fn broadcast_durability(&self, request: Request) -> Response {
        let mut total = 0usize;
        for (shard, reply) in self.fan_out(&request).into_iter().enumerate() {
            match reply {
                Some(Response::Checkpointed { sessions } | Response::Recovered { sessions }) => {
                    total += sessions
                }
                Some(error) => return error,
                // Unreachable by design, exactly as in `roundtrip`.
                None => {
                    return Response::Error {
                        code: "shard_down".to_string(),
                        message: format!("shard {shard} is not serving requests"),
                    }
                }
            }
        }
        match request {
            Request::Checkpoint => Response::Checkpointed { sessions: total },
            _ => Response::Recovered { sessions: total },
        }
    }

    /// Sends `request` to **every** shard before awaiting any reply, so
    /// the shards process it concurrently (latency is bounded by the
    /// slowest shard, not the sum); replies come back in shard order,
    /// `None` marking a stopped shard (unreachable by design).
    fn fan_out(&self, request: &Request) -> Vec<Option<Response>> {
        let pending: Vec<_> = self
            .shards
            .iter()
            .map(|tx| {
                let (reply, reply_rx) = mpsc::channel();
                let sent = tx.send(Job::Request(request.clone(), reply)).is_ok();
                (sent, reply_rx)
            })
            .collect();
        pending
            .into_iter()
            .map(|(sent, rx)| if sent { rx.recv().ok() } else { None })
            .collect()
    }

    /// Which shard owns session id `n`: `(n − 1) mod N`, the inverse of
    /// the per-shard id sequence `k+1, k+1+N, …`. No shard ever issues
    /// `s-0`, but the string parses, so route it benignly (to shard 0,
    /// which answers `unknown_session` exactly like the unsharded
    /// manager) instead of underflowing.
    fn shard_of(&self, id: crate::SessionId) -> usize {
        (id.raw().saturating_sub(1) % self.shards.len() as u64) as usize
    }

    /// Sequenced create: pick the shard whose turn it is in the global id
    /// sequence, and advance the sequence only if the shard actually
    /// issued the id (failed creates — unknown site, session cap — must
    /// not burn ids, exactly like the unsharded manager).
    ///
    /// A shard that is *full* (`too_many_sessions`) must not wedge the
    /// whole service while its neighbors have capacity, so the create
    /// fails over around the ring and only reports `too_many_sessions`
    /// when every shard is full. Failover is the one place the dense
    /// `s-1, s-2, …` sequence can skip: a session created on a non-turn
    /// shard takes that shard's next stride id (ids stay unique and
    /// route correctly — `(n−1) mod N` identifies the issuing shard by
    /// construction).
    fn create(&self, request: Request) -> Response {
        let mut router = self.router.lock().unwrap_or_else(PoisonError::into_inner);
        let first = (router.created % self.shards.len() as u64) as usize;
        let mut response = None;
        for offset in 0..self.shards.len() {
            let shard = (first + offset) % self.shards.len();
            let attempt = self.roundtrip(shard, request.clone());
            let full =
                matches!(&attempt, Response::Error { code, .. } if code == "too_many_sessions");
            response = Some(attempt);
            if !full {
                break;
            }
        }
        let response = response.expect("at least one shard");
        if matches!(response, Response::Created { .. }) {
            router.created += 1;
        }
        response
    }

    /// Sends one request to a shard and waits for its response.
    fn roundtrip(&self, shard: usize, request: Request) -> Response {
        let (reply, reply_rx) = mpsc::channel();
        if self.shards[shard]
            .send(Job::Request(request, reply))
            .is_ok()
        {
            if let Ok(response) = reply_rx.recv() {
                return response;
            }
        }
        // Unreachable by design — shard loops only exit when the sender
        // side is dropped, i.e. during `Drop` — but the boundary stays
        // total instead of panicking.
        Response::Error {
            code: "shard_down".to_string(),
            message: format!("shard {shard} is not serving requests"),
        }
    }
}

impl Drop for ShardedManager {
    fn drop(&mut self) {
        // Disconnect every shard channel so the workers' `recv` loops end,
        // then join them: no detached threads outlive the manager.
        self.shards.clear();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

/// One shard thread: drain jobs in arrival order until the manager side
/// hangs up. Per-session ordering follows from the channel being FIFO and
/// a session being pinned to exactly one shard.
fn shard_loop(mut manager: SessionManager, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Request(request, reply) => {
                // A disconnected reply channel means the caller gave up
                // (manager dropped mid-request); nothing to do.
                reply.send(manager.handle(request)).ok();
            }
            Job::Register {
                name,
                site,
                input,
                ack,
            } => {
                manager.register_site(name, site, input);
                ack.send(()).ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;
    use webrobot_interact::Event;
    use webrobot_lang::Action;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn sharded(shards: usize) -> ShardedManager {
        let m = ShardedManager::new(ServiceConfig::default(), shards);
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        m
    }

    fn create(m: &ShardedManager) -> String {
        let reply = m.handle(Request::Create {
            site: "anchors".to_string(),
            input: None,
            deadline_ms: None,
        });
        match reply {
            Response::Created { session, .. } => session,
            other => panic!("create failed: {}", other.to_json()),
        }
    }

    fn scrape(i: usize) -> Event {
        Event::Demonstrate(Action::ScrapeText(format!("/a[{i}]").parse().unwrap()))
    }

    #[test]
    fn ids_are_issued_in_the_global_sequence() {
        let m = sharded(4);
        for want in 1..=9 {
            assert_eq!(create(&m), format!("s-{want}"));
        }
        assert_eq!(m.stats().sessions_created, 9);
    }

    #[test]
    fn failed_creates_do_not_burn_ids() {
        let m = sharded(3);
        assert_eq!(create(&m), "s-1");
        let reply = m.handle(Request::Create {
            site: "nope".to_string(),
            input: None,
            deadline_ms: None,
        });
        assert!(matches!(reply, Response::Error { .. }));
        assert_eq!(create(&m), "s-2");
    }

    #[test]
    fn sessions_stick_to_their_shard_across_events() {
        let m = sharded(4);
        let ids: Vec<String> = (0..8).map(|_| create(&m)).collect();
        // Interleave events across all sessions; every session progresses
        // independently on its own shard.
        for i in 1..=2 {
            for id in &ids {
                let reply = m.handle(Request::Event {
                    session: id.clone(),
                    event: scrape(i),
                });
                assert!(
                    matches!(reply, Response::Event { .. }),
                    "{}",
                    reply.to_json()
                );
            }
        }
        let stats = m.stats();
        assert_eq!(stats.events_ok, 16);
        assert_eq!(stats.live_sessions, 8);
    }

    #[test]
    fn full_shards_fail_over_until_the_whole_service_is_full() {
        let m = ShardedManager::new(
            ServiceConfig {
                max_sessions: 1,
                ..ServiceConfig::default()
            },
            2,
        );
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        assert_eq!(create(&m), "s-1"); // shard 0
        assert_eq!(create(&m), "s-2"); // shard 1
        let reply = m.handle(Request::Create {
            site: "anchors".to_string(),
            input: None,
            deadline_ms: None,
        });
        assert!(
            matches!(&reply, Response::Error { code, .. } if code == "too_many_sessions"),
            "{}",
            reply.to_json()
        );
        // Freeing shard 1 lets the next create succeed even though the
        // round-robin turn points at the still-full shard 0. The id is
        // shard 1's next stride id (the dense sequence may skip under
        // cap pressure, never collide).
        m.handle(Request::Close {
            session: "s-2".to_string(),
        });
        assert_eq!(create(&m), "s-4");
        assert_eq!(m.stats().sessions_created, 3);
    }

    #[test]
    fn session_zero_is_a_typed_error_not_a_panic() {
        // "s-0" parses as a canonical id but no shard ever issues it;
        // routing must not underflow — the reply is the same
        // unknown_session error the unsharded manager gives.
        let m = sharded(4);
        let reply = m.handle_json(
            r#"{"v": 1, "kind": "event", "session": "s-0", "event": {"type": "finish"}}"#,
        );
        assert!(reply.contains(r#""code":"unknown_session""#), "{reply}");
        assert!(reply.contains("no session 's-0'"), "{reply}");
    }

    #[test]
    fn unknown_and_malformed_sessions_are_typed_errors() {
        let m = sharded(2);
        for session in ["s-99", "bogus", "s-007"] {
            let reply = m.handle_json(&format!(
                r#"{{"v": 1, "kind": "event", "session": "{session}", "event": {{"type": "finish"}}}}"#
            ));
            assert!(
                reply.contains(r#""code":"unknown_session""#),
                "{session} → {reply}"
            );
        }
    }

    #[test]
    fn concurrent_clients_drive_disjoint_sessions() {
        let m = sharded(4);
        let ids: Vec<String> = (0..8).map(|_| create(&m)).collect();
        std::thread::scope(|scope| {
            for id in &ids {
                let m = &m;
                scope.spawn(move || {
                    for i in 1..=2 {
                        let reply = m.handle(Request::Event {
                            session: id.clone(),
                            event: scrape(i),
                        });
                        assert!(
                            matches!(reply, Response::Event { .. }),
                            "{}",
                            reply.to_json()
                        );
                    }
                });
            }
        });
        assert_eq!(m.stats().events_ok, 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let m = sharded(3);
        create(&m);
        drop(m); // must not hang or leak threads
    }
}
