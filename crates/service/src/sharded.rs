//! Shard the session service across threads: a [`ShardedManager`] owns N
//! worker threads, each running a plain single-threaded [`SessionManager`],
//! and routes every request to the shard that owns its session.
//!
//! Sessions are share-nothing (one browser + one synthesizer each, made
//! `Send` by the `Rc`→`Arc` refactor underneath), so the natural unit of
//! parallelism is the whole session: a session is pinned to one shard for
//! its entire life, every one of its requests is handled on that shard's
//! thread in arrival order, and shards never touch each other's state. No
//! locks are held while a session executes — the only shared state is the
//! create-sequencing counter.
//!
//! **Quantum scheduling.** Within a shard, sessions do *not* run FIFO to
//! completion: each worker keeps a per-session run queue and round-robins
//! over the sessions that have work, giving each one a bounded synthesis
//! quantum ([`ServiceConfig::quantum`]) per turn via
//! [`SessionManager::handle_event_quantum`]. A session whose search
//! exhausts its quantum is *parked* and resumed on its next turn, so one
//! pathological demonstration degrades only its own session's latency —
//! its shard-mates keep being served between its slices. Per-session
//! order is still strict FIFO (a session's next request never starts
//! before its previous one finished), and the sliced search concludes
//! with exactly the result an unsliced run would produce, so a client
//! that drives its session one request at a time still observes
//! *byte-identical* wire responses to an unsharded [`SessionManager`].
//! `quantum: None` restores the legacy run-to-completion behavior.
//!
//! **Backpressure.** Each shard admits at most
//! [`ServiceConfig::max_queued_per_shard`] requests in flight; beyond
//! that the front end answers with the typed `overloaded` error instead
//! of queueing without bound. **Worker panics** mark the shard down:
//! queued jobs are failed with `shard_down` immediately (not silently
//! dropped), later requests are rejected without blocking, and create
//! fails over to the surviving shards.
//!
//! **Routing guarantee.** `s-<n>` lives on shard `(n − 1) mod N`, forever.
//! Create requests are sequenced so the shards jointly issue the same
//! `s-1, s-2, …` id sequence a single manager would (shard `k` of `N` is
//! configured to issue `k+1, k+1+N, …`, and the router dispatches the
//! `j`-th successful create to shard `(j − 1) mod N`). Byte-identity to
//! the unsharded manager under sequential driving is pinned for shard
//! counts {1, 2, 4} by `tests/sharded.rs`.
//!
//! [`ShardedManager`] is `Sync`: any number of front-end threads may call
//! [`handle_json`](ShardedManager::handle_json) concurrently, and requests
//! for different sessions proceed in parallel on different shards. That is
//! the scaling story measured by the `sharded_service` Criterion group in
//! `crates/bench/benches/service.rs`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use webrobot_browser::Site;
use webrobot_data::Value;
use webrobot_interact::Event;
use webrobot_metrics::{Metrics, RequestKind};

use crate::config::ServiceConfig;
use crate::manager::{error_response, ServiceError, SessionManager};
use crate::protocol::{self, Request, Response};
use crate::stats::{ServiceStats, StatsV2};
use crate::store::{SnapshotStore, StoreError};

/// One unit of work sent to a shard thread.
enum Job {
    /// Handle one wire request and send the response back.
    Request(Request, Sender<Response>),
    /// Register a site in this shard's catalog and acknowledge.
    Register {
        name: String,
        site: Arc<Site>,
        input: Value,
        ack: Sender<()>,
    },
}

/// Serializes session creation so the global id sequence (and therefore
/// create→shard routing) is deterministic.
#[derive(Debug)]
struct CreateRouter {
    /// Successful creates so far, across all shards; the next create will
    /// be `s-<created + 1>` and must go to shard `created mod N`.
    created: u64,
}

/// The front end's handle to one shard worker.
#[derive(Debug)]
struct ShardHandle {
    tx: Sender<Job>,
    /// Requests admitted but not yet answered; the admission limit is
    /// checked against this before every send. The worker releases the
    /// slot *before* delivering the reply, so a caller that has received
    /// a response is guaranteed re-admission (no spurious `overloaded`
    /// on an immediate follow-up request).
    inflight: Arc<AtomicUsize>,
    /// Set by the worker's panic guard; once down, requests are rejected
    /// with `shard_down` up front instead of blocking on a dead thread.
    down: Arc<AtomicBool>,
}

impl ShardHandle {
    /// Reserves one in-flight slot, or reports the queue full.
    fn try_admit(&self, limit: usize) -> bool {
        self.inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_ok()
    }
}

/// N shard threads, each owning a plain [`SessionManager`], behind the
/// same v1 string-in/string-out boundary.
///
/// See the module docs for the routing guarantee and the quantum
/// scheduler. Caps in [`ServiceConfig`] (`max_live_sessions`,
/// `max_sessions`, `max_queued_per_shard`) apply *per shard*: total
/// capacity scales with the shard count.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_service::{ShardedManager, ServiceConfig};
/// # use webrobot_lang::Value;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let manager = ShardedManager::new(ServiceConfig::default(), 4);
/// manager.register_site("anchors", Arc::new(b.start_at(home).finish()),
///     Value::Object(vec![]));
///
/// // Same wire boundary as `SessionManager`, but `&self`: many threads
/// // may drive their sessions concurrently.
/// let reply = manager.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
/// assert!(reply.contains(r#""session":"s-1""#), "{reply}");
/// let reply = manager.handle_json(
///     r#"{"v": 1, "kind": "event", "session": "s-1", "event":
///        {"type": "demonstrate", "action": {"op": "scrape_text", "selector": "/a[1]"}}}"#,
/// );
/// assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedManager {
    shards: Vec<ShardHandle>,
    router: Mutex<CreateRouter>,
    workers: Vec<JoinHandle<()>>,
    /// Admission limit per shard, from [`ServiceConfig::max_queued_per_shard`].
    max_queued: usize,
    /// Shared with every shard worker (one gauge set per shard); request
    /// latency is recorded here, at the front-end boundary, exactly once.
    metrics: Arc<Metrics>,
}

// The whole point: front-end threads share one `&ShardedManager`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedManager>();
};

impl ShardedManager {
    /// Spawns `shards` worker threads (clamped to ≥ 1), each owning a
    /// [`SessionManager`] built from `cfg`.
    pub fn new(cfg: ServiceConfig, shards: usize) -> ShardedManager {
        let shards = shards.max(1);
        let managers = (0..shards)
            .map(|k| SessionManager::new(cfg.clone()).with_id_sequence(k as u64 + 1, shards as u64))
            .collect();
        ShardedManager::spawn(managers, 0, &cfg)
    }

    /// The durable form of [`ShardedManager::new`]: one persistent
    /// [`SnapshotStore`] per shard (the shard count is `stores.len()`),
    /// each shard **adopting the sessions it owns** from its store — this
    /// is how a whole sharded deployment survives a process restart.
    ///
    /// The store layout is shard-count-stable (session records are keyed
    /// by id only), so all stores may point at one shared directory: at
    /// shard count `N`, shard `k` adopts exactly the ids
    /// `≡ k+1 (mod N)`, and together the shards partition the store.
    /// Reopening at the *same* shard count also finds each shard's
    /// metadata record (`shard-<k+1>-of-<N>`), making the restart
    /// byte-unobservable on the wire — counters, id sequence and LRU
    /// clocks all continue (`tests/persistence.rs` pins this at shard
    /// counts 1, 2 and 4). Reopening at a *different* count keeps every
    /// session but starts fresh counters, and the dense id sequence may
    /// skip (never collide).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when `stores` is empty or any store fails to open
    /// and enumerate (a corrupt record fails the reopen fast; see
    /// [`SessionManager::with_store`]).
    pub fn with_stores(
        cfg: ServiceConfig,
        stores: Vec<Box<dyn SnapshotStore>>,
    ) -> Result<ShardedManager, StoreError> {
        if stores.is_empty() {
            return Err(StoreError::io("with_stores needs at least one store"));
        }
        let shards = stores.len();
        let managers = stores
            .into_iter()
            .enumerate()
            .map(|(k, store)| {
                SessionManager::with_store_sequenced(
                    cfg.clone(),
                    store,
                    k as u64 + 1,
                    shards as u64,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The create router resumes where the previous process stopped:
        // its cursor is exactly the number of successful creates ever,
        // which the adopted metadata carries as `sessions_created`.
        let created: u64 = managers.iter().map(|m| m.stats().sessions_created).sum();
        Ok(ShardedManager::spawn(managers, created, &cfg))
    }

    /// Spawns one worker thread per prepared manager.
    fn spawn(
        mut managers: Vec<SessionManager>,
        created: u64,
        cfg: &ServiceConfig,
    ) -> ShardedManager {
        // One shared metrics registry: each shard records into its own
        // gauge slot, while request accounting stays at the front end
        // (the workers' managers are told not to double-count).
        let metrics = Arc::new(Metrics::new(managers.len()));
        for (k, manager) in managers.iter_mut().enumerate() {
            manager.attach_metrics(metrics.clone(), k, false);
        }
        let mut shards = Vec::with_capacity(managers.len());
        let mut workers = Vec::with_capacity(managers.len());
        for (k, manager) in managers.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job>();
            let ctx = ShardCtx {
                index: k,
                quantum: cfg.quantum,
                inflight: Arc::new(AtomicUsize::new(0)),
                down: Arc::new(AtomicBool::new(false)),
                metrics: metrics.clone(),
            };
            shards.push(ShardHandle {
                tx,
                inflight: ctx.inflight.clone(),
                down: ctx.down.clone(),
            });
            workers.push(
                std::thread::Builder::new()
                    .name(format!("webrobot-shard-{k}"))
                    .spawn(move || shard_loop(manager, rx, ctx))
                    .expect("spawn shard thread"),
            );
        }
        ShardedManager {
            shards,
            router: Mutex::new(CreateRouter { created }),
            workers,
            max_queued: cfg.max_queued_per_shard.max(1),
            metrics,
        }
    }

    /// How many shard threads serve this manager.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a site on **every** shard (a session may be created on
    /// any of them), blocking until all shards acknowledge so a `create`
    /// sent immediately afterwards cannot race the registration.
    pub fn register_site(&self, name: impl Into<String>, site: Arc<Site>, input: Value) {
        let name = name.into();
        let mut acks = Vec::with_capacity(self.shards.len());
        for handle in &self.shards {
            if handle.down.load(Ordering::SeqCst) {
                continue;
            }
            let (ack, ack_rx) = mpsc::channel();
            if handle
                .tx
                .send(Job::Register {
                    name: name.clone(),
                    site: site.clone(),
                    input: input.clone(),
                    ack,
                })
                .is_ok()
            {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            ack.recv().ok();
        }
    }

    /// Handles one typed request, routing it to the owning shard. Total,
    /// like [`SessionManager::handle`]: every failure is a
    /// [`Response::Error`] — including `overloaded` when the owning
    /// shard's admission queue is full and `shard_down` when its worker
    /// has panicked.
    pub fn handle(&self, request: Request) -> Response {
        let kind = protocol::request_kind(&request);
        let started = Instant::now();
        let response = self.handle_inner(request);
        self.metrics.record_request(
            kind,
            protocol::response_error_code(&response),
            started.elapsed(),
        );
        response
    }

    /// [`handle`](ShardedManager::handle) minus the metrics boundary.
    fn handle_inner(&self, request: Request) -> Response {
        match request {
            Request::Create { .. } => self.create(request),
            Request::Event { ref session, .. }
            | Request::Outputs { ref session, .. }
            | Request::Close { ref session, .. } => match session.parse() {
                Ok(id) => {
                    let shard = self.shard_of(id);
                    self.roundtrip(shard, request)
                }
                // Byte-identical to the unsharded manager's rejection of a
                // syntactically invalid id.
                Err(()) => error_response(&ServiceError::UnknownSession(session.clone())),
            },
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => self.metrics_response(),
            // Durability requests fan out to every shard (each owns a
            // disjoint slice of the sessions and its own store handle)
            // and report the summed session count.
            Request::Checkpoint | Request::Recover => self.broadcast_durability(request),
        }
    }

    /// The string-in/string-out boundary, verbatim from
    /// [`SessionManager::handle_json`] — but `&self`, so any number of
    /// threads may call it concurrently.
    pub fn handle_json(&self, request: &str) -> String {
        match Request::from_json(request) {
            Ok(request) => self.handle(request),
            Err(e) => {
                self.metrics
                    .record_request(RequestKind::Malformed, Some(e.code()), Duration::ZERO);
                Response::from(e)
            }
        }
        .to_json()
    }

    /// Aggregate statistics in the flat legacy shape, summed field-wise
    /// over all shards (pinned against the unsharded manager by
    /// `tests/sharded.rs`). Shards that are down (or over their admission
    /// limit) are skipped.
    pub fn stats(&self) -> ServiceStats {
        self.stats_v2().legacy()
    }

    /// Aggregate statistics in the versioned grouped shape. Each counter
    /// counts disjoint per-shard events, so the field-wise sum is exact.
    pub fn stats_v2(&self) -> StatsV2 {
        let mut total = StatsV2::default();
        for reply in self.fan_out(&Request::Stats) {
            if let Some(Response::Stats(stats)) = reply {
                total.absorb(&StatsV2::from_legacy(&stats));
            }
        }
        total
    }

    /// The shared observability registry: request/lifecycle histograms,
    /// scheduler counters and one gauge set per shard.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Builds the `metrics` response: fans out to every shard so each
    /// refreshes its own gauge slot (and reports its counters), then
    /// overwrites the queue-depth gauges with the front end's in-flight
    /// counts and snapshots the shared registry.
    fn metrics_response(&self) -> Response {
        let mut stats = StatsV2::default();
        for reply in self.fan_out(&Request::Metrics) {
            if let Some(Response::Metrics { stats: shard, .. }) = reply {
                stats.absorb(&shard);
            }
        }
        for (shard, handle) in self.shards.iter().enumerate() {
            self.metrics
                .shard(shard)
                .set_queue_depth(handle.inflight.load(Ordering::SeqCst) as u64);
        }
        Response::Metrics {
            stats,
            metrics: Box::new(self.metrics.snapshot()),
        }
    }

    // ───────────────────── internals ─────────────────────

    /// Fans a `checkpoint`/`recover` request out to every shard and sums
    /// the per-shard session counts; the first shard error (in shard
    /// order) wins (shards already flushed stay flushed — both
    /// operations are idempotent). All shards are sent the request
    /// *before* any reply is awaited, so the shards' store I/O runs
    /// concurrently and wire-visible latency is bounded by the slowest
    /// shard, not the sum.
    fn broadcast_durability(&self, request: Request) -> Response {
        let mut total = 0usize;
        for (shard, reply) in self.fan_out(&request).into_iter().enumerate() {
            match reply {
                Some(Response::Checkpointed { sessions } | Response::Recovered { sessions }) => {
                    total += sessions
                }
                Some(error) => return error,
                None => return shard_down_response(shard),
            }
        }
        match request {
            Request::Checkpoint => Response::Checkpointed { sessions: total },
            _ => Response::Recovered { sessions: total },
        }
    }

    /// Sends `request` to **every** shard before awaiting any reply, so
    /// the shards process it concurrently (latency is bounded by the
    /// slowest shard, not the sum); replies come back in shard order. A
    /// down or overloaded shard contributes its typed error without
    /// being sent anything; `None` marks a shard that hung up mid-reply.
    fn fan_out(&self, request: &Request) -> Vec<Option<Response>> {
        enum Pending {
            Reply(Receiver<Response>),
            Immediate(Response),
        }
        let pending: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard, handle)| {
                if handle.down.load(Ordering::SeqCst) {
                    return Pending::Immediate(shard_down_response(shard));
                }
                if !handle.try_admit(self.max_queued) {
                    return Pending::Immediate(error_response(&ServiceError::Overloaded));
                }
                let (reply, reply_rx) = mpsc::channel();
                match handle.tx.send(Job::Request(request.clone(), reply)) {
                    Ok(()) => Pending::Reply(reply_rx),
                    Err(_) => {
                        handle.inflight.fetch_sub(1, Ordering::SeqCst);
                        Pending::Immediate(shard_down_response(shard))
                    }
                }
            })
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Reply(rx) => rx.recv().ok(),
                Pending::Immediate(response) => Some(response),
            })
            .collect()
    }

    /// Which shard owns session id `n`: `(n − 1) mod N`, the inverse of
    /// the per-shard id sequence `k+1, k+1+N, …`. No shard ever issues
    /// `s-0`, but the string parses, so route it benignly (to shard 0,
    /// which answers `unknown_session` exactly like the unsharded
    /// manager) instead of underflowing.
    fn shard_of(&self, id: crate::SessionId) -> usize {
        (id.raw().saturating_sub(1) % self.shards.len() as u64) as usize
    }

    /// Sequenced create: pick the shard whose turn it is in the global id
    /// sequence, and advance the sequence only if the shard actually
    /// issued the id (failed creates — unknown site, session cap — must
    /// not burn ids, exactly like the unsharded manager).
    ///
    /// A shard that is *full* (`too_many_sessions`) or *down* must not
    /// wedge the whole service while its neighbors have capacity, so the
    /// create fails over around the ring and only reports the error when
    /// every shard refuses. Failover is the one place the dense
    /// `s-1, s-2, …` sequence can skip: a session created on a non-turn
    /// shard takes that shard's next stride id (ids stay unique and
    /// route correctly — `(n−1) mod N` identifies the issuing shard by
    /// construction). An `overloaded` shard does *not* fail over: the
    /// condition is transient and the client should back off and retry.
    fn create(&self, request: Request) -> Response {
        let mut router = self.router.lock().unwrap_or_else(PoisonError::into_inner);
        let first = (router.created % self.shards.len() as u64) as usize;
        let mut response = None;
        for offset in 0..self.shards.len() {
            let shard = (first + offset) % self.shards.len();
            let attempt = self.roundtrip(shard, request.clone());
            let next_shard = matches!(&attempt, Response::Error { code, .. }
                if code == "too_many_sessions" || code == "shard_down");
            response = Some(attempt);
            if !next_shard {
                break;
            }
        }
        let response = response.expect("at least one shard");
        if matches!(response, Response::Created { .. }) {
            router.created += 1;
        }
        response
    }

    /// Sends one request to a shard and waits for its response. Rejects
    /// up front — without blocking — when the shard is down or its
    /// admission queue is full.
    fn roundtrip(&self, shard: usize, request: Request) -> Response {
        let handle = &self.shards[shard];
        if handle.down.load(Ordering::SeqCst) {
            return shard_down_response(shard);
        }
        if !handle.try_admit(self.max_queued) {
            return error_response(&ServiceError::Overloaded);
        }
        let (reply, reply_rx) = mpsc::channel();
        match handle.tx.send(Job::Request(request, reply)) {
            Ok(()) => match reply_rx.recv() {
                Ok(response) => response,
                // The worker died with our job in hand (panic guard ran,
                // or `Drop` raced us); the slot is written off with it.
                Err(_) => shard_down_response(shard),
            },
            Err(_) => {
                // Never reached the worker: give the slot back.
                handle.inflight.fetch_sub(1, Ordering::SeqCst);
                shard_down_response(shard)
            }
        }
    }
}

/// The typed error for a shard whose worker is gone.
fn shard_down_response(shard: usize) -> Response {
    Response::Error {
        code: "shard_down".to_string(),
        message: format!("shard {shard} is not serving requests"),
    }
}

impl Drop for ShardedManager {
    fn drop(&mut self) {
        // Disconnect every shard channel so the workers' `recv` loops end,
        // then join them: no detached threads outlive the manager.
        self.shards.clear();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

/// Per-worker scheduling context, shared with the front-end handle.
struct ShardCtx {
    index: usize,
    /// Synthesis budget per scheduling turn; `None` = run to completion.
    quantum: Option<Duration>,
    inflight: Arc<AtomicUsize>,
    down: Arc<AtomicBool>,
    /// Shared observability registry; the scheduler counts quanta and
    /// parks here, and the worker owns gauge slot `index`.
    metrics: Arc<Metrics>,
}

/// Far past any real synthesis timeout: "run this step to completion".
const RUN_TO_COMPLETION: Duration = Duration::from_secs(86_400);

/// One session's run queue on its shard.
#[derive(Default)]
struct SessionQueue {
    /// Requests not yet started, in arrival order.
    jobs: VecDeque<(Request, Sender<Response>)>,
    /// The in-flight event whose synthesis is parked mid-search, with the
    /// reply channel it still owes a response.
    parked: Option<(String, Sender<Response>)>,
}

impl SessionQueue {
    fn has_work(&self) -> bool {
        self.parked.is_some() || !self.jobs.is_empty()
    }
}

/// One shard thread: the panic guard around the scheduler. On a worker
/// panic the shard is marked down (so the front end stops routing to it),
/// the panic is logged once, and every job still queued in the channel is
/// failed with `shard_down` — queued callers get an answer instead of a
/// silent hang until the next request.
fn shard_loop(manager: SessionManager, jobs: Receiver<Job>, ctx: ShardCtx) {
    // The manager lives inside the guarded closure so a panic drops it
    // while unwinding, where its flush-on-drop checkpoint is skipped —
    // checkpointing through the very store that just panicked would
    // abort the process.
    let run = std::panic::AssertUnwindSafe(|| {
        let mut manager = manager;
        serve(&mut manager, &jobs, &ctx);
    });
    if std::panic::catch_unwind(run).is_err() {
        ctx.down.store(true, Ordering::SeqCst);
        eprintln!(
            "webrobot-shard-{}: worker panicked; failing queued requests with shard_down",
            ctx.index
        );
        while let Ok(job) = jobs.try_recv() {
            match job {
                Job::Request(_, reply) => {
                    reply.send(shard_down_response(ctx.index)).ok();
                }
                Job::Register { ack, .. } => {
                    ack.send(()).ok();
                }
            }
        }
        // Jobs that race past the drain above lose their channel when
        // `jobs` drops here; their callers see the same `shard_down`.
    }
}

/// The quantum scheduler: per-session run queues, round-robin over the
/// sessions that have work, one bounded synthesis quantum per turn.
///
/// Ordering rules, chosen so sequential driving stays byte-identical to
/// the unsharded manager:
///
/// * Per-session requests execute strictly in arrival order; a parked
///   session's next request waits for the parked step to finish.
/// * `create`/`stats`/`register` have no session state in flight and run
///   immediately on ingest, between quanta.
/// * `checkpoint`/`recover` are *barriers*: every parked session's
///   in-flight step is first driven to completion (a snapshot must never
///   observe a half-applied step), then the durability request runs.
///
/// When the front end hangs up, the scheduler drains all remaining work
/// to completion before the thread exits (preserving the flush-on-drop
/// contract of store-backed managers).
fn serve(manager: &mut SessionManager, jobs: &Receiver<Job>, ctx: &ShardCtx) {
    let mut queues: BTreeMap<String, SessionQueue> = BTreeMap::new();
    let mut ready: VecDeque<String> = VecDeque::new();
    let mut barriers: VecDeque<(Request, Sender<Response>)> = VecDeque::new();
    let mut connected = true;

    while connected || !ready.is_empty() || !barriers.is_empty() {
        // Ingest: block only when there is nothing runnable, otherwise
        // drain whatever has arrived and keep scheduling.
        if connected && ready.is_empty() && barriers.is_empty() {
            match jobs.recv() {
                Ok(job) => ingest(job, manager, ctx, &mut queues, &mut ready, &mut barriers),
                Err(_) => {
                    connected = false;
                    continue;
                }
            }
        }
        while connected {
            match jobs.try_recv() {
                Ok(job) => ingest(job, manager, ctx, &mut queues, &mut ready, &mut barriers),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => connected = false,
            }
        }

        if let Some((request, reply)) = barriers.pop_front() {
            // Finish every parked step before snapshotting, so the
            // barrier never observes a session mid-quantum.
            while let Some(pos) = ready
                .iter()
                .position(|key| queues.get(key).is_some_and(|q| q.parked.is_some()))
            {
                let key = ready.remove(pos).expect("position is in range");
                run_session(manager, ctx, &mut queues, &mut ready, key, None);
            }
            let response = manager.handle(request);
            // Release the admission slot *before* replying: a caller that
            // has seen the response must never find the slot still taken.
            ctx.inflight.fetch_sub(1, Ordering::SeqCst);
            reply.send(response).ok();
            continue;
        }

        if let Some(key) = ready.pop_front() {
            // Once the front end is gone nobody benefits from slicing:
            // drain the backlog at full speed.
            let budget = if connected { ctx.quantum } else { None };
            run_session(manager, ctx, &mut queues, &mut ready, key, budget);
        }
    }
}

/// Sorts one incoming job into the scheduler's state (or runs it
/// immediately when it has no per-session ordering constraint).
fn ingest(
    job: Job,
    manager: &mut SessionManager,
    ctx: &ShardCtx,
    queues: &mut BTreeMap<String, SessionQueue>,
    ready: &mut VecDeque<String>,
    barriers: &mut VecDeque<(Request, Sender<Response>)>,
) {
    match job {
        Job::Register {
            name,
            site,
            input,
            ack,
        } => {
            manager.register_site(name, site, input);
            ack.send(()).ok();
        }
        Job::Request(request, reply) => match request {
            Request::Event { ref session, .. }
            | Request::Outputs { ref session, .. }
            | Request::Close { ref session, .. } => {
                let key = session.clone();
                let queue = queues.entry(key.clone()).or_default();
                if !queue.has_work() {
                    ready.push_back(key);
                }
                queue.jobs.push_back((request, reply));
            }
            Request::Checkpoint | Request::Recover => barriers.push_back((request, reply)),
            // Create/Stats/Metrics touch no in-flight session state:
            // answer now.
            other => {
                // A metrics scrape also publishes this shard's scheduler
                // gauge (how many sessions sit parked mid-quantum), which
                // only the worker can observe.
                if matches!(other, Request::Metrics) {
                    let parked = queues.values().filter(|q| q.parked.is_some()).count();
                    ctx.metrics
                        .shard(ctx.index)
                        .set_parked_sessions(parked as u64);
                }
                let response = manager.handle(other);
                // Slot before reply, as in the barrier path.
                ctx.inflight.fetch_sub(1, Ordering::SeqCst);
                reply.send(response).ok();
            }
        },
    }
}

/// Gives session `key` one turn: resume its parked step or start its next
/// queued request, spending at most `budget` on synthesis (`None` = run
/// to completion). Requeues the session while it still has work.
fn run_session(
    manager: &mut SessionManager,
    ctx: &ShardCtx,
    queues: &mut BTreeMap<String, SessionQueue>,
    ready: &mut VecDeque<String>,
    key: String,
    budget: Option<Duration>,
) {
    let Some(queue) = queues.get_mut(&key) else {
        return;
    };
    let finished = if let Some((session, reply)) = queue.parked.take() {
        match step_event(manager, ctx, &session, None, budget) {
            Some(response) => Some((reply, response)),
            None => {
                queue.parked = Some((session, reply));
                None
            }
        }
    } else if let Some((request, reply)) = queue.jobs.pop_front() {
        match request {
            // Slice only when configured to: `quantum: None` keeps the
            // legacy run-to-completion dispatch byte for byte.
            Request::Event { session, event } if ctx.quantum.is_some() => {
                match step_event(manager, ctx, &session, Some(event), budget) {
                    Some(response) => Some((reply, response)),
                    None => {
                        queue.parked = Some((session, reply));
                        None
                    }
                }
            }
            other => Some((reply, manager.handle(other))),
        }
    } else {
        None
    };
    if let Some((reply, response)) = finished {
        // Slot before reply, as in the barrier path.
        ctx.inflight.fetch_sub(1, Ordering::SeqCst);
        reply.send(response).ok();
    }
    if queue.has_work() {
        ready.push_back(key);
    } else {
        queues.remove(&key);
    }
}

/// Drives one event step: starts it (when `event` is given) or resumes
/// the session's parked step, spending at most `budget` per slice.
/// `budget: None` runs the step to completion. Returns `None` iff the
/// step parked again.
fn step_event(
    manager: &mut SessionManager,
    ctx: &ShardCtx,
    session: &str,
    event: Option<Event>,
    budget: Option<Duration>,
) -> Option<Response> {
    let slice = budget.unwrap_or(RUN_TO_COMPLETION);
    ctx.metrics.record_quantum();
    let mut response = match event {
        Some(event) => manager.handle_event_quantum(session, event, slice),
        None => manager.continue_event_quantum(session, slice),
    };
    while response.is_none() && budget.is_none() {
        ctx.metrics.record_quantum();
        response = manager.continue_event_quantum(session, slice);
    }
    if response.is_none() {
        ctx.metrics.record_park();
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;
    use webrobot_interact::Event;
    use webrobot_lang::Action;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn sharded(shards: usize) -> ShardedManager {
        let m = ShardedManager::new(ServiceConfig::default(), shards);
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        m
    }

    fn create(m: &ShardedManager) -> String {
        let reply = m.handle(Request::Create {
            site: "anchors".to_string(),
            input: None,
            deadline_ms: None,
        });
        match reply {
            Response::Created { session, .. } => session,
            other => panic!("create failed: {}", other.to_json()),
        }
    }

    fn scrape(i: usize) -> Event {
        Event::Demonstrate(Action::ScrapeText(format!("/a[{i}]").parse().unwrap()))
    }

    #[test]
    fn ids_are_issued_in_the_global_sequence() {
        let m = sharded(4);
        for want in 1..=9 {
            assert_eq!(create(&m), format!("s-{want}"));
        }
        assert_eq!(m.stats().sessions_created, 9);
    }

    #[test]
    fn failed_creates_do_not_burn_ids() {
        let m = sharded(3);
        assert_eq!(create(&m), "s-1");
        let reply = m.handle(Request::Create {
            site: "nope".to_string(),
            input: None,
            deadline_ms: None,
        });
        assert!(matches!(reply, Response::Error { .. }));
        assert_eq!(create(&m), "s-2");
    }

    #[test]
    fn sessions_stick_to_their_shard_across_events() {
        let m = sharded(4);
        let ids: Vec<String> = (0..8).map(|_| create(&m)).collect();
        // Interleave events across all sessions; every session progresses
        // independently on its own shard.
        for i in 1..=2 {
            for id in &ids {
                let reply = m.handle(Request::Event {
                    session: id.clone(),
                    event: scrape(i),
                });
                assert!(
                    matches!(reply, Response::Event { .. }),
                    "{}",
                    reply.to_json()
                );
            }
        }
        let stats = m.stats();
        assert_eq!(stats.events_ok, 16);
        assert_eq!(stats.live_sessions, 8);
    }

    #[test]
    fn full_shards_fail_over_until_the_whole_service_is_full() {
        let m = ShardedManager::new(
            ServiceConfig {
                max_sessions: 1,
                ..ServiceConfig::default()
            },
            2,
        );
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        assert_eq!(create(&m), "s-1"); // shard 0
        assert_eq!(create(&m), "s-2"); // shard 1
        let reply = m.handle(Request::Create {
            site: "anchors".to_string(),
            input: None,
            deadline_ms: None,
        });
        assert!(
            matches!(&reply, Response::Error { code, .. } if code == "too_many_sessions"),
            "{}",
            reply.to_json()
        );
        // Freeing shard 1 lets the next create succeed even though the
        // round-robin turn points at the still-full shard 0. The id is
        // shard 1's next stride id (the dense sequence may skip under
        // cap pressure, never collide).
        m.handle(Request::Close {
            session: "s-2".to_string(),
        });
        assert_eq!(create(&m), "s-4");
        assert_eq!(m.stats().sessions_created, 3);
    }

    #[test]
    fn session_zero_is_a_typed_error_not_a_panic() {
        // "s-0" parses as a canonical id but no shard ever issues it;
        // routing must not underflow — the reply is the same
        // unknown_session error the unsharded manager gives.
        let m = sharded(4);
        let reply = m.handle_json(
            r#"{"v": 1, "kind": "event", "session": "s-0", "event": {"type": "finish"}}"#,
        );
        assert!(reply.contains(r#""code":"unknown_session""#), "{reply}");
        assert!(reply.contains("no session 's-0'"), "{reply}");
    }

    #[test]
    fn unknown_and_malformed_sessions_are_typed_errors() {
        let m = sharded(2);
        for session in ["s-99", "bogus", "s-007"] {
            let reply = m.handle_json(&format!(
                r#"{{"v": 1, "kind": "event", "session": "{session}", "event": {{"type": "finish"}}}}"#
            ));
            assert!(
                reply.contains(r#""code":"unknown_session""#),
                "{session} → {reply}"
            );
        }
    }

    #[test]
    fn concurrent_clients_drive_disjoint_sessions() {
        let m = sharded(4);
        let ids: Vec<String> = (0..8).map(|_| create(&m)).collect();
        std::thread::scope(|scope| {
            for id in &ids {
                let m = &m;
                scope.spawn(move || {
                    for i in 1..=2 {
                        let reply = m.handle(Request::Event {
                            session: id.clone(),
                            event: scrape(i),
                        });
                        assert!(
                            matches!(reply, Response::Event { .. }),
                            "{}",
                            reply.to_json()
                        );
                    }
                });
            }
        });
        assert_eq!(m.stats().events_ok, 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let m = sharded(3);
        create(&m);
        drop(m); // must not hang or leak threads
    }

    #[test]
    fn tiny_quanta_still_answer_every_request_exactly() {
        // A zero quantum forces a park/resume cycle on (almost) every
        // synthesis; responses must still match a run-to-completion
        // manager byte for byte under sequential driving.
        let sliced = ShardedManager::new(
            ServiceConfig {
                quantum: Some(Duration::ZERO),
                ..ServiceConfig::default()
            },
            2,
        );
        sliced.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        let unsliced = ShardedManager::new(
            ServiceConfig {
                quantum: None,
                ..ServiceConfig::default()
            },
            2,
        );
        unsliced.register_site("anchors", anchor_site(6), Value::Object(vec![]));

        for m in [&sliced, &unsliced] {
            create(m);
            create(m);
        }
        let mut replies = Vec::new();
        for m in [&sliced, &unsliced] {
            let mut log = Vec::new();
            for i in 1..=3 {
                for id in ["s-1", "s-2"] {
                    log.push(
                        m.handle(Request::Event {
                            session: id.to_string(),
                            event: scrape(i),
                        })
                        .to_json(),
                    );
                }
            }
            log.push(
                m.handle(Request::Outputs {
                    session: "s-1".to_string(),
                })
                .to_json(),
            );
            log.push(m.handle(Request::Stats).to_json());
            replies.push(log);
        }
        assert_eq!(
            replies[0], replies[1],
            "quantum slicing changed wire responses"
        );
    }

    #[test]
    fn overload_rejections_recover_once_the_shard_drains() {
        // With an admission limit of 1, a second concurrent request is a
        // typed `overloaded` error, deterministically: a store whose
        // `put` blocks keeps the shard busy in a checkpoint for as long
        // as the test needs.
        use crate::store::MemoryStore;

        #[derive(Debug)]
        struct BlockingStore {
            inner: MemoryStore,
            entered: Sender<()>,
            release: Mutex<Receiver<()>>,
        }
        impl SnapshotStore for BlockingStore {
            fn put(&mut self, key: &str, value: &Value) -> Result<(), StoreError> {
                self.entered.send(()).ok();
                self.release
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv()
                    .ok();
                self.inner.put(key, value)
            }
            fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
                self.inner.get(key)
            }
            fn remove(&mut self, key: &str) -> Result<(), StoreError> {
                self.inner.remove(key)
            }
            fn keys(&self) -> Result<Vec<String>, StoreError> {
                self.inner.keys()
            }
        }

        let (entered_tx, entered) = mpsc::channel();
        let (release_tx, release) = mpsc::channel();
        let store = BlockingStore {
            inner: MemoryStore::new(),
            entered: entered_tx,
            release: Mutex::new(release),
        };
        let m = ShardedManager::with_stores(
            ServiceConfig {
                max_queued_per_shard: 1,
                ..ServiceConfig::default()
            },
            vec![Box::new(store)],
        )
        .unwrap();
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        create(&m);

        std::thread::scope(|scope| {
            let hostage = scope.spawn(|| m.handle(Request::Checkpoint));
            // The shard is now wedged inside `store.put` with its single
            // admission slot taken; any further request must be rejected
            // up front, not queued.
            entered.recv().unwrap();
            let reply = m.handle(Request::Event {
                session: "s-1".to_string(),
                event: scrape(1),
            });
            assert!(
                matches!(&reply, Response::Error { code, .. } if code == "overloaded"),
                "{}",
                reply.to_json()
            );
            // Releasing the store (every pending and future `recv` now
            // fails fast) lets the checkpoint finish; the freed slot
            // admits the retried event.
            drop(release_tx);
            assert!(matches!(
                hostage.join().unwrap(),
                Response::Checkpointed { .. }
            ));
        });
        let retry = m.handle(Request::Event {
            session: "s-1".to_string(),
            event: scrape(1),
        });
        assert!(
            matches!(retry, Response::Event { .. }),
            "{}",
            retry.to_json()
        );
    }

    #[test]
    fn a_panicked_shard_is_down_eagerly_and_creates_fail_over() {
        // A store that panics on `put` kills the worker mid-checkpoint;
        // the shard must go down *eagerly* — the checkpoint caller and
        // every queued job get `shard_down`, later requests are rejected
        // without blocking, and create fails over to the healthy shard.
        use crate::store::MemoryStore;

        #[derive(Debug)]
        struct PanickingStore(MemoryStore);
        impl SnapshotStore for PanickingStore {
            fn put(&mut self, _key: &str, _value: &Value) -> Result<(), StoreError> {
                panic!("injected store failure");
            }
            fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
                self.0.get(key)
            }
            fn remove(&mut self, key: &str) -> Result<(), StoreError> {
                self.0.remove(key)
            }
            fn keys(&self) -> Result<Vec<String>, StoreError> {
                self.0.keys()
            }
        }

        let m = ShardedManager::with_stores(
            ServiceConfig::default(),
            vec![
                Box::new(PanickingStore(MemoryStore::new())),
                Box::new(MemoryStore::new()),
            ],
        )
        .unwrap();
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        assert_eq!(create(&m), "s-1"); // shard 0 (the doomed one)
        assert_eq!(create(&m), "s-2"); // shard 1

        let reply = m.handle(Request::Checkpoint);
        assert!(
            matches!(&reply, Response::Error { code, .. } if code == "shard_down"),
            "{}",
            reply.to_json()
        );
        // Eager rejection: the dead shard answers without blocking.
        let reply = m.handle(Request::Event {
            session: "s-1".to_string(),
            event: scrape(1),
        });
        assert!(
            matches!(&reply, Response::Error { code, .. } if code == "shard_down"),
            "{}",
            reply.to_json()
        );
        // Shard 1 is untouched.
        let reply = m.handle(Request::Event {
            session: "s-2".to_string(),
            event: scrape(1),
        });
        assert!(
            matches!(reply, Response::Event { .. }),
            "{}",
            reply.to_json()
        );
        // Creates skip the dead shard: the next id comes from shard 1's
        // stride (even ids), on what would have been shard 0's turn.
        assert_eq!(create(&m), "s-4");
    }
}
