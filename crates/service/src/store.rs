//! Persistent snapshot stores — re-exported from the dedicated
//! [`webrobot_store`] crate.
//!
//! The durability substrate grew into its own subsystem (the
//! log-structured [`SegmentStore`] with group commit and compaction, the
//! [`FileStore`] compat backend, the in-process [`MemoryStore`]); this
//! module keeps the service crate's historical paths working and pins
//! the contract the manager relies on: every failure is a typed
//! [`StoreError`] (`store_io` / `snapshot_corrupt`), never a panic, and
//! [`SnapshotStore::flush`] makes everything accepted so far durable —
//! the manager calls it at the end of every `checkpoint`.

pub use webrobot_store::{
    FileStore, MemoryStore, SegmentConfig, SegmentHandle, SegmentStore, SnapshotStore, StoreError,
};
