//! Service tuning: [`ServiceConfig`], its validating [`builder`] and the
//! typed [`ConfigError`] the builder rejects nonsense with.
//!
//! [`ServiceConfig::builder`]: ServiceConfig::builder

use std::fmt;
use std::time::Duration;

use webrobot_interact::SessionConfig;

/// Service tuning.
///
/// Construct via [`ServiceConfig::builder`] (validated) or
/// [`ServiceConfig::default`]; struct literals with field update syntax
/// remain possible for tests that deliberately need out-of-envelope
/// values (e.g. a zero quantum to exercise maximal slicing).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-session configuration template. A `create` request's
    /// `deadline_ms` overrides `session.synth.timeout` for that session
    /// only (the per-session synthesis deadline).
    pub session: SessionConfig,
    /// How many sessions may be *live* (holding a browser + synthesizer)
    /// at once. The least-recently-used live session beyond this cap is
    /// evicted to a compact snapshot and transparently restored on its
    /// next event.
    pub max_live_sessions: usize,
    /// Hard cap on tracked sessions, live + evicted. Further `create`
    /// requests fail with `too_many_sessions`.
    pub max_sessions: usize,
    /// Evict to **delta snapshots** (the default): snapshots carry the
    /// engine's re-synthesis schedule, so restoration replays the action
    /// history observe-only and re-enters the synthesizer only where the
    /// original session actually ran its worklist. Disable to evict to
    /// legacy full-replay snapshots (one synthesis per replayed action) —
    /// the ablation the `service_evict` bench rows price against each
    /// other; wire behavior is identical either way.
    pub delta_restore: bool,
    /// Synthesis work-quantum for the sharded scheduler: each scheduling
    /// turn runs at most this much synthesis for one session before
    /// round-robining to the next ready session, so one pathological
    /// worklist degrades only its own session's latency, not the whole
    /// shard's. `None` runs every step to completion (the legacy FIFO
    /// behavior). Quantum-sliced synthesis is exactly equal to unsliced
    /// synthesis (pinned by the 76-benchmark differential), so this knob
    /// is invisible on the wire — it only redistributes latency.
    pub quantum: Option<Duration>,
    /// Bound on in-flight jobs per shard (queued in the channel, waiting
    /// in a run queue, or being processed). Jobs beyond the bound are
    /// rejected with the `overloaded` error code instead of growing the
    /// queue without limit.
    pub max_queued_per_shard: usize,
    /// Skip clean sessions on `checkpoint` (the default): a session whose
    /// store record is already current is not re-serialized or re-written,
    /// making the periodic flush O(dirty sessions) instead of O(live
    /// sessions). Disable to rewrite every record on every checkpoint —
    /// the legacy behavior the `service_store` bench rows price the
    /// dirty-bit against; wire behavior is identical either way.
    pub incremental_checkpoint: bool,
    /// Persist the synthesizer's engine digest (worklist, processed set,
    /// generalization candidates) inside snapshots (the default), so a
    /// delta restore adopts the engine state directly instead of
    /// re-running the early schedule points. Disable to strip the digest
    /// — the ablation the `service_store` restore rows price; wire
    /// behavior is identical either way.
    pub engine_digest: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            session: SessionConfig::default(),
            max_live_sessions: 64,
            max_sessions: 4096,
            delta_restore: true,
            quantum: Some(Duration::from_millis(5)),
            max_queued_per_shard: 256,
            incremental_checkpoint: true,
            engine_digest: true,
        }
    }
}

impl ServiceConfig {
    /// Starts a validating builder seeded with [`ServiceConfig::default`]
    /// — so `ServiceConfig::builder().build()` is exactly the default
    /// config, and each setter overrides one knob.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            cfg: ServiceConfig::default(),
        }
    }
}

/// Why [`ServiceConfigBuilder::build`] rejected a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_sessions` was zero — the service could never create a
    /// session.
    ZeroMaxSessions,
    /// `max_live_sessions` was zero — every session would thrash through
    /// an eviction/restore cycle per event. (The manager internally
    /// clamps this to 1; the builder rejects it outright.)
    ZeroMaxLiveSessions,
    /// `max_queued_per_shard` was zero — every sharded request would be
    /// rejected as `overloaded`.
    ZeroQueueBound,
    /// A synthesis quantum below one millisecond: slicing overhead would
    /// dominate useful synthesis work. Use `quantum(None)` for unsliced
    /// run-to-completion instead.
    SubMillisecondQuantum {
        /// The rejected quantum.
        quantum: Duration,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMaxSessions => write!(f, "max_sessions must be at least 1"),
            ConfigError::ZeroMaxLiveSessions => write!(f, "max_live_sessions must be at least 1"),
            ConfigError::ZeroQueueBound => write!(f, "max_queued_per_shard must be at least 1"),
            ConfigError::SubMillisecondQuantum { quantum } => write!(
                f,
                "quantum {quantum:?} is below 1ms; use quantum(None) for unsliced synthesis"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ServiceConfig`], created by
/// [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the per-session configuration template.
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.cfg.session = session;
        self
    }

    /// Sets the live-session cap (LRU eviction beyond it).
    pub fn max_live_sessions(mut self, max: usize) -> Self {
        self.cfg.max_live_sessions = max;
        self
    }

    /// Sets the hard cap on tracked sessions.
    pub fn max_sessions(mut self, max: usize) -> Self {
        self.cfg.max_sessions = max;
        self
    }

    /// Chooses delta (true, default) or full-replay (false) snapshots.
    pub fn delta_restore(mut self, on: bool) -> Self {
        self.cfg.delta_restore = on;
        self
    }

    /// Sets the synthesis work-quantum (`None` = run to completion).
    pub fn quantum(mut self, quantum: Option<Duration>) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Sets the per-shard in-flight job bound.
    pub fn max_queued_per_shard(mut self, max: usize) -> Self {
        self.cfg.max_queued_per_shard = max;
        self
    }

    /// Enables (default) or disables O(dirty) incremental checkpoints.
    pub fn incremental_checkpoint(mut self, on: bool) -> Self {
        self.cfg.incremental_checkpoint = on;
        self
    }

    /// Enables (default) or disables persisting the engine digest.
    pub fn engine_digest(mut self, on: bool) -> Self {
        self.cfg.engine_digest = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] naming the offending knob; see each
    /// variant for the rule it enforces.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        if self.cfg.max_sessions == 0 {
            return Err(ConfigError::ZeroMaxSessions);
        }
        if self.cfg.max_live_sessions == 0 {
            return Err(ConfigError::ZeroMaxLiveSessions);
        }
        if self.cfg.max_queued_per_shard == 0 {
            return Err(ConfigError::ZeroQueueBound);
        }
        if let Some(quantum) = self.cfg.quantum {
            if quantum < Duration::from_millis(1) {
                return Err(ConfigError::SubMillisecondQuantum { quantum });
            }
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_default_matches_default() {
        let built = ServiceConfig::builder().build().unwrap();
        let default = ServiceConfig::default();
        assert_eq!(built.max_live_sessions, default.max_live_sessions);
        assert_eq!(built.max_sessions, default.max_sessions);
        assert_eq!(built.delta_restore, default.delta_restore);
        assert_eq!(built.quantum, default.quantum);
        assert_eq!(built.max_queued_per_shard, default.max_queued_per_shard);
        assert_eq!(built.incremental_checkpoint, default.incremental_checkpoint);
        assert_eq!(built.engine_digest, default.engine_digest);
    }

    #[test]
    fn builder_overrides_individual_knobs() {
        let cfg = ServiceConfig::builder()
            .max_sessions(7)
            .max_live_sessions(2)
            .quantum(Some(Duration::from_millis(10)))
            .max_queued_per_shard(16)
            .delta_restore(false)
            .incremental_checkpoint(false)
            .engine_digest(false)
            .build()
            .unwrap();
        assert_eq!(cfg.max_sessions, 7);
        assert_eq!(cfg.max_live_sessions, 2);
        assert_eq!(cfg.quantum, Some(Duration::from_millis(10)));
        assert_eq!(cfg.max_queued_per_shard, 16);
        assert!(!cfg.delta_restore);
        assert!(!cfg.incremental_checkpoint);
        assert!(!cfg.engine_digest);
    }

    #[test]
    fn builder_rejects_nonsense_with_typed_errors() {
        assert_eq!(
            ServiceConfig::builder()
                .max_sessions(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMaxSessions
        );
        assert_eq!(
            ServiceConfig::builder()
                .max_live_sessions(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMaxLiveSessions
        );
        assert_eq!(
            ServiceConfig::builder()
                .max_queued_per_shard(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQueueBound
        );
        let err = ServiceConfig::builder()
            .quantum(Some(Duration::from_micros(250)))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::SubMillisecondQuantum {
                quantum: Duration::from_micros(250)
            }
        );
        assert!(err.to_string().contains("below 1ms"), "{err}");
        // `None` (run to completion) is always valid.
        ServiceConfig::builder().quantum(None).build().unwrap();
    }
}
