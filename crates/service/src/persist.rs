//! Serialization of session snapshots and manager metadata into the wire
//! JSON subset — the record format a [`SnapshotStore`](crate::SnapshotStore)
//! holds.
//!
//! The format is versioned (`"v": 1`) and documented normatively in
//! `PROTOCOL.md` § "Snapshot records". Compatibility rule: within v1,
//! readers ignore unknown fields and default absent optional fields
//! (`resynth` absent → legacy full-replay restore, `program` absent → no
//! cached program, `deadline_ms` absent → the manager's template
//! deadline); a record carrying any other `v` is rejected as corrupt, so
//! a future v2 can change shape without silently mis-restoring.
//!
//! Everything here is total: a malformed record decodes to an error
//! `String` (wrapped into [`StoreError::Corrupt`](crate::StoreError) by
//! the manager), never a panic. Decoding is intentionally *shallow* about
//! semantics — a record can be shape-valid yet describe an impossible
//! session (tampered selectors, counters out of range); those surface as
//! typed [`SessionError`](webrobot_interact::SessionError)s when
//! [`Session::restore`](webrobot_interact::Session::restore) replays the
//! history.

use webrobot_data::Value;
use webrobot_interact::{EngineDigest, Item, Mode, SessionSnapshot};
use webrobot_lang::{parse_program, Action, Program};

use crate::protocol::{action_from_value, action_to_value};
use crate::stats::ServiceStats;

/// The snapshot-record format version this build reads and writes.
pub const STORE_VERSION: i64 = 1;

/// One decoded session record: everything needed to rebuild a
/// [`SessionSnapshot`] once the manager resolves the site name against
/// its registry and supplies its session-config template.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// The raw numeric session id (`s-<n>` → `n`).
    pub id: u64,
    /// The name of the site the session was created on.
    pub site: String,
    /// The per-session synthesis deadline override, if any.
    pub deadline_ms: Option<u64>,
    /// The session's data source.
    pub input: Value,
    /// The mode at snapshot time.
    pub mode: Mode,
    /// The executed action history.
    pub executed: Vec<Action>,
    /// The predictions on offer at snapshot time.
    pub predictions: Vec<Action>,
    /// Consecutive accepted predictions at snapshot time.
    pub consecutive_accepts: usize,
    /// Automated actions executed at snapshot time.
    pub automated_steps: usize,
    /// The delta-restore schedule (`None` → legacy full replay).
    pub resynth: Option<Vec<usize>>,
    /// The cached last-generalizing program, if any.
    pub last_program: Option<Program>,
    /// The synthesizer's engine digest (`None` → pre-digest record:
    /// restore re-synthesizes at the schedule points).
    pub engine: Option<EngineDigest>,
}

/// Serializes one session into its store record.
pub fn encode_session(
    id: u64,
    site: &str,
    deadline_ms: Option<u64>,
    snap: &SessionSnapshot,
) -> Value {
    let mut fields = vec![
        ("v".to_string(), Value::Int(STORE_VERSION)),
        ("kind".to_string(), Value::str("session")),
        ("session".to_string(), Value::str(format!("s-{id}"))),
        ("site".to_string(), Value::str(site)),
    ];
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::Int(ms as i64)));
    }
    fields.push(("input".to_string(), snap.input.clone()));
    fields.push(("mode".to_string(), Value::str(snap.mode.as_str())));
    fields.push((
        "executed".to_string(),
        Value::Array(snap.executed.iter().map(action_to_value).collect()),
    ));
    fields.push((
        "predictions".to_string(),
        Value::Array(snap.predictions.iter().map(action_to_value).collect()),
    ));
    fields.push((
        "consecutive_accepts".to_string(),
        Value::Int(snap.consecutive_accepts as i64),
    ));
    fields.push((
        "automated_steps".to_string(),
        Value::Int(snap.automated_steps as i64),
    ));
    if let Some(schedule) = &snap.resynth {
        fields.push((
            "resynth".to_string(),
            Value::Array(schedule.iter().map(|&n| Value::Int(n as i64)).collect()),
        ));
    }
    if let Some(program) = &snap.last_program {
        fields.push(("program".to_string(), Value::str(program.to_string())));
    }
    if let Some(engine) = &snap.engine {
        fields.push(("engine".to_string(), engine_to_value(engine)));
    }
    Value::Object(fields)
}

/// Serializes an engine digest: item lists as `{"p": <program text>,
/// "b": [bounds]}` objects plus the sync point. Compact by construction —
/// worklist items are short programs, not steppers or memo tables.
fn engine_to_value(engine: &EngineDigest) -> Value {
    let items = |items: &[Item]| {
        Value::Array(
            items
                .iter()
                .map(|item| {
                    Value::object([
                        ("p".to_string(), Value::str(item.to_program().to_string())),
                        (
                            "b".to_string(),
                            Value::Array(
                                item.bounds()
                                    .iter()
                                    .map(|&n| Value::Int(n as i64))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    };
    Value::object([
        ("synced".to_string(), Value::Int(engine.synced_len as i64)),
        ("worklist".to_string(), items(&engine.worklist)),
        ("processed".to_string(), items(&engine.processed)),
        ("generalizing".to_string(), items(&engine.generalizing)),
    ])
}

/// Decodes one digest item. `Item::from_parts` re-checks the bounds
/// invariants (one more entry than statements, starting at 0, strictly
/// increasing), so a shape-tampered item is a typed decode error.
fn item_from_value(v: &Value, key: &str) -> Result<Item, String> {
    let text = v
        .field("p")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("engine '{key}' items need a string field 'p'"))?;
    let program = parse_program(text).map_err(|e| format!("bad program in engine '{key}': {e}"))?;
    let bounds = v
        .field("b")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("engine '{key}' items need an array field 'b'"))?
        .iter()
        .map(|n| {
            n.as_int()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("engine '{key}' bounds must be non-negative integers"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Item::from_parts(program.into_statements(), bounds)
        .ok_or_else(|| format!("engine '{key}' item bounds are not a valid slice partition"))
}

/// Decodes the optional engine digest, checking it against the executed
/// history: items may not cover more actions than the history holds and
/// the sync point may not lie past it. (The deep check — do the
/// "generalizing" programs actually generalize? — runs at adoption time,
/// where the replayed trace exists; an inconsistent digest degrades to
/// re-synthesis there, never to a wrong restore.)
fn engine_from_value(raw: &Value, executed_len: usize) -> Result<Option<EngineDigest>, String> {
    let Some(v) = raw.field("engine") else {
        return Ok(None);
    };
    let synced_len = v
        .field("synced")
        .and_then(Value::as_int)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| "engine field 'synced' must be a non-negative integer".to_string())?;
    if synced_len > executed_len {
        return Err(format!(
            "engine sync point {synced_len} lies past the {executed_len}-action history"
        ));
    }
    let items = |key: &str| -> Result<Vec<Item>, String> {
        let list = v
            .field(key)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("engine field '{key}' must be an array"))?;
        let items: Vec<Item> = list
            .iter()
            .map(|item| item_from_value(item, key))
            .collect::<Result<_, _>>()?;
        if let Some(over) = items.iter().find(|item| item.covered() > executed_len) {
            return Err(format!(
                "engine '{key}' item covers {} of {} executed actions",
                over.covered(),
                executed_len
            ));
        }
        Ok(items)
    };
    Ok(Some(EngineDigest {
        worklist: items("worklist")?,
        processed: items("processed")?,
        generalizing: items("generalizing")?,
        synced_len,
    }))
}

fn require_field<'v>(raw: &'v Value, key: &str) -> Result<&'v Value, String> {
    raw.field(key)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn require_str(raw: &Value, key: &str) -> Result<String, String> {
    require_field(raw, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field '{key}' must be a string"))
}

fn require_usize(raw: &Value, key: &str) -> Result<usize, String> {
    require_field(raw, key)?
        .as_int()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn require_u64(raw: &Value, key: &str) -> Result<u64, String> {
    require_field(raw, key)?
        .as_int()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn check_version(raw: &Value) -> Result<(), String> {
    match require_field(raw, "v")?.as_int() {
        Some(STORE_VERSION) => Ok(()),
        Some(other) => Err(format!(
            "record version {other} is not supported (this build reads v{STORE_VERSION})"
        )),
        None => Err("field 'v' must be an integer".to_string()),
    }
}

fn actions_field(raw: &Value, key: &str) -> Result<Vec<Action>, String> {
    require_field(raw, key)?
        .as_array()
        .ok_or_else(|| format!("field '{key}' must be an array"))?
        .iter()
        .map(|v| action_from_value(v).map_err(|e| format!("bad action in '{key}': {e}")))
        .collect()
}

fn mode_from_str(s: &str) -> Result<Mode, String> {
    match s {
        "demonstrate" => Ok(Mode::Demonstrate),
        "authorize" => Ok(Mode::Authorize),
        "automate" => Ok(Mode::Automate),
        "done" => Ok(Mode::Done),
        other => Err(format!("unknown mode '{other}'")),
    }
}

/// Decodes one session record. The error string carries the failure
/// detail; the caller attaches the record key.
pub fn decode_session(raw: &Value) -> Result<SessionRecord, String> {
    check_version(raw)?;
    if require_str(raw, "kind")? != "session" {
        return Err("field 'kind' must be \"session\"".to_string());
    }
    let session = require_str(raw, "session")?;
    let id: crate::SessionId = session
        .parse()
        .map_err(|()| format!("field 'session' is not a session id: '{session}'"))?;
    let deadline_ms = match raw.field("deadline_ms") {
        None => None,
        Some(_) => Some(require_u64(raw, "deadline_ms")?),
    };
    let resynth = match raw.field("resynth") {
        None => None,
        Some(v) => Some(
            v.as_array()
                .ok_or_else(|| "field 'resynth' must be an array".to_string())?
                .iter()
                .map(|n| {
                    n.as_int()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| "resynth entries must be non-negative integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    let last_program = match raw.field("program") {
        None => None,
        Some(v) => {
            let text = v
                .as_str()
                .ok_or_else(|| "field 'program' must be a string".to_string())?;
            Some(parse_program(text).map_err(|e| format!("bad cached program: {e}"))?)
        }
    };
    let executed = actions_field(raw, "executed")?;
    let engine = engine_from_value(raw, executed.len())?;
    if let Some(schedule) = &resynth {
        // A schedule Session::restore could only partially follow (not
        // strictly increasing from ≥ 1, or pointing past the history)
        // would silently mis-restore; reject it as tampered instead.
        let increasing = schedule.first().is_none_or(|&first| first >= 1)
            && schedule.windows(2).all(|w| w[0] < w[1]);
        let bounded = schedule.last().is_none_or(|&last| last <= executed.len());
        if !increasing || !bounded {
            return Err(format!(
                "field 'resynth' must be strictly increasing within 1..={}",
                executed.len()
            ));
        }
    }
    Ok(SessionRecord {
        id: id.raw(),
        site: require_str(raw, "site")?,
        deadline_ms,
        input: require_field(raw, "input")?.clone(),
        mode: mode_from_str(&require_str(raw, "mode")?)?,
        executed,
        predictions: actions_field(raw, "predictions")?,
        consecutive_accepts: require_usize(raw, "consecutive_accepts")?,
        automated_steps: require_usize(raw, "automated_steps")?,
        resynth,
        last_program,
        engine,
    })
}

/// Manager-level metadata persisted alongside the session records: the id
/// sequence cursor, the LRU clock, and the carried-over counters — what a
/// reopened manager needs to continue byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagerMeta {
    /// The next session id this manager would issue.
    pub next_id: u64,
    /// The logical LRU clock.
    pub clock: u64,
    /// The counter part of [`ServiceStats`] (the live/evicted gauges are
    /// recomputed from the slots).
    pub stats: ServiceStats,
}

/// Serializes manager metadata into its store record.
pub fn encode_meta(meta: &ManagerMeta) -> Value {
    Value::object([
        ("v".to_string(), Value::Int(STORE_VERSION)),
        ("kind".to_string(), Value::str("meta")),
        ("next_id".to_string(), Value::Int(meta.next_id as i64)),
        ("clock".to_string(), Value::Int(meta.clock as i64)),
        (
            "sessions_created".to_string(),
            Value::Int(meta.stats.sessions_created as i64),
        ),
        (
            "sessions_closed".to_string(),
            Value::Int(meta.stats.sessions_closed as i64),
        ),
        (
            "events_ok".to_string(),
            Value::Int(meta.stats.events_ok as i64),
        ),
        (
            "events_rejected".to_string(),
            Value::Int(meta.stats.events_rejected as i64),
        ),
        (
            "evictions".to_string(),
            Value::Int(meta.stats.evictions as i64),
        ),
        (
            "restores".to_string(),
            Value::Int(meta.stats.restores as i64),
        ),
    ])
}

/// Decodes a manager metadata record.
pub fn decode_meta(raw: &Value) -> Result<ManagerMeta, String> {
    check_version(raw)?;
    if require_str(raw, "kind")? != "meta" {
        return Err("field 'kind' must be \"meta\"".to_string());
    }
    Ok(ManagerMeta {
        next_id: require_u64(raw, "next_id")?,
        clock: require_u64(raw, "clock")?,
        stats: ServiceStats {
            sessions_created: require_u64(raw, "sessions_created")?,
            sessions_closed: require_u64(raw, "sessions_closed")?,
            live_sessions: 0,
            evicted_sessions: 0,
            events_ok: require_u64(raw, "events_ok")?,
            events_rejected: require_u64(raw, "events_rejected")?,
            evictions: require_u64(raw, "evictions")?,
            restores: require_u64(raw, "restores")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webrobot_browser::SiteBuilder;
    use webrobot_data::parse_json;
    use webrobot_dom::parse_html;
    use webrobot_interact::{Session, SessionConfig};
    use webrobot_lang::Value as LangValue;

    fn sample_snapshot() -> SessionSnapshot {
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://codec.test/",
            parse_html("<html><a>1</a><a>2</a><a>3</a><a>4</a></html>").unwrap(),
        );
        let site = Arc::new(b.start_at(home).finish());
        let mut s = Session::new(site, LangValue::Object(vec![]), SessionConfig::default());
        for i in 1..=2 {
            s.handle(webrobot_interact::Event::Demonstrate(
                webrobot_lang::Action::ScrapeText(format!("/a[{i}]").parse().unwrap()),
            ))
            .unwrap();
        }
        s.handle(webrobot_interact::Event::Accept { index: 0 })
            .unwrap();
        s.snapshot()
    }

    #[test]
    fn session_records_round_trip() {
        let snap = sample_snapshot();
        let record = encode_session(7, "codec", Some(250), &snap);
        // Survives a print/parse cycle (what a FileStore does).
        let reparsed = parse_json(&record.to_json()).unwrap();
        let decoded = decode_session(&reparsed).unwrap();
        assert_eq!(decoded.id, 7);
        assert_eq!(decoded.site, "codec");
        assert_eq!(decoded.deadline_ms, Some(250));
        assert_eq!(decoded.input, snap.input);
        assert_eq!(decoded.mode, snap.mode);
        assert_eq!(decoded.executed, snap.executed);
        assert_eq!(decoded.predictions, snap.predictions);
        assert_eq!(decoded.consecutive_accepts, snap.consecutive_accepts);
        assert_eq!(decoded.automated_steps, snap.automated_steps);
        assert_eq!(decoded.resynth, snap.resynth);
        assert_eq!(decoded.last_program, snap.last_program);
        assert_eq!(decoded.engine, snap.engine);
        assert!(decoded.engine.is_some(), "snapshots carry a digest");
    }

    /// Engine digests survive the print/parse cycle, and tampered ones
    /// are typed decode errors (shape and range checks) rather than
    /// silent mis-restores.
    #[test]
    fn engine_digests_round_trip_and_validate() {
        let snap = sample_snapshot();
        let record = encode_session(4, "codec", None, &snap);
        let json = record.to_json();
        let decoded = decode_session(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(decoded.engine, snap.engine);

        // A sync point past the executed history.
        let mut overlong = snap.clone();
        overlong.engine.as_mut().unwrap().synced_len = 99;
        let err = decode_session(&encode_session(4, "codec", None, &overlong)).unwrap_err();
        assert!(err.contains("lies past"), "{err}");

        // An item covering more actions than the history holds.
        let mut overcovering = snap.clone();
        {
            let digest = overcovering.engine.as_mut().unwrap();
            let donor = &digest.processed[0];
            let mut bounds = donor.bounds().to_vec();
            *bounds.last_mut().unwrap() = 99;
            digest.processed[0] =
                webrobot_interact::Item::from_parts(donor.statements().to_vec(), bounds).unwrap();
        }
        let err = decode_session(&encode_session(4, "codec", None, &overcovering)).unwrap_err();
        assert!(err.contains("covers 99"), "{err}");

        // Bounds that are not a valid slice partition (first entry ≠ 0).
        let bad = json.replacen("\"b\":[0", "\"b\":[1", 1);
        assert_ne!(bad, json, "an engine item was mangled");
        let err = decode_session(&parse_json(&bad).unwrap()).unwrap_err();
        assert!(err.contains("slice partition"), "{err}");

        // A record without the field decodes to no digest (pre-digest
        // compatibility), and the digest is stripped alongside the
        // schedule.
        let stripped = encode_session(4, "codec", None, &snap.clone().without_schedule());
        assert_eq!(decode_session(&stripped).unwrap().engine, None);
    }

    #[test]
    fn optional_fields_default_per_the_compat_rule() {
        let snap = sample_snapshot();
        let mut stripped = snap.clone().without_schedule();
        stripped.last_program = None;
        let record = encode_session(1, "codec", None, &stripped);
        let decoded = decode_session(&record).unwrap();
        assert_eq!(decoded.deadline_ms, None);
        assert_eq!(decoded.resynth, None, "absent schedule → full replay");
        assert_eq!(decoded.last_program, None);
        // Unknown fields are ignored (forward-compatible within v1).
        let mut with_extra = record.to_json();
        with_extra.insert_str(with_extra.len() - 1, ",\"future_field\":1");
        decode_session(&parse_json(&with_extra).unwrap()).unwrap();
    }

    #[test]
    fn malformed_records_decode_to_errors() {
        let snap = sample_snapshot();
        let good = encode_session(3, "codec", None, &snap).to_json();
        for (mangle, needle) in [
            (good.replace("\"v\":1", "\"v\":2"), "version 2"),
            (
                good.replace("\"kind\":\"session\"", "\"kind\":\"meta\""),
                "kind",
            ),
            (
                good.replace("\"session\":\"s-3\"", "\"session\":\"x3\""),
                "session id",
            ),
            (
                good.replace("\"mode\":\"authorize\"", "\"mode\":\"zen\""),
                "mode",
            ),
            (
                good.replace("\"consecutive_accepts\":1", "\"consecutive_accepts\":-1"),
                "non-negative",
            ),
            (good.replace("scrape_text", "teleport"), "bad action"),
            // A schedule restore could only partially follow is tampering.
            (
                good.replace("\"resynth\":[1,2]", "\"resynth\":[2,1]"),
                "strictly increasing",
            ),
            (
                good.replace("\"resynth\":[1,2]", "\"resynth\":[1,99]"),
                "strictly increasing",
            ),
            (
                good.replace("\"resynth\":[1,2]", "\"resynth\":[0,1]"),
                "strictly increasing",
            ),
        ] {
            let raw = parse_json(&mangle).unwrap();
            let err = decode_session(&raw).unwrap_err();
            assert!(err.contains(needle), "{mangle} → {err}");
        }
    }

    #[test]
    fn meta_records_round_trip() {
        let meta = ManagerMeta {
            next_id: 9,
            clock: 140,
            stats: ServiceStats {
                sessions_created: 8,
                sessions_closed: 3,
                live_sessions: 0,
                evicted_sessions: 0,
                events_ok: 77,
                events_rejected: 4,
                evictions: 12,
                restores: 11,
            },
        };
        let record = encode_meta(&meta);
        let reparsed = parse_json(&record.to_json()).unwrap();
        assert_eq!(decode_meta(&reparsed).unwrap(), meta);
        assert!(decode_meta(&parse_json("{\"v\":1,\"kind\":\"session\"}").unwrap()).is_err());
    }
}
