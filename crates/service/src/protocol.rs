//! The versioned wire protocol (v1): string-in/string-out request and
//! response types over the paper's own JSON subset.
//!
//! Everything on the wire is expressible in `webrobot_data`'s data-source
//! grammar — objects, arrays, strings and integers; no booleans, floats or
//! `null` — so the protocol needs no serialization dependency beyond
//! [`webrobot_data::parse_json`] / [`Value::to_json`]. Status is the
//! string `"ok"` / `"error"`, optional fields are simply absent.
//!
//! The complete request/response shapes and error-code table are
//! documented in `PROTOCOL.md` at the repository root; the shapes are
//! exercised end-to-end by `examples/service_loop.rs` and
//! `tests/service.rs`.

use std::error::Error;
use std::fmt;

use webrobot_browser::Output;
use webrobot_data::{parse_json, PathSeg, Value, ValuePath};
use webrobot_interact::{Event, Mode, StepOutcome};
use webrobot_lang::Action;
use webrobot_metrics::{
    bucket_bound, HistogramSnapshot, MetricsSnapshot, RequestKind, ShardGaugesSnapshot,
};

use crate::stats::{ServiceStats, StatsV2};

/// The protocol version this build speaks. Requests must carry
/// `{"v": 1}`; anything else is rejected with `unsupported_version`.
pub const PROTOCOL_VERSION: i64 = 1;

/// A malformed or unsupported request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    code: &'static str,
    message: String,
}

impl ProtocolError {
    fn bad(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code: "bad_request",
            message: message.into(),
        }
    }

    fn version(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code: "unsupported_version",
            message: message.into(),
        }
    }

    /// Stable machine-readable error code (`bad_request` or
    /// `unsupported_version`).
    pub fn code(&self) -> &'static str {
        self.code
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl Error for ProtocolError {}

/// A decoded v1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a session on a registered site.
    Create {
        /// Name the site was registered under.
        site: String,
        /// Data source override (defaults to the site's registered input).
        input: Option<Value>,
        /// Per-session synthesis deadline override, in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Dispatch one session event.
    Event {
        /// The session id (`"s-<n>"`).
        session: String,
        /// The event to dispatch.
        event: Event,
    },
    /// Fetch everything a session has scraped so far.
    Outputs {
        /// The session id.
        session: String,
    },
    /// Fetch aggregate service statistics.
    Stats,
    /// Fetch the full observability snapshot: versioned service counters
    /// plus latency histograms, per-kind request counters and per-shard
    /// gauges. Supersedes `stats` for new clients.
    Metrics,
    /// Finish and forget a session.
    Close {
        /// The session id.
        session: String,
    },
    /// Flush every session (and the manager metadata) to the attached
    /// snapshot store, bounding the data-loss window under a hard kill.
    Checkpoint,
    /// Adopt sessions from the attached snapshot store that this manager
    /// does not yet track (e.g. records written by another process).
    Recover,
}

impl Request {
    /// Decodes a v1 request from its JSON wire form.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] with code `bad_request` on malformed input,
    /// `unsupported_version` when `v` is not [`PROTOCOL_VERSION`].
    pub fn from_json(input: &str) -> Result<Request, ProtocolError> {
        let value =
            parse_json(input).map_err(|e| ProtocolError::bad(format!("invalid json: {e}")))?;
        let version = value
            .field("v")
            .and_then(Value::as_int)
            .ok_or_else(|| ProtocolError::version("missing integer field 'v'"))?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::version(format!(
                "protocol version {version} is not supported (this build speaks v{PROTOCOL_VERSION})"
            )));
        }
        let kind = require_str(&value, "kind")?;
        match kind {
            "create" => Ok(Request::Create {
                site: require_str(&value, "site")?.to_string(),
                input: value.field("input").cloned(),
                deadline_ms: match value.field("deadline_ms") {
                    None => None,
                    Some(v) => Some(v.as_int().and_then(|n| u64::try_from(n).ok()).ok_or_else(
                        || ProtocolError::bad("'deadline_ms' must be a non-negative integer"),
                    )?),
                },
            }),
            "event" => Ok(Request::Event {
                session: require_str(&value, "session")?.to_string(),
                event: event_from_value(
                    value
                        .field("event")
                        .ok_or_else(|| ProtocolError::bad("missing field 'event'"))?,
                )?,
            }),
            "outputs" => Ok(Request::Outputs {
                session: require_str(&value, "session")?.to_string(),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "close" => Ok(Request::Close {
                session: require_str(&value, "session")?.to_string(),
            }),
            "checkpoint" => Ok(Request::Checkpoint),
            "recover" => Ok(Request::Recover),
            other => Err(ProtocolError::bad(format!(
                "unknown request kind '{other}'"
            ))),
        }
    }

    /// Encodes the request into its JSON wire form (what a front-end
    /// sends).
    pub fn to_json(&self) -> String {
        let mut fields = vec![("v".to_string(), Value::Int(PROTOCOL_VERSION))];
        match self {
            Request::Create {
                site,
                input,
                deadline_ms,
            } => {
                fields.push(("kind".to_string(), Value::str("create")));
                fields.push(("site".to_string(), Value::str(site.clone())));
                if let Some(input) = input {
                    fields.push(("input".to_string(), input.clone()));
                }
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_string(), Value::Int(*ms as i64)));
                }
            }
            Request::Event { session, event } => {
                fields.push(("kind".to_string(), Value::str("event")));
                fields.push(("session".to_string(), Value::str(session.clone())));
                fields.push(("event".to_string(), event_to_value(event)));
            }
            Request::Outputs { session } => {
                fields.push(("kind".to_string(), Value::str("outputs")));
                fields.push(("session".to_string(), Value::str(session.clone())));
            }
            Request::Stats => fields.push(("kind".to_string(), Value::str("stats"))),
            Request::Metrics => fields.push(("kind".to_string(), Value::str("metrics"))),
            Request::Close { session } => {
                fields.push(("kind".to_string(), Value::str("close")));
                fields.push(("session".to_string(), Value::str(session.clone())));
            }
            Request::Checkpoint => fields.push(("kind".to_string(), Value::str("checkpoint"))),
            Request::Recover => fields.push(("kind".to_string(), Value::str("recover"))),
        }
        Value::Object(fields).to_json()
    }
}

/// A v1 response, produced by
/// [`SessionManager::handle`](crate::SessionManager::handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A session was created.
    Created {
        /// The new session's id.
        session: String,
        /// Its initial mode (always `demonstrate`).
        mode: Mode,
    },
    /// An event was dispatched.
    Event {
        /// The session id.
        session: String,
        /// What the step did.
        outcome: StepOutcome,
        /// The session's mode after the event.
        mode: Mode,
        /// Current predictions, best first.
        predictions: Vec<Action>,
        /// How many outputs the session has scraped so far.
        outputs: usize,
    },
    /// The session's scraped outputs.
    Outputs {
        /// The session id.
        session: String,
        /// Everything scraped so far, in order.
        outputs: Vec<Output>,
    },
    /// Aggregate service statistics (legacy flat shape).
    Stats(ServiceStats),
    /// The full observability snapshot: versioned grouped counters plus
    /// latency histograms, per-kind request counters and per-shard gauges.
    Metrics {
        /// Versioned service counters (the v2 stats shape).
        stats: StatsV2,
        /// Histograms, request counters, scheduler counters and gauges.
        /// Boxed: the snapshot dwarfs every other variant, and boxing it
        /// keeps `Response` small for the common replies.
        metrics: Box<MetricsSnapshot>,
    },
    /// A session was finished and forgotten.
    Closed {
        /// The closed session's id.
        session: String,
    },
    /// The manager was flushed to its snapshot store.
    Checkpointed {
        /// How many session records the store now holds for this manager.
        sessions: usize,
    },
    /// Sessions were adopted from the snapshot store.
    Recovered {
        /// How many previously untracked sessions were adopted.
        sessions: usize,
    },
    /// The request failed.
    Error {
        /// Stable machine-readable code (see `PROTOCOL.md`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response into its JSON wire form.
    pub fn to_json(&self) -> String {
        let mut fields = vec![("v".to_string(), Value::Int(PROTOCOL_VERSION))];
        let ok = |fields: &mut Vec<(String, Value)>, kind: &str| {
            fields.push(("status".to_string(), Value::str("ok")));
            fields.push(("kind".to_string(), Value::str(kind)));
        };
        match self {
            Response::Created { session, mode } => {
                ok(&mut fields, "created");
                fields.push(("session".to_string(), Value::str(session.clone())));
                fields.push(("mode".to_string(), Value::str(mode.as_str())));
            }
            Response::Event {
                session,
                outcome,
                mode,
                predictions,
                outputs,
            } => {
                ok(&mut fields, "event");
                fields.push(("session".to_string(), Value::str(session.clone())));
                fields.push(("outcome".to_string(), Value::str(outcome.as_str())));
                if let StepOutcome::Automated(action) = outcome {
                    fields.push(("action".to_string(), action_to_value(action)));
                }
                fields.push(("mode".to_string(), Value::str(mode.as_str())));
                fields.push((
                    "predictions".to_string(),
                    Value::Array(predictions.iter().map(action_to_value).collect()),
                ));
                fields.push(("outputs".to_string(), Value::Int(*outputs as i64)));
            }
            Response::Outputs { session, outputs } => {
                ok(&mut fields, "outputs");
                fields.push(("session".to_string(), Value::str(session.clone())));
                fields.push((
                    "outputs".to_string(),
                    Value::Array(outputs.iter().map(output_to_value).collect()),
                ));
            }
            Response::Stats(stats) => {
                ok(&mut fields, "stats");
                fields.push(("stats".to_string(), stats_to_value(stats)));
            }
            Response::Metrics { stats, metrics } => {
                ok(&mut fields, "metrics");
                fields.push(("stats".to_string(), stats_v2_to_value(stats)));
                fields.push(("metrics".to_string(), metrics_to_value(metrics)));
            }
            Response::Closed { session } => {
                ok(&mut fields, "closed");
                fields.push(("session".to_string(), Value::str(session.clone())));
            }
            Response::Checkpointed { sessions } => {
                ok(&mut fields, "checkpointed");
                fields.push(("sessions".to_string(), Value::Int(*sessions as i64)));
            }
            Response::Recovered { sessions } => {
                ok(&mut fields, "recovered");
                fields.push(("sessions".to_string(), Value::Int(*sessions as i64)));
            }
            Response::Error { code, message } => {
                fields.push(("status".to_string(), Value::str("error")));
                fields.push((
                    "error".to_string(),
                    Value::object([
                        ("code".to_string(), Value::str(code.clone())),
                        ("message".to_string(), Value::str(message.clone())),
                    ]),
                ));
            }
        }
        Value::Object(fields).to_json()
    }
}

impl From<ProtocolError> for Response {
    fn from(e: ProtocolError) -> Response {
        Response::Error {
            code: e.code().to_string(),
            message: e.to_string(),
        }
    }
}

// ───────────────────── field helpers ─────────────────────

fn require_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, ProtocolError> {
    value
        .field(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::bad(format!("missing string field '{key}'")))
}

// ───────────────────── event codec ─────────────────────

/// Encodes an [`Event`] into its wire object (`{"type": ..., ...}`).
pub fn event_to_value(event: &Event) -> Value {
    let mut fields = vec![("type".to_string(), Value::str(event.name()))];
    match event {
        Event::Demonstrate(action) => {
            fields.push(("action".to_string(), action_to_value(action)));
        }
        Event::Accept { index } => {
            fields.push(("index".to_string(), Value::Int(*index as i64)));
        }
        Event::RejectAll | Event::AutomateStep | Event::Interrupt | Event::Finish => {}
    }
    Value::Object(fields)
}

/// Decodes an [`Event`] from its wire object.
///
/// # Errors
///
/// [`ProtocolError`] (`bad_request`) on missing/ill-typed fields or an
/// unknown event type.
pub fn event_from_value(value: &Value) -> Result<Event, ProtocolError> {
    match require_str(value, "type")? {
        "demonstrate" => Ok(Event::Demonstrate(action_from_value(
            value
                .field("action")
                .ok_or_else(|| ProtocolError::bad("missing field 'action'"))?,
        )?)),
        "accept" => Ok(Event::Accept {
            index: value
                .field("index")
                .and_then(Value::as_int)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| ProtocolError::bad("'index' must be a non-negative integer"))?,
        }),
        "reject_all" => Ok(Event::RejectAll),
        "automate_step" => Ok(Event::AutomateStep),
        "interrupt" => Ok(Event::Interrupt),
        "finish" => Ok(Event::Finish),
        other => Err(ProtocolError::bad(format!("unknown event type '{other}'"))),
    }
}

// ───────────────────── action codec ─────────────────────

/// Encodes an [`Action`] into its wire object (`{"op": ..., ...}`).
pub fn action_to_value(action: &Action) -> Value {
    let mut fields = Vec::new();
    let op = |name: &str| ("op".to_string(), Value::str(name));
    match action {
        Action::Click(p) => {
            fields.push(op("click"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
        }
        Action::ScrapeText(p) => {
            fields.push(op("scrape_text"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
        }
        Action::ScrapeLink(p) => {
            fields.push(op("scrape_link"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
        }
        Action::Download(p) => {
            fields.push(op("download"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
        }
        Action::GoBack => fields.push(op("go_back")),
        Action::ExtractUrl => fields.push(op("extract_url")),
        Action::SendKeys(p, text) => {
            fields.push(op("send_keys"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
            fields.push(("text".to_string(), Value::str(text.clone())));
        }
        Action::EnterData(p, vpath) => {
            fields.push(op("enter_data"));
            fields.push(("selector".to_string(), Value::str(p.to_string())));
            fields.push((
                "value_path".to_string(),
                Value::Array(
                    vpath
                        .segs()
                        .iter()
                        .map(|seg| match seg {
                            PathSeg::Key(k) => Value::str(k.clone()),
                            PathSeg::Index(i) => Value::Int(*i as i64),
                        })
                        .collect(),
                ),
            ));
        }
    }
    Value::Object(fields)
}

/// Decodes an [`Action`] from its wire object. Selectors use the XPath
/// subset of `webrobot_dom`; value paths are arrays whose string elements
/// are object keys and integer elements are 1-based array indices.
///
/// # Errors
///
/// [`ProtocolError`] (`bad_request`) on missing/ill-typed fields, an
/// unknown op, or an unparsable selector.
pub fn action_from_value(value: &Value) -> Result<Action, ProtocolError> {
    let selector = |value: &Value| -> Result<webrobot_dom::Path, ProtocolError> {
        let raw = require_str(value, "selector")?;
        raw.parse()
            .map_err(|e| ProtocolError::bad(format!("invalid selector '{raw}': {e}")))
    };
    match require_str(value, "op")? {
        "click" => Ok(Action::Click(selector(value)?)),
        "scrape_text" => Ok(Action::ScrapeText(selector(value)?)),
        "scrape_link" => Ok(Action::ScrapeLink(selector(value)?)),
        "download" => Ok(Action::Download(selector(value)?)),
        "go_back" => Ok(Action::GoBack),
        "extract_url" => Ok(Action::ExtractUrl),
        "send_keys" => Ok(Action::SendKeys(
            selector(value)?,
            require_str(value, "text")?.to_string(),
        )),
        "enter_data" => {
            let segs = value
                .field("value_path")
                .and_then(Value::as_array)
                .ok_or_else(|| ProtocolError::bad("missing array field 'value_path'"))?
                .iter()
                .map(|seg| match seg {
                    Value::Str(k) => Ok(PathSeg::Key(k.clone())),
                    Value::Int(i) => usize::try_from(*i)
                        .map(PathSeg::Index)
                        .map_err(|_| ProtocolError::bad("value_path indices must be non-negative")),
                    other => Err(ProtocolError::bad(format!(
                        "value_path segments must be strings or integers, got {other}"
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Action::EnterData(selector(value)?, ValuePath::new(segs)))
        }
        other => Err(ProtocolError::bad(format!("unknown action op '{other}'"))),
    }
}

fn output_to_value(output: &Output) -> Value {
    let kind = match output {
        Output::Text(_) => "text",
        Output::Link(_) => "link",
        Output::Url(_) => "url",
        Output::Download(_) => "download",
    };
    Value::object([
        ("kind".to_string(), Value::str(kind)),
        ("payload".to_string(), Value::str(output.payload())),
    ])
}

fn stats_to_value(stats: &ServiceStats) -> Value {
    Value::object([
        (
            "sessions_created".to_string(),
            Value::Int(stats.sessions_created as i64),
        ),
        (
            "sessions_closed".to_string(),
            Value::Int(stats.sessions_closed as i64),
        ),
        (
            "live_sessions".to_string(),
            Value::Int(stats.live_sessions as i64),
        ),
        (
            "evicted_sessions".to_string(),
            Value::Int(stats.evicted_sessions as i64),
        ),
        ("events_ok".to_string(), Value::Int(stats.events_ok as i64)),
        (
            "events_rejected".to_string(),
            Value::Int(stats.events_rejected as i64),
        ),
        ("evictions".to_string(), Value::Int(stats.evictions as i64)),
        ("restores".to_string(), Value::Int(stats.restores as i64)),
    ])
}

fn stats_v2_to_value(stats: &StatsV2) -> Value {
    Value::object([
        ("v".to_string(), Value::Int(2)),
        (
            "sessions".to_string(),
            Value::object([
                (
                    "created".to_string(),
                    Value::Int(stats.sessions.created as i64),
                ),
                (
                    "closed".to_string(),
                    Value::Int(stats.sessions.closed as i64),
                ),
                ("live".to_string(), Value::Int(stats.sessions.live as i64)),
                (
                    "evicted".to_string(),
                    Value::Int(stats.sessions.evicted as i64),
                ),
            ]),
        ),
        (
            "events".to_string(),
            Value::object([
                ("ok".to_string(), Value::Int(stats.events.ok as i64)),
                (
                    "rejected".to_string(),
                    Value::Int(stats.events.rejected as i64),
                ),
            ]),
        ),
        (
            "residency".to_string(),
            Value::object([
                (
                    "evictions".to_string(),
                    Value::Int(stats.residency.evictions as i64),
                ),
                (
                    "restores".to_string(),
                    Value::Int(stats.residency.restores as i64),
                ),
            ]),
        ),
    ])
}

fn histogram_to_value(hist: &HistogramSnapshot) -> Value {
    let buckets = hist
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, count)| **count > 0)
        .map(|(idx, count)| {
            Value::object([
                ("le_ns".to_string(), Value::Int(bucket_bound(idx) as i64)),
                ("count".to_string(), Value::Int(*count as i64)),
            ])
        })
        .collect();
    Value::object([
        ("count".to_string(), Value::Int(hist.count as i64)),
        ("mean_ns".to_string(), Value::Int(hist.mean_ns() as i64)),
        ("max_ns".to_string(), Value::Int(hist.max_ns as i64)),
        ("p50_ns".to_string(), Value::Int(hist.percentile(50) as i64)),
        ("p95_ns".to_string(), Value::Int(hist.percentile(95) as i64)),
        ("p99_ns".to_string(), Value::Int(hist.percentile(99) as i64)),
        ("buckets".to_string(), Value::Array(buckets)),
    ])
}

fn shard_gauges_to_value(shard: usize, gauges: &ShardGaugesSnapshot) -> Value {
    Value::object([
        ("shard".to_string(), Value::Int(shard as i64)),
        (
            "queue_depth".to_string(),
            Value::Int(gauges.queue_depth as i64),
        ),
        (
            "parked_sessions".to_string(),
            Value::Int(gauges.parked_sessions as i64),
        ),
        (
            "live_sessions".to_string(),
            Value::Int(gauges.live_sessions as i64),
        ),
        (
            "evicted_sessions".to_string(),
            Value::Int(gauges.evicted_sessions as i64),
        ),
        (
            "dirty_sessions".to_string(),
            Value::Int(gauges.dirty_sessions as i64),
        ),
        (
            "store_puts".to_string(),
            Value::Int(gauges.store_puts as i64),
        ),
        (
            "store_removes".to_string(),
            Value::Int(gauges.store_removes as i64),
        ),
        (
            "store_bytes".to_string(),
            Value::Int(gauges.store_bytes as i64),
        ),
        (
            "store_fsyncs".to_string(),
            Value::Int(gauges.store_fsyncs as i64),
        ),
        (
            "store_compactions".to_string(),
            Value::Int(gauges.store_compactions as i64),
        ),
    ])
}

fn metrics_to_value(metrics: &MetricsSnapshot) -> Value {
    let requests = metrics
        .requests
        .iter()
        .map(|req| {
            let errors = req
                .errors
                .iter()
                .map(|(code, count)| {
                    Value::object([
                        ("code".to_string(), Value::str(*code)),
                        ("count".to_string(), Value::Int(*count as i64)),
                    ])
                })
                .collect();
            Value::object([
                ("kind".to_string(), Value::str(req.kind)),
                ("ok".to_string(), Value::Int(req.ok as i64)),
                ("errors".to_string(), Value::Array(errors)),
                ("latency".to_string(), histogram_to_value(&req.latency)),
            ])
        })
        .collect();
    let shards = metrics
        .shards
        .iter()
        .enumerate()
        .map(|(shard, gauges)| shard_gauges_to_value(shard, gauges))
        .collect();
    Value::object([
        ("version".to_string(), Value::Int(metrics.version as i64)),
        ("requests".to_string(), Value::Array(requests)),
        (
            "lifecycle".to_string(),
            Value::object([
                ("evict".to_string(), histogram_to_value(&metrics.evict)),
                ("restore".to_string(), histogram_to_value(&metrics.restore)),
                (
                    "checkpoint".to_string(),
                    histogram_to_value(&metrics.checkpoint),
                ),
            ]),
        ),
        (
            "transport".to_string(),
            histogram_to_value(&metrics.transport),
        ),
        (
            "scheduler".to_string(),
            Value::object([
                ("quanta".to_string(), Value::Int(metrics.quanta as i64)),
                ("parks".to_string(), Value::Int(metrics.parks as i64)),
            ]),
        ),
        ("shards".to_string(), Value::Array(shards)),
    ])
}

/// Classifies a decoded request for per-kind metrics accounting.
pub(crate) fn request_kind(request: &Request) -> RequestKind {
    match request {
        Request::Create { .. } => RequestKind::Create,
        Request::Event { .. } => RequestKind::Event,
        Request::Outputs { .. } => RequestKind::Outputs,
        Request::Stats => RequestKind::Stats,
        Request::Metrics => RequestKind::Metrics,
        Request::Close { .. } => RequestKind::Close,
        Request::Checkpoint => RequestKind::Checkpoint,
        Request::Recover => RequestKind::Recover,
    }
}

/// The stable error code carried by an error response, if any.
pub(crate) fn response_error_code(response: &Response) -> Option<&str> {
    match response {
        Response::Error { code, .. } => Some(code.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> webrobot_dom::Path {
        s.parse().unwrap()
    }

    #[test]
    fn every_action_round_trips() {
        let actions = [
            Action::Click(p("/a[1]")),
            Action::ScrapeText(p("//h3[2]")),
            Action::ScrapeLink(p("/div[1]/a[3]")),
            Action::Download(p("//a[1]")),
            Action::GoBack,
            Action::ExtractUrl,
            Action::SendKeys(p("//input[1]"), "48105".to_string()),
            Action::EnterData(
                p("//input[1]"),
                ValuePath::new(vec![PathSeg::key("zips"), PathSeg::Index(2)]),
            ),
        ];
        for action in actions {
            let wire = action_to_value(&action);
            // The wire form survives a JSON print/parse cycle too.
            let reparsed = parse_json(&wire.to_json()).unwrap();
            assert_eq!(action_from_value(&reparsed).unwrap(), action, "{wire}");
        }
    }

    #[test]
    fn every_event_round_trips() {
        let events = [
            Event::Demonstrate(Action::ScrapeText(p("/a[1]"))),
            Event::Accept { index: 3 },
            Event::RejectAll,
            Event::AutomateStep,
            Event::Interrupt,
            Event::Finish,
        ];
        for event in events {
            let wire = event_to_value(&event);
            let reparsed = parse_json(&wire.to_json()).unwrap();
            assert_eq!(event_from_value(&reparsed).unwrap(), event);
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Create {
                site: "news".to_string(),
                input: Some(Value::object([(
                    "zips".to_string(),
                    Value::str_array(["48105"]),
                )])),
                deadline_ms: Some(250),
            },
            Request::Create {
                site: "news".to_string(),
                input: None,
                deadline_ms: None,
            },
            Request::Event {
                session: "s-1".to_string(),
                event: Event::Accept { index: 0 },
            },
            Request::Outputs {
                session: "s-2".to_string(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Close {
                session: "s-1".to_string(),
            },
            Request::Checkpoint,
            Request::Recover,
        ];
        for request in requests {
            assert_eq!(Request::from_json(&request.to_json()).unwrap(), request);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Request::from_json(r#"{"v": 2, "kind": "stats"}"#).unwrap_err();
        assert_eq!(err.code(), "unsupported_version");
        let err = Request::from_json(r#"{"kind": "stats"}"#).unwrap_err();
        assert_eq!(err.code(), "unsupported_version");
    }

    #[test]
    fn malformed_requests_are_bad_request() {
        for raw in [
            "not json",
            r#"{"v": 1}"#,
            r#"{"v": 1, "kind": "teleport"}"#,
            r#"{"v": 1, "kind": "event", "session": "s-1"}"#,
            r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "warp"}}"#,
            r#"{"v": 1, "kind": "create"}"#,
            r#"{"v": 1, "kind": "create", "site": "x", "deadline_ms": -4}"#,
            r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": -1}}"#,
        ] {
            let err = Request::from_json(raw).unwrap_err();
            assert_eq!(err.code(), "bad_request", "{raw}");
        }
    }

    #[test]
    fn error_responses_render_code_and_message() {
        let json = Response::Error {
            code: "wrong_mode".to_string(),
            message: "event 'accept' is not valid in mode Demonstrate".to_string(),
        }
        .to_json();
        let v = parse_json(&json).unwrap();
        assert_eq!(v.field("status").unwrap().as_str(), Some("error"));
        let error = v.field("error").unwrap();
        assert_eq!(error.field("code").unwrap().as_str(), Some("wrong_mode"));
        assert!(error
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("accept"));
    }
}
