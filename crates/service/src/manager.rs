//! The multi-tenant session manager: many concurrent [`Session`]s keyed by
//! generated [`SessionId`], with LRU/idle eviction backed by
//! [`SessionSnapshot`]s and aggregate [`ServiceStats`].

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use webrobot_browser::{Output, Site};
use webrobot_data::Value;
use webrobot_interact::{
    Event, Mode, Session, SessionConfig, SessionError, SessionSnapshot, StepOutcome,
};
use webrobot_lang::Action;

use crate::protocol::{Request, Response};

/// Opaque identifier of a managed session. Rendered as `s-<n>` on the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id (`s-<n>` → `n`, always ≥ 1) — what shard
    /// routing hashes on.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s-{}", self.0)
    }
}

impl FromStr for SessionId {
    type Err = ();

    fn from_str(s: &str) -> Result<SessionId, ()> {
        let id = s
            .strip_prefix("s-")
            .and_then(|n| n.parse().ok())
            .map(SessionId)
            .ok_or(())?;
        // Only the canonical spelling is an id: "s-007"/"s-+7" must not
        // alias "s-7", or responses echoing the client's raw string would
        // stop correlating with the id the session was issued under.
        if id.to_string() == s {
            Ok(id)
        } else {
            Err(())
        }
    }
}

/// Why the service rejected an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// `create` referenced a site name that was never registered.
    UnknownSite(String),
    /// The request referenced a session this manager does not know.
    UnknownSession(String),
    /// `create` would exceed [`ServiceConfig::max_sessions`].
    TooManySessions {
        /// The configured cap.
        max: usize,
    },
    /// The session itself rejected the event.
    Session(SessionError),
}

impl ServiceError {
    /// Stable machine-readable error code (the wire protocol's
    /// `error.code` field).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownSite(_) => "unknown_site",
            ServiceError::UnknownSession(_) => "unknown_session",
            ServiceError::TooManySessions { .. } => "too_many_sessions",
            ServiceError::Session(e) => e.code(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSite(name) => write!(f, "no site registered as '{name}'"),
            ServiceError::UnknownSession(id) => write!(f, "no session '{id}'"),
            ServiceError::TooManySessions { max } => {
                write!(f, "session cap reached ({max} sessions)")
            }
            ServiceError::Session(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServiceError {
    fn from(e: SessionError) -> ServiceError {
        ServiceError::Session(e)
    }
}

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-session configuration template. A `create` request's
    /// `deadline_ms` overrides `session.synth.timeout` for that session
    /// only (the per-session synthesis deadline).
    pub session: SessionConfig,
    /// How many sessions may be *live* (holding a browser + synthesizer)
    /// at once. The least-recently-used live session beyond this cap is
    /// evicted to a compact snapshot and transparently restored on its
    /// next event.
    pub max_live_sessions: usize,
    /// Hard cap on tracked sessions, live + evicted. Further `create`
    /// requests fail with `too_many_sessions`.
    pub max_sessions: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            session: SessionConfig::default(),
            max_live_sessions: 64,
            max_sessions: 4096,
        }
    }
}

/// Aggregate service statistics (the wire protocol's `stats` reply).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions closed (finished and forgotten).
    pub sessions_closed: u64,
    /// Sessions currently live (browser + synthesizer in memory).
    pub live_sessions: u64,
    /// Sessions currently evicted to snapshots.
    pub evicted_sessions: u64,
    /// Events dispatched successfully.
    pub events_ok: u64,
    /// Events rejected with a typed error.
    pub events_rejected: u64,
    /// Live→snapshot evictions performed.
    pub evictions: u64,
    /// Snapshot→live restorations performed.
    pub restores: u64,
}

impl ServiceStats {
    /// Field-wise sum — how [`ShardedManager`](crate::ShardedManager)
    /// aggregates its shards' counters into one service-wide view. Every
    /// field is a disjoint per-shard count, so addition is exact.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.sessions_created += other.sessions_created;
        self.sessions_closed += other.sessions_closed;
        self.live_sessions += other.live_sessions;
        self.evicted_sessions += other.evicted_sessions;
        self.events_ok += other.events_ok;
        self.events_rejected += other.events_rejected;
        self.evictions += other.evictions;
        self.restores += other.restores;
    }
}

/// What one dispatched event did, plus the session state a front-end
/// needs to render its next screen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventReply {
    /// What the step did.
    pub outcome: StepOutcome,
    /// The session's mode after the event.
    pub mode: Mode,
    /// Current predictions, best first.
    pub predictions: Vec<Action>,
    /// How many outputs the session has scraped so far.
    pub outputs: usize,
}

/// A site a front-end can open sessions on, with its default data source.
#[derive(Debug, Clone)]
struct RegisteredSite {
    site: Arc<Site>,
    input: Value,
}

/// One tracked session: live (boxed — a live session is orders of
/// magnitude larger than a snapshot), or evicted to a compact snapshot.
#[derive(Debug)]
enum Slot {
    Live {
        session: Box<Session>,
        last_used: u64,
    },
    Evicted {
        snapshot: Box<SessionSnapshot>,
    },
}

/// Owns many concurrent [`Session`]s behind the v1 wire protocol.
///
/// The manager is the string-in/string-out boundary a browser-extension
/// front-end (or `examples/service_loop.rs`) drives: feed it request JSON
/// via [`SessionManager::handle_json`], get response JSON back. Every
/// request is total — malformed input, unknown sessions, out-of-range
/// accepts and events after `finish` all come back as typed error
/// responses, never a panic.
///
/// Sessions beyond [`ServiceConfig::max_live_sessions`] are evicted
/// least-recently-used to [`SessionSnapshot`]s and restored on demand, so
/// a manager can track far more sessions than it keeps hot.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_service::{SessionManager, ServiceConfig};
/// # use webrobot_lang::Value;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let mut manager = SessionManager::new(ServiceConfig::default());
/// manager.register_site("anchors", Arc::new(b.start_at(home).finish()),
///     Value::Object(vec![]));
///
/// let reply = manager.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
/// assert!(reply.contains(r#""status":"ok""#), "{reply}");
/// let reply = manager.handle_json(
///     r#"{"v": 1, "kind": "event", "session": "s-1", "event":
///        {"type": "demonstrate", "action": {"op": "scrape_text", "selector": "/a[1]"}}}"#,
/// );
/// assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionManager {
    cfg: ServiceConfig,
    sites: BTreeMap<String, RegisteredSite>,
    sessions: BTreeMap<u64, Slot>,
    /// Count of `Slot::Live` entries, maintained at every live↔evicted
    /// transition so the per-event capacity check is O(1) instead of a
    /// full map scan.
    live: usize,
    next_id: u64,
    /// Distance between consecutively issued ids (1 standalone; the shard
    /// count when this manager is one shard of a `ShardedManager`, so the
    /// shards jointly issue the same `s-1, s-2, …` sequence a single
    /// manager would).
    id_stride: u64,
    clock: u64,
    stats: ServiceStats,
}

// A plain manager is single-threaded by design; what sharding needs is
// that a whole manager (every session, browser, synthesizer, snapshot it
// owns) can be *moved onto* a worker thread. Compile-time enforced so the
// `Rc`→`Arc` refactor underneath can never silently regress.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionManager>();
};

impl SessionManager {
    /// Creates an empty manager.
    pub fn new(cfg: ServiceConfig) -> SessionManager {
        SessionManager {
            cfg,
            sites: BTreeMap::new(),
            sessions: BTreeMap::new(),
            live: 0,
            next_id: 1,
            id_stride: 1,
            clock: 0,
            stats: ServiceStats::default(),
        }
    }

    /// Reconfigures the id sequence to `first, first + stride, …` —
    /// how [`ShardedManager`](crate::ShardedManager) arranges for shard
    /// `k` of `n` to issue exactly the ids `k+1, k+1+n, …`, keeping the
    /// interleaved global sequence identical to a single manager's.
    pub(crate) fn with_id_sequence(mut self, first: u64, stride: u64) -> SessionManager {
        debug_assert!(first >= 1 && stride >= 1);
        self.next_id = first;
        self.id_stride = stride.max(1);
        self
    }

    /// Registers a site under `name` with its default data source, so
    /// `create` requests can reference it by name over the wire.
    /// Re-registering a name replaces the previous entry (existing
    /// sessions keep their own `Arc<Site>` handle).
    pub fn register_site(&mut self, name: impl Into<String>, site: Arc<Site>, input: Value) {
        self.sites
            .insert(name.into(), RegisteredSite { site, input });
    }

    /// The names `create` currently accepts.
    pub fn site_names(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Opens a session on a registered site.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSite`] for an unregistered name,
    /// [`ServiceError::TooManySessions`] at the session cap.
    pub fn create(
        &mut self,
        site: &str,
        input: Option<Value>,
        deadline: Option<Duration>,
    ) -> Result<SessionId, ServiceError> {
        if self.sessions.len() >= self.cfg.max_sessions {
            return Err(ServiceError::TooManySessions {
                max: self.cfg.max_sessions,
            });
        }
        let registered = self
            .sites
            .get(site)
            .ok_or_else(|| ServiceError::UnknownSite(site.to_string()))?;
        let mut session_cfg = self.cfg.session.clone();
        if let Some(deadline) = deadline {
            session_cfg.synth.timeout = deadline;
        }
        let session = Session::new(
            registered.site.clone(),
            input.unwrap_or_else(|| registered.input.clone()),
            session_cfg,
        );
        let id = SessionId(self.next_id);
        self.next_id += self.id_stride;
        self.clock += 1;
        self.sessions.insert(
            id.0,
            Slot::Live {
                session: Box::new(session),
                last_used: self.clock,
            },
        );
        self.live += 1;
        self.stats.sessions_created += 1;
        self.enforce_live_capacity(Some(id.0));
        Ok(id)
    }

    /// Dispatches one event to a session, transparently restoring it from
    /// its snapshot if it was evicted.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id; otherwise
    /// whatever the session's own state machine rejects (wrapped
    /// [`SessionError`]).
    pub fn dispatch(&mut self, id: SessionId, event: Event) -> Result<EventReply, ServiceError> {
        self.ensure_live(id)?;
        // Enforce the live cap up front so a restore that displaced the
        // cap holds even when the event itself is rejected below.
        self.enforce_live_capacity(Some(id.0));
        let Some(Slot::Live { session, .. }) = self.sessions.get_mut(&id.0) else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        let result = session.handle(event);
        let reply = match result {
            Ok(outcome) => EventReply {
                outcome,
                mode: session.mode(),
                predictions: session.predictions().to_vec(),
                outputs: session.browser().outputs().len(),
            },
            Err(e) => {
                self.stats.events_rejected += 1;
                return Err(ServiceError::Session(e));
            }
        };
        self.stats.events_ok += 1;
        Ok(reply)
    }

    /// Everything a session has scraped so far (restores it if evicted).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id.
    pub fn outputs(&mut self, id: SessionId) -> Result<Vec<Output>, ServiceError> {
        self.ensure_live(id)?;
        self.enforce_live_capacity(Some(id.0));
        match self.sessions.get(&id.0) {
            Some(Slot::Live { session, .. }) => Ok(session.browser().outputs().to_vec()),
            _ => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Finishes and forgets a session (live or evicted).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id.
    pub fn close(&mut self, id: SessionId) -> Result<(), ServiceError> {
        match self.sessions.remove(&id.0) {
            Some(mut slot) => {
                if let Slot::Live { session, .. } = &mut slot {
                    session.finish().ok(); // idempotent best effort
                    self.live -= 1;
                }
                self.stats.sessions_closed += 1;
                Ok(())
            }
            None => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Evicts one session to its snapshot, releasing its browser and
    /// synthesizer. Returns `false` when the id is unknown or the session
    /// is already evicted. The session transparently restores on its next
    /// event.
    pub fn evict(&mut self, id: SessionId) -> bool {
        match self.sessions.get_mut(&id.0) {
            Some(slot) => match slot {
                Slot::Live { session, .. } => {
                    let snapshot = Box::new(session.snapshot());
                    *slot = Slot::Evicted { snapshot };
                    self.live -= 1;
                    self.stats.evictions += 1;
                    true
                }
                Slot::Evicted { .. } => false,
            },
            None => false,
        }
    }

    /// Evicts every live session not used within the last `max_idle`
    /// manager operations (the logical idle horizon; the manager's clock
    /// ticks once per create/dispatch/outputs). Returns how many sessions
    /// were evicted.
    pub fn evict_idle(&mut self, max_idle: u64) -> usize {
        let horizon = self.clock.saturating_sub(max_idle);
        let idle: Vec<u64> = self
            .sessions
            .iter()
            .filter_map(|(&id, slot)| match slot {
                Slot::Live { last_used, .. } if *last_used < horizon => Some(id),
                _ => None,
            })
            .collect();
        let count = idle.len();
        for id in idle {
            self.evict(SessionId(id));
        }
        count
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.stats.clone();
        stats.live_sessions = self.live as u64;
        stats.evicted_sessions = (self.sessions.len() - self.live) as u64;
        stats
    }

    /// How many sessions are currently live.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// How many sessions the manager tracks (live + evicted).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether `id` is currently evicted to a snapshot.
    pub fn is_evicted(&self, id: SessionId) -> bool {
        matches!(self.sessions.get(&id.0), Some(Slot::Evicted { .. }))
    }

    /// Handles one typed request. Never panics: every failure is a
    /// [`Response::Error`].
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Create {
                site,
                input,
                deadline_ms,
            } => match self.create(&site, input, deadline_ms.map(Duration::from_millis)) {
                Ok(id) => Response::Created {
                    session: id.to_string(),
                    mode: Mode::Demonstrate,
                },
                Err(e) => error_response(&e),
            },
            Request::Event { session, event } => match self.parse_id(&session) {
                Ok(id) => match self.dispatch(id, event) {
                    Ok(reply) => Response::Event {
                        session,
                        outcome: reply.outcome,
                        mode: reply.mode,
                        predictions: reply.predictions,
                        outputs: reply.outputs,
                    },
                    Err(e) => error_response(&e),
                },
                Err(e) => error_response(&e),
            },
            Request::Outputs { session } => {
                match self.parse_id(&session).and_then(|id| self.outputs(id)) {
                    Ok(outputs) => Response::Outputs { session, outputs },
                    Err(e) => error_response(&e),
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Close { session } => {
                match self.parse_id(&session).and_then(|id| self.close(id)) {
                    Ok(()) => Response::Closed { session },
                    Err(e) => error_response(&e),
                }
            }
        }
    }

    /// The string-in/string-out service boundary: decodes a request,
    /// handles it, encodes the response. Total — malformed input comes
    /// back as an error response, never a panic.
    pub fn handle_json(&mut self, request: &str) -> String {
        match Request::from_json(request) {
            Ok(request) => self.handle(request),
            Err(e) => Response::from(e),
        }
        .to_json()
    }

    // ───────────────────── internals ─────────────────────

    fn parse_id(&self, raw: &str) -> Result<SessionId, ServiceError> {
        raw.parse()
            .map_err(|()| ServiceError::UnknownSession(raw.to_string()))
    }

    /// Restores `id` from its snapshot if evicted, and stamps its LRU
    /// clock.
    fn ensure_live(&mut self, id: SessionId) -> Result<(), ServiceError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .sessions
            .get_mut(&id.0)
            .ok_or_else(|| ServiceError::UnknownSession(id.to_string()))?;
        match slot {
            Slot::Live { last_used, .. } => {
                *last_used = clock;
                Ok(())
            }
            Slot::Evicted { snapshot } => {
                let session = Session::restore(snapshot).map_err(ServiceError::Session)?;
                *slot = Slot::Live {
                    session: Box::new(session),
                    last_used: clock,
                };
                self.live += 1;
                self.stats.restores += 1;
                Ok(())
            }
        }
    }

    /// Evicts least-recently-used live sessions (never `keep`) until the
    /// live count fits [`ServiceConfig::max_live_sessions`].
    fn enforce_live_capacity(&mut self, keep: Option<u64>) {
        while self.live_count() > self.cfg.max_live_sessions.max(1) {
            let lru = self
                .sessions
                .iter()
                .filter_map(|(&id, slot)| match slot {
                    Slot::Live { last_used, .. } if Some(id) != keep => Some((*last_used, id)),
                    _ => None,
                })
                .min();
            match lru {
                Some((_, id)) => {
                    self.evict(SessionId(id));
                }
                None => break, // only `keep` is live
            }
        }
    }
}

pub(crate) fn error_response(e: &ServiceError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn manager(cfg: ServiceConfig) -> SessionManager {
        let mut m = SessionManager::new(cfg);
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        m
    }

    fn scrape(i: usize) -> Event {
        Event::Demonstrate(Action::ScrapeText(format!("/a[{i}]").parse().unwrap()))
    }

    #[test]
    fn session_ids_render_and_parse() {
        let id: SessionId = "s-42".parse().unwrap();
        assert_eq!(id.to_string(), "s-42");
        assert!("42".parse::<SessionId>().is_err());
        assert!("s-".parse::<SessionId>().is_err());
        assert!("s-x".parse::<SessionId>().is_err());
        // Non-canonical spellings must not alias canonical ids.
        assert!("s-007".parse::<SessionId>().is_err());
        assert!("s-+7".parse::<SessionId>().is_err());
        assert!("s- 7".parse::<SessionId>().is_err());
    }

    #[test]
    fn full_workflow_through_the_typed_api() {
        let mut m = manager(ServiceConfig::default());
        let id = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        let reply = m.dispatch(id, scrape(2)).unwrap();
        assert_eq!(reply.mode, Mode::Authorize);
        assert!(!reply.predictions.is_empty());
        m.dispatch(id, Event::Accept { index: 0 }).unwrap();
        let reply = m.dispatch(id, Event::Accept { index: 0 }).unwrap();
        assert_eq!(reply.mode, Mode::Automate);
        let mut automated = 0;
        loop {
            let reply = m.dispatch(id, Event::AutomateStep).unwrap();
            match reply.outcome {
                StepOutcome::Automated(_) => automated += 1,
                _ => break,
            }
            if reply.mode != Mode::Automate {
                break; // the loop ran off the last item
            }
        }
        assert_eq!(automated, 2);
        assert_eq!(m.outputs(id).unwrap().len(), 6);
        m.close(id).unwrap();
        assert_eq!(
            m.dispatch(id, scrape(1)),
            Err(ServiceError::UnknownSession(id.to_string()))
        );
    }

    #[test]
    fn unknown_site_and_session_are_typed_errors() {
        let mut m = manager(ServiceConfig::default());
        assert_eq!(
            m.create("nope", None, None),
            Err(ServiceError::UnknownSite("nope".to_string()))
        );
        assert_eq!(
            m.dispatch(SessionId(99), Event::Finish),
            Err(ServiceError::UnknownSession("s-99".to_string()))
        );
    }

    #[test]
    fn session_cap_is_enforced() {
        let mut m = manager(ServiceConfig {
            max_sessions: 2,
            ..ServiceConfig::default()
        });
        m.create("anchors", None, None).unwrap();
        m.create("anchors", None, None).unwrap();
        assert_eq!(
            m.create("anchors", None, None),
            Err(ServiceError::TooManySessions { max: 2 })
        );
        // Closing frees a slot.
        m.close(SessionId(1)).unwrap();
        m.create("anchors", None, None).unwrap();
    }

    #[test]
    fn lru_eviction_and_transparent_restore() {
        let mut m = manager(ServiceConfig {
            max_live_sessions: 1,
            ..ServiceConfig::default()
        });
        let a = m.create("anchors", None, None).unwrap();
        m.dispatch(a, scrape(1)).unwrap();
        let b = m.create("anchors", None, None).unwrap();
        // Creating (and touching) b evicted a.
        assert!(m.is_evicted(a));
        assert!(!m.is_evicted(b));
        assert_eq!(m.live_count(), 1);
        // Touching a restores it and evicts b.
        let reply = m.dispatch(a, scrape(2)).unwrap();
        assert_eq!(reply.mode, Mode::Authorize, "restored session continues");
        assert!(m.is_evicted(b));
        let stats = m.stats();
        assert!(stats.evictions >= 2);
        assert_eq!(stats.restores, 1);
        assert_eq!(stats.live_sessions, 1);
        assert_eq!(stats.evicted_sessions, 1);
    }

    #[test]
    fn idle_eviction_frees_stale_sessions() {
        let mut m = manager(ServiceConfig::default());
        let a = m.create("anchors", None, None).unwrap();
        let b = m.create("anchors", None, None).unwrap();
        m.dispatch(a, scrape(1)).unwrap();
        for _ in 0..10 {
            m.dispatch(a, Event::Interrupt).unwrap();
        }
        assert_eq!(m.evict_idle(5), 1, "only the stale session is evicted");
        assert!(m.is_evicted(b));
        assert!(!m.is_evicted(a));
    }

    #[test]
    fn per_session_deadline_overrides_the_template() {
        let mut m = manager(ServiceConfig::default());
        let id = m
            .create("anchors", None, Some(Duration::from_millis(250)))
            .unwrap();
        // The deadline is applied to this session only; the template is
        // untouched (observable: the default-config session still works).
        let other = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        m.dispatch(other, scrape(1)).unwrap();
    }

    #[test]
    fn rejected_events_are_counted_not_fatal() {
        let mut m = manager(ServiceConfig::default());
        let id = m.create("anchors", None, None).unwrap();
        assert!(matches!(
            m.dispatch(id, Event::AutomateStep),
            Err(ServiceError::Session(SessionError::WrongMode { .. }))
        ));
        m.dispatch(id, scrape(1)).unwrap();
        let stats = m.stats();
        assert_eq!(stats.events_rejected, 1);
        assert_eq!(stats.events_ok, 1);
    }

    #[test]
    fn handle_json_is_total_on_garbage() {
        let mut m = manager(ServiceConfig::default());
        for raw in [
            "",
            "][",
            r#"{"v": 9, "kind": "stats"}"#,
            r#"{"v": 1, "kind": "event", "session": "bogus", "event": {"type": "finish"}}"#,
            r#"{"v": 1, "kind": "close", "session": "s-77"}"#,
        ] {
            let reply = m.handle_json(raw);
            assert!(reply.contains(r#""status":"error""#), "{raw} → {reply}");
        }
    }
}
