//! The multi-tenant session manager: many concurrent [`Session`]s keyed by
//! generated [`SessionId`], with LRU/idle eviction backed by
//! [`SessionSnapshot`]s, an optional persistent [`SnapshotStore`] behind
//! the evictions (so a manager survives a process restart), and aggregate
//! [`ServiceStats`].

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use webrobot_browser::{Output, Site};
use webrobot_data::Value;
use webrobot_interact::{Event, Mode, Session, SessionError, SessionSnapshot, StepOutcome};
use webrobot_lang::Action;
use webrobot_metrics::{Metrics, RequestKind};

use crate::config::ServiceConfig;
use crate::persist::{self, ManagerMeta};
use crate::protocol::{self, Request, Response};
use crate::stats::{ServiceStats, StatsV2};
use crate::store::{SnapshotStore, StoreError};

/// The largest session id a manager will adopt from a store. Ids are
/// issued densely from 1, so nothing legitimate comes near this; the cap
/// keeps every id — and the metadata record's `next_id` cursor — safely
/// representable in the wire format's `i64`.
const MAX_SESSION_ID: u64 = 1 << 62;

/// Opaque identifier of a managed session. Rendered as `s-<n>` on the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id (`s-<n>` → `n`, always ≥ 1) — what shard
    /// routing hashes on.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s-{}", self.0)
    }
}

impl FromStr for SessionId {
    type Err = ();

    fn from_str(s: &str) -> Result<SessionId, ()> {
        let id = s
            .strip_prefix("s-")
            .and_then(|n| n.parse().ok())
            .map(SessionId)
            .ok_or(())?;
        // Only the canonical spelling is an id: "s-007"/"s-+7" must not
        // alias "s-7", or responses echoing the client's raw string would
        // stop correlating with the id the session was issued under.
        if id.to_string() == s {
            Ok(id)
        } else {
            Err(())
        }
    }
}

/// Why the service rejected an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// `create` referenced a site name that was never registered.
    UnknownSite(String),
    /// The request referenced a session this manager does not know.
    UnknownSession(String),
    /// `create` would exceed [`ServiceConfig::max_sessions`].
    TooManySessions {
        /// The configured cap.
        max: usize,
    },
    /// The session itself rejected the event.
    Session(SessionError),
    /// `checkpoint`/`recover` was requested but the manager has no
    /// [`SnapshotStore`] attached.
    NoStore,
    /// The snapshot store failed (I/O error, or a tampered/truncated
    /// record).
    Store(StoreError),
    /// The target shard's bounded job queue is full
    /// ([`ServiceConfig::max_queued_per_shard`]); the client should back
    /// off and retry. Raised by
    /// [`ShardedManager`](crate::ShardedManager) — a single-threaded
    /// manager applies backpressure through its caller instead.
    Overloaded,
}

impl ServiceError {
    /// Stable machine-readable error code (the wire protocol's
    /// `error.code` field).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownSite(_) => "unknown_site",
            ServiceError::UnknownSession(_) => "unknown_session",
            ServiceError::TooManySessions { .. } => "too_many_sessions",
            ServiceError::Session(e) => e.code(),
            ServiceError::NoStore => "no_store",
            ServiceError::Store(e) => e.code(),
            ServiceError::Overloaded => "overloaded",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSite(name) => write!(f, "no site registered as '{name}'"),
            ServiceError::UnknownSession(id) => write!(f, "no session '{id}'"),
            ServiceError::TooManySessions { max } => {
                write!(f, "session cap reached ({max} sessions)")
            }
            ServiceError::Session(e) => e.fmt(f),
            ServiceError::NoStore => write!(f, "no snapshot store is attached to this manager"),
            ServiceError::Store(e) => e.fmt(f),
            ServiceError::Overloaded => {
                write!(f, "shard queue is full; back off and retry")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Session(e) => Some(e),
            ServiceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServiceError {
    fn from(e: SessionError) -> ServiceError {
        ServiceError::Session(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> ServiceError {
        ServiceError::Store(e)
    }
}

/// What one dispatched event did, plus the session state a front-end
/// needs to render its next screen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventReply {
    /// What the step did.
    pub outcome: StepOutcome,
    /// The session's mode after the event.
    pub mode: Mode,
    /// Current predictions, best first.
    pub predictions: Vec<Action>,
    /// How many outputs the session has scraped so far.
    pub outputs: usize,
}

/// A site a front-end can open sessions on, with its default data source.
#[derive(Debug, Clone)]
struct RegisteredSite {
    site: Arc<Site>,
    input: Value,
}

/// One tracked session plus the bookkeeping the persistence layer needs:
/// the site *name* it was created under and its `deadline_ms` override
/// (a store record carries both, so a reopened manager can rebuild the
/// session config from its own template).
#[derive(Debug)]
struct Tracked {
    site: String,
    deadline_ms: Option<u64>,
    slot: Slot,
    /// `true` while the session's state has diverged from the record the
    /// store holds for it: set on create and on every successful event,
    /// cleared when a snapshot record reaches the store (checkpoint or
    /// eviction spill). `checkpoint` skips clean sessions, which is what
    /// makes the periodic flush O(dirty) rather than O(live).
    dirty: bool,
}

/// A tracked session's state: live (boxed — a live session is orders of
/// magnitude larger than a snapshot), evicted to a compact in-memory
/// snapshot, or — after a store reopen — persisted as a raw store record
/// that is decoded and restored on first touch (sites are registered
/// after construction, so resolution must be deferred).
#[derive(Debug)]
enum Slot {
    Live {
        session: Box<Session>,
        last_used: u64,
    },
    Evicted {
        snapshot: Box<SessionSnapshot>,
    },
    Stored {
        raw: Value,
    },
}

/// Owns many concurrent [`Session`]s behind the v1 wire protocol.
///
/// The manager is the string-in/string-out boundary a browser-extension
/// front-end (or `examples/service_loop.rs`) drives: feed it request JSON
/// via [`SessionManager::handle_json`], get response JSON back. Every
/// request is total — malformed input, unknown sessions, out-of-range
/// accepts and events after `finish` all come back as typed error
/// responses, never a panic.
///
/// Sessions beyond [`ServiceConfig::max_live_sessions`] are evicted
/// least-recently-used to [`SessionSnapshot`]s and restored on demand, so
/// a manager can track far more sessions than it keeps hot.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use webrobot_browser::SiteBuilder;
/// # use webrobot_dom::parse_html;
/// # use webrobot_service::{SessionManager, ServiceConfig};
/// # use webrobot_lang::Value;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SiteBuilder::new();
/// let home = b.add_page("https://x.test/", parse_html(
///     "<html><a>1</a><a>2</a><a>3</a></html>")?);
/// let mut manager = SessionManager::new(ServiceConfig::default());
/// manager.register_site("anchors", Arc::new(b.start_at(home).finish()),
///     Value::Object(vec![]));
///
/// let reply = manager.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
/// assert!(reply.contains(r#""status":"ok""#), "{reply}");
/// let reply = manager.handle_json(
///     r#"{"v": 1, "kind": "event", "session": "s-1", "event":
///        {"type": "demonstrate", "action": {"op": "scrape_text", "selector": "/a[1]"}}}"#,
/// );
/// assert!(reply.contains(r#""outcome":"recorded""#), "{reply}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionManager {
    cfg: ServiceConfig,
    sites: BTreeMap<String, RegisteredSite>,
    sessions: BTreeMap<u64, Tracked>,
    /// Count of `Slot::Live` entries, maintained at every live↔evicted
    /// transition so the per-event capacity check is O(1) instead of a
    /// full map scan.
    live: usize,
    next_id: u64,
    /// The first id this manager was configured to issue — fixed at
    /// construction, it names the manager's residue class
    /// (`id ≡ id_first mod id_stride`) and therefore its metadata record
    /// key in the store.
    id_first: u64,
    /// Distance between consecutively issued ids (1 standalone; the shard
    /// count when this manager is one shard of a `ShardedManager`, so the
    /// shards jointly issue the same `s-1, s-2, …` sequence a single
    /// manager would).
    id_stride: u64,
    clock: u64,
    stats: StatsV2,
    /// The observability registry this manager records into. A standalone
    /// manager owns a single-shard registry and records its own requests;
    /// a shard of a [`ShardedManager`](crate::ShardedManager) shares the
    /// front end's registry (see [`SessionManager::attach_metrics`]) and
    /// leaves request accounting to the front end, recording only its
    /// lifecycle events (evict/restore/checkpoint) and gauges.
    metrics: Arc<Metrics>,
    /// Which gauge slot in `metrics` this manager owns.
    metrics_shard: usize,
    /// Whether `handle`/`handle_json` record request counters/latency
    /// here (false when a sharded front end records at its boundary, so
    /// requests are never double-counted).
    record_requests: bool,
    /// The durability substrate, when attached: evictions spill serialized
    /// snapshots into it, `checkpoint`/`Drop` flush everything, and the
    /// constructor adopts whatever the store already holds.
    store: Option<Box<dyn SnapshotStore>>,
    /// Session records whose best-effort store removal (on `close`)
    /// failed; `checkpoint` retries exactly these — and only these, so
    /// records this manager never wrote (e.g. a hand-off from another
    /// process awaiting `recover`) are never touched. The queue is
    /// in-memory: a hard kill before a successful retry leaves the stale
    /// record in the store, and the session resurrects on reopen (the
    /// one double-failure window the durability contract accepts; see
    /// `close`).
    pending_removals: Vec<u64>,
}

// A plain manager is single-threaded by design; what sharding needs is
// that a whole manager (every session, browser, synthesizer, snapshot it
// owns) can be *moved onto* a worker thread. Compile-time enforced so the
// `Rc`→`Arc` refactor underneath can never silently regress.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionManager>();
};

impl SessionManager {
    /// Creates an empty manager with no durability (sessions die with the
    /// process). See [`SessionManager::with_store`] for the durable form.
    pub fn new(cfg: ServiceConfig) -> SessionManager {
        SessionManager {
            cfg,
            sites: BTreeMap::new(),
            sessions: BTreeMap::new(),
            live: 0,
            next_id: 1,
            id_first: 1,
            id_stride: 1,
            clock: 0,
            stats: StatsV2::default(),
            metrics: Arc::new(Metrics::new(1)),
            metrics_shard: 0,
            record_requests: true,
            store: None,
            pending_removals: Vec::new(),
        }
    }

    /// Points this manager at a shared [`Metrics`] registry, owning gauge
    /// slot `shard`. `record_requests` controls whether `handle` records
    /// request counters here — a sharded front end passes `false` and
    /// records at its own boundary instead.
    pub(crate) fn attach_metrics(
        &mut self,
        metrics: Arc<Metrics>,
        shard: usize,
        record_requests: bool,
    ) {
        self.metrics = metrics;
        self.metrics_shard = shard;
        self.record_requests = record_requests;
    }

    /// The observability registry this manager records into. Scrape with
    /// [`Metrics::snapshot`]; the wire form is the `{"kind":"metrics"}`
    /// request.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Creates a manager backed by a persistent [`SnapshotStore`],
    /// **adopting whatever the store already holds**: if the store was
    /// written by a previous process (via eviction spills, an explicit
    /// `checkpoint`, or the flush on drop), the new manager resumes that
    /// manager's id sequence, LRU clock and counters, and tracks every
    /// persisted session — each one is decoded and restored on its first
    /// touch, after the caller re-registers its sites. On an empty store
    /// this is simply a durable [`SessionManager::new`].
    ///
    /// Restart is designed to be unobservable on the wire: a reopened
    /// manager answers session requests byte-identically to one that
    /// never restarted (`tests/persistence.rs` pins this at shard counts
    /// 1, 2 and 4).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the store cannot be enumerated or holds a
    /// record that does not parse as JSON (reopen fails fast on a
    /// corrupt store; a record that parses but decodes to an impossible
    /// session surfaces later, as a typed per-session wire error).
    pub fn with_store(
        cfg: ServiceConfig,
        store: Box<dyn SnapshotStore>,
    ) -> Result<SessionManager, StoreError> {
        SessionManager::with_store_sequenced(cfg, store, 1, 1)
    }

    /// The sharded form of [`SessionManager::with_store`]: adopt only the
    /// sessions in this shard's residue class and the matching metadata
    /// record.
    pub(crate) fn with_store_sequenced(
        cfg: ServiceConfig,
        store: Box<dyn SnapshotStore>,
        first: u64,
        stride: u64,
    ) -> Result<SessionManager, StoreError> {
        let mut manager = SessionManager::new(cfg).with_id_sequence(first, stride);
        manager.store = Some(store);
        if let Some(raw) = manager.store.as_ref().unwrap().get(&manager.meta_key())? {
            let meta = persist::decode_meta(&raw)
                .map_err(|detail| StoreError::corrupt(manager.meta_key(), detail))?;
            // A next_id outside this manager's residue class would make
            // two shards issue colliding (and mis-routing) ids: reject a
            // tampered cursor instead of adopting it.
            if meta.next_id % manager.id_stride != first % manager.id_stride {
                return Err(StoreError::corrupt(
                    manager.meta_key(),
                    format!(
                        "next_id {} is not in the id sequence {first}, {}, …",
                        meta.next_id,
                        first + stride
                    ),
                ));
            }
            // Same bound as adopted session ids: a cursor past this
            // could issue ids the (i64-valued) meta record cannot
            // round-trip, locking the store out on the reopen after.
            if meta.next_id > MAX_SESSION_ID {
                return Err(StoreError::corrupt(
                    manager.meta_key(),
                    format!("next_id {} exceeds the id space", meta.next_id),
                ));
            }
            manager.next_id = meta.next_id.max(manager.next_id);
            manager.clock = meta.clock;
            manager.stats = StatsV2::from_legacy(&meta.stats);
        }
        manager.adopt_sessions()?;
        Ok(manager)
    }

    /// Reconfigures the id sequence to `first, first + stride, …` —
    /// how [`ShardedManager`](crate::ShardedManager) arranges for shard
    /// `k` of `n` to issue exactly the ids `k+1, k+1+n, …`, keeping the
    /// interleaved global sequence identical to a single manager's.
    pub(crate) fn with_id_sequence(mut self, first: u64, stride: u64) -> SessionManager {
        debug_assert!(first >= 1 && stride >= 1);
        self.next_id = first;
        self.id_first = first;
        self.id_stride = stride.max(1);
        self
    }

    /// Registers a site under `name` with its default data source, so
    /// `create` requests can reference it by name over the wire.
    /// Re-registering a name replaces the previous entry (existing
    /// sessions keep their own `Arc<Site>` handle).
    pub fn register_site(&mut self, name: impl Into<String>, site: Arc<Site>, input: Value) {
        self.sites
            .insert(name.into(), RegisteredSite { site, input });
    }

    /// The names `create` currently accepts.
    pub fn site_names(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Opens a session on a registered site.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSite`] for an unregistered name,
    /// [`ServiceError::TooManySessions`] at the session cap.
    pub fn create(
        &mut self,
        site: &str,
        input: Option<Value>,
        deadline: Option<Duration>,
    ) -> Result<SessionId, ServiceError> {
        if self.sessions.len() >= self.cfg.max_sessions {
            return Err(ServiceError::TooManySessions {
                max: self.cfg.max_sessions,
            });
        }
        let registered = self
            .sites
            .get(site)
            .ok_or_else(|| ServiceError::UnknownSite(site.to_string()))?;
        let mut session_cfg = self.cfg.session.clone();
        if let Some(deadline) = deadline {
            session_cfg.synth.timeout = deadline;
        }
        let session = Session::new(
            registered.site.clone(),
            input.unwrap_or_else(|| registered.input.clone()),
            session_cfg,
        );
        let id = SessionId(self.next_id);
        // Unreachable short of an adopted id near u64::MAX saturating the
        // cursor: never silently overwrite an existing session.
        if self.sessions.contains_key(&id.0) {
            return Err(ServiceError::TooManySessions {
                max: self.cfg.max_sessions,
            });
        }
        self.next_id = self.next_id.saturating_add(self.id_stride);
        self.clock += 1;
        self.sessions.insert(
            id.0,
            Tracked {
                site: site.to_string(),
                // Persistence is millisecond-granular (the wire unit);
                // round a sub-millisecond deadline up, never down to a
                // zero timeout.
                deadline_ms: deadline.map(|d| d.as_nanos().div_ceil(1_000_000) as u64),
                slot: Slot::Live {
                    session: Box::new(session),
                    last_used: self.clock,
                },
                dirty: true,
            },
        );
        self.live += 1;
        self.stats.sessions.created += 1;
        self.enforce_live_capacity(Some(id.0));
        Ok(id)
    }

    /// Dispatches one event to a session, transparently restoring it from
    /// its snapshot if it was evicted.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id; otherwise
    /// whatever the session's own state machine rejects (wrapped
    /// [`SessionError`]).
    pub fn dispatch(&mut self, id: SessionId, event: Event) -> Result<EventReply, ServiceError> {
        self.ensure_live(id)?;
        // Enforce the live cap up front so a restore that displaced the
        // cap holds even when the event itself is rejected below.
        self.enforce_live_capacity(Some(id.0));
        let Some(tracked) = self.sessions.get_mut(&id.0) else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        let Slot::Live { session, .. } = &mut tracked.slot else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        let result = session.handle(event);
        let reply = match result {
            Ok(outcome) => EventReply {
                outcome,
                mode: session.mode(),
                predictions: session.predictions().to_vec(),
                outputs: session.browser().outputs().len(),
            },
            Err(e) => {
                self.stats.events.rejected += 1;
                return Err(ServiceError::Session(e));
            }
        };
        // The session advanced: its store record (if any) is now stale.
        tracked.dirty = true;
        self.stats.events.ok += 1;
        Ok(reply)
    }

    /// Dispatches one `event` request like the `Event` arm of
    /// [`SessionManager::handle`], but bounds the synthesis work to
    /// `budget`. Returns the finished wire response, or `None` when the
    /// session performed the action and parked mid-synthesis — drive it
    /// to completion with [`SessionManager::continue_event_quantum`]
    /// before its next event (the sharded scheduler round-robins these
    /// continuations). Errors always complete immediately, as typed
    /// error responses.
    pub fn handle_event_quantum(
        &mut self,
        session: &str,
        event: Event,
        budget: Duration,
    ) -> Option<Response> {
        let id = match self.parse_id(session) {
            Ok(id) => id,
            Err(e) => return Some(error_response(&e)),
        };
        if let Err(e) = self.ensure_live(id) {
            return Some(error_response(&e));
        }
        self.enforce_live_capacity(Some(id.0));
        let Some(tracked) = self.sessions.get_mut(&id.0) else {
            return Some(error_response(&ServiceError::UnknownSession(
                id.to_string(),
            )));
        };
        let Slot::Live { session: live, .. } = &mut tracked.slot else {
            return Some(error_response(&ServiceError::UnknownSession(
                id.to_string(),
            )));
        };
        match live.handle_quantum(event, budget) {
            Ok(Some(outcome)) => {
                tracked.dirty = true;
                self.stats.events.ok += 1;
                Some(self.event_response(id, outcome))
            }
            Ok(None) => {
                // Parked mid-synthesis, but the action itself already
                // executed — the session has diverged from its record.
                tracked.dirty = true;
                None
            }
            Err(e) => {
                self.stats.events.rejected += 1;
                Some(error_response(&ServiceError::Session(e)))
            }
        }
    }

    /// Continues a parked event with another `budget` of synthesis.
    /// Returns the finished wire response, or `None` if the session
    /// parked again. Only meaningful after
    /// [`SessionManager::handle_event_quantum`] returned `None` for this
    /// session.
    pub fn continue_event_quantum(&mut self, session: &str, budget: Duration) -> Option<Response> {
        let id = match self.parse_id(session) {
            Ok(id) => id,
            Err(e) => return Some(error_response(&e)),
        };
        let Some(tracked) = self.sessions.get_mut(&id.0) else {
            return Some(error_response(&ServiceError::UnknownSession(
                id.to_string(),
            )));
        };
        let Slot::Live { session: live, .. } = &mut tracked.slot else {
            return Some(error_response(&ServiceError::UnknownSession(
                id.to_string(),
            )));
        };
        let outcome = live.continue_quantum(budget)?;
        tracked.dirty = true;
        self.stats.events.ok += 1;
        Some(self.event_response(id, outcome))
    }

    /// `true` while `id` is live with a half-finished quantum step; such
    /// a session cannot be evicted or snapshotted until the step
    /// completes.
    pub fn has_pending_step(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id.0).map(|t| &t.slot),
            Some(Slot::Live { session, .. }) if session.has_pending()
        )
    }

    /// The wire `event` response for a completed step on session `id`
    /// (shared by the unsliced and the quantum dispatch paths).
    fn event_response(&self, id: SessionId, outcome: StepOutcome) -> Response {
        match self.sessions.get(&id.0) {
            Some(Tracked {
                slot: Slot::Live { session, .. },
                ..
            }) => Response::Event {
                session: id.to_string(),
                outcome,
                mode: session.mode(),
                predictions: session.predictions().to_vec(),
                outputs: session.browser().outputs().len(),
            },
            _ => error_response(&ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Everything a session has scraped so far (restores it if evicted).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id.
    pub fn outputs(&mut self, id: SessionId) -> Result<Vec<Output>, ServiceError> {
        self.ensure_live(id)?;
        self.enforce_live_capacity(Some(id.0));
        match self.sessions.get(&id.0) {
            Some(Tracked {
                slot: Slot::Live { session, .. },
                ..
            }) => Ok(session.browser().outputs().to_vec()),
            _ => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Finishes and forgets a session (live, evicted or persisted). When a
    /// store is attached the session's record is removed from it too — a
    /// closed session does not resurrect on the next reopen. (A failed
    /// removal is queued and retried by the next checkpoint; only the
    /// double failure of that removal *and* a hard kill before any retry
    /// can leave a stale record behind.)
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] for an untracked id.
    pub fn close(&mut self, id: SessionId) -> Result<(), ServiceError> {
        match self.sessions.remove(&id.0) {
            Some(mut tracked) => {
                if let Slot::Live { session, .. } = &mut tracked.slot {
                    session.handle(Event::Finish).ok(); // idempotent best effort
                    self.live -= 1;
                }
                if let Some(store) = self.store.as_mut() {
                    // Best effort now; a failure is queued and retried by
                    // the next checkpoint so the closed session cannot
                    // resurrect on a later reopen.
                    if store.remove(&id.to_string()).is_err() {
                        self.pending_removals.push(id.0);
                    }
                }
                self.stats.sessions.closed += 1;
                Ok(())
            }
            None => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Evicts one session to its snapshot, releasing its browser and
    /// synthesizer. Returns `false` when the id is unknown or the session
    /// is already evicted. The session transparently restores on its next
    /// event.
    ///
    /// When a store is attached the serialized snapshot is also spilled
    /// to it (best effort — the in-memory snapshot stays authoritative,
    /// and the next `checkpoint` retries any failed write), so an evicted
    /// session is durable the moment it goes cold.
    pub fn evict(&mut self, id: SessionId) -> bool {
        let Some(tracked) = self.sessions.get_mut(&id.0) else {
            return false;
        };
        let Slot::Live { session, .. } = &mut tracked.slot else {
            return false;
        };
        if session.has_pending() {
            // A parked quantum step is mid-flight: the action is in the
            // trace but predictions and mode are stale, so a snapshot
            // taken now would not replay to an equivalent session.
            return false;
        }
        let started = Instant::now();
        let mut snapshot = session.snapshot();
        if !self.cfg.delta_restore {
            snapshot = snapshot.without_schedule();
        } else if !self.cfg.engine_digest {
            snapshot = snapshot.without_digest();
        }
        let record = self
            .store
            .is_some()
            .then(|| persist::encode_session(id.0, &tracked.site, tracked.deadline_ms, &snapshot));
        tracked.slot = Slot::Evicted {
            snapshot: Box::new(snapshot),
        };
        self.live -= 1;
        self.stats.residency.evictions += 1;
        if let (Some(store), Some(record)) = (self.store.as_mut(), record) {
            if store.put(&id.to_string(), &record).is_ok() {
                // The spilled record is exactly the snapshot we now hold:
                // the next checkpoint can skip this session.
                if let Some(tracked) = self.sessions.get_mut(&id.0) {
                    tracked.dirty = false;
                }
            }
        }
        self.metrics.record_evict(started.elapsed());
        true
    }

    /// Evicts every live session not used within the last `max_idle`
    /// manager operations (the logical idle horizon; the manager's clock
    /// ticks once per create/dispatch/outputs). Returns how many sessions
    /// were evicted.
    pub fn evict_idle(&mut self, max_idle: u64) -> usize {
        let horizon = self.clock.saturating_sub(max_idle);
        let idle: Vec<u64> = self
            .sessions
            .iter()
            .filter_map(|(&id, tracked)| match &tracked.slot {
                Slot::Live { session, last_used } if *last_used < horizon => {
                    (!session.has_pending()).then_some(id)
                }
                _ => None,
            })
            .collect();
        let count = idle.len();
        for id in idle {
            self.evict(SessionId(id));
        }
        count
    }

    /// Current aggregate statistics in the flat legacy shape (the
    /// `{"kind":"stats"}` wire reply). New code should prefer
    /// [`SessionManager::stats_v2`].
    pub fn stats(&self) -> ServiceStats {
        self.stats_v2().legacy()
    }

    /// Current aggregate statistics in the versioned, grouped v2 shape
    /// (what the `{"kind":"metrics"}` wire reply carries).
    pub fn stats_v2(&self) -> StatsV2 {
        let mut stats = self.stats;
        stats.sessions.live = self.live as u64;
        stats.sessions.evicted = (self.sessions.len() - self.live) as u64;
        stats
    }

    /// Refreshes this manager's gauge slot in the metrics registry:
    /// session residency (live/evicted/dirty) and, when a store is
    /// attached, its cumulative I/O totals. The sharded scheduler calls
    /// this between jobs; the standalone manager on every `metrics`
    /// request.
    pub(crate) fn refresh_gauges(&self) {
        let gauges = self.metrics.shard(self.metrics_shard);
        let dirty = self.sessions.values().filter(|t| t.dirty).count() as u64;
        gauges.set_sessions(
            self.live as u64,
            (self.sessions.len() - self.live) as u64,
            dirty,
        );
        if let Some(store) = self.store.as_ref() {
            let io = store.io_stats();
            gauges.set_store_io(
                io.puts,
                io.removes,
                io.bytes_written,
                io.fsyncs,
                io.compactions,
            );
        }
    }

    /// How many sessions are currently live.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// How many sessions the manager tracks (live + evicted).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether `id` is currently cold: evicted to a snapshot, or still a
    /// persisted store record awaiting its first touch after a reopen.
    pub fn is_evicted(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id.0).map(|t| &t.slot),
            Some(Slot::Evicted { .. } | Slot::Stored { .. })
        )
    }

    /// Whether a [`SnapshotStore`] is attached to this manager.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Flushes the manager to its store: every tracked session's snapshot
    /// record plus the manager metadata (id sequence, LRU clock,
    /// counters), so a process that stops here can be reopened with
    /// [`SessionManager::with_store`] and continue byte-identically. Live
    /// sessions stay live — checkpointing is non-destructive. Returns how
    /// many session records the store now holds for this manager.
    ///
    /// Dropping a store-backed manager checkpoints implicitly; the
    /// explicit form exists on the wire (`{"kind": "checkpoint"}`) so an
    /// operator can bound the data-loss window under hard kills.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoStore`] without a store;
    /// [`ServiceError::Store`] when a write fails (records already
    /// written stay written — the operation is idempotent, re-run it).
    pub fn checkpoint(&mut self) -> Result<usize, ServiceError> {
        let started = Instant::now();
        let Some(store) = self.store.as_mut() else {
            return Err(ServiceError::NoStore);
        };
        // Stream one record at a time — a manager may track thousands of
        // sessions, and buffering every serialized record before the
        // first write would spike memory by the whole serialized state.
        let count = self.sessions.len();
        for (&id, tracked) in &mut self.sessions {
            // A clean session's store record is already current: skip the
            // serialization and the write entirely. This is what makes a
            // steady-state checkpoint O(dirty), not O(live).
            if self.cfg.incremental_checkpoint && !tracked.dirty {
                continue;
            }
            let record = match &tracked.slot {
                Slot::Live { session, .. } => {
                    let mut snapshot = session.snapshot();
                    if !self.cfg.delta_restore {
                        snapshot = snapshot.without_schedule();
                    } else if !self.cfg.engine_digest {
                        snapshot = snapshot.without_digest();
                    }
                    persist::encode_session(id, &tracked.site, tracked.deadline_ms, &snapshot)
                }
                Slot::Evicted { snapshot } => {
                    persist::encode_session(id, &tracked.site, tracked.deadline_ms, snapshot)
                }
                // Never rehydrated since the reopen: the store already
                // holds this exact record; write it through unchanged.
                Slot::Stored { raw } => raw.clone(),
            };
            store.put(&SessionId(id).to_string(), &record)?;
            tracked.dirty = false;
        }
        let meta = persist::encode_meta(&ManagerMeta {
            next_id: self.next_id,
            clock: self.clock,
            stats: self.stats.legacy(),
        });
        let meta_key = format!("shard-{}-of-{}", self.id_first, self.id_stride);
        store.put(&meta_key, &meta)?;
        // Retry removals whose best-effort delete on `close` failed:
        // exactly the records this manager owes a deletion — never
        // untracked keys it did not write (those may be another
        // process's hand-off awaiting `recover`).
        self.pending_removals
            .retain(|&id| store.remove(&SessionId(id).to_string()).is_err());
        // Group-committing stores defer fsync; "checkpoint replied ok"
        // must always mean "on disk", so force the commit here.
        store.flush()?;
        self.metrics.record_checkpoint(started.elapsed());
        Ok(count)
    }

    /// Adopts sessions from the store that this manager does not yet
    /// track (only ids in its residue class — each shard recovers exactly
    /// the sessions it owns). The constructor does this implicitly; the
    /// explicit form exists on the wire (`{"kind": "recover"}`) for
    /// stores shared with, or written by, another process. Returns how
    /// many sessions were adopted.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoStore`] without a store; [`ServiceError::Store`]
    /// when the store cannot be read.
    pub fn recover(&mut self) -> Result<usize, ServiceError> {
        if self.store.is_none() {
            return Err(ServiceError::NoStore);
        }
        Ok(self.adopt_sessions()?)
    }

    /// Handles one typed request. Never panics: every failure is a
    /// [`Response::Error`].
    pub fn handle(&mut self, request: Request) -> Response {
        if !self.record_requests {
            return self.handle_inner(request);
        }
        let kind = protocol::request_kind(&request);
        let started = Instant::now();
        let response = self.handle_inner(request);
        self.metrics.record_request(
            kind,
            protocol::response_error_code(&response),
            started.elapsed(),
        );
        response
    }

    fn handle_inner(&mut self, request: Request) -> Response {
        match request {
            Request::Create {
                site,
                input,
                deadline_ms,
            } => match self.create(&site, input, deadline_ms.map(Duration::from_millis)) {
                Ok(id) => Response::Created {
                    session: id.to_string(),
                    mode: Mode::Demonstrate,
                },
                Err(e) => error_response(&e),
            },
            Request::Event { session, event } => match self.parse_id(&session) {
                Ok(id) => match self.dispatch(id, event) {
                    Ok(reply) => Response::Event {
                        session,
                        outcome: reply.outcome,
                        mode: reply.mode,
                        predictions: reply.predictions,
                        outputs: reply.outputs,
                    },
                    Err(e) => error_response(&e),
                },
                Err(e) => error_response(&e),
            },
            Request::Outputs { session } => {
                match self.parse_id(&session).and_then(|id| self.outputs(id)) {
                    Ok(outputs) => Response::Outputs { session, outputs },
                    Err(e) => error_response(&e),
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => {
                self.refresh_gauges();
                self.metrics.shard(self.metrics_shard).set_queue_depth(0);
                Response::Metrics {
                    stats: self.stats_v2(),
                    metrics: Box::new(self.metrics.snapshot()),
                }
            }
            Request::Close { session } => {
                match self.parse_id(&session).and_then(|id| self.close(id)) {
                    Ok(()) => Response::Closed { session },
                    Err(e) => error_response(&e),
                }
            }
            Request::Checkpoint => match self.checkpoint() {
                Ok(sessions) => Response::Checkpointed { sessions },
                Err(e) => error_response(&e),
            },
            Request::Recover => match self.recover() {
                Ok(sessions) => Response::Recovered { sessions },
                Err(e) => error_response(&e),
            },
        }
    }

    /// The string-in/string-out service boundary: decodes a request,
    /// handles it, encodes the response. Total — malformed input comes
    /// back as an error response, never a panic.
    pub fn handle_json(&mut self, request: &str) -> String {
        match Request::from_json(request) {
            Ok(request) => self.handle(request),
            Err(e) => {
                if self.record_requests {
                    self.metrics.record_request(
                        RequestKind::Malformed,
                        Some(e.code()),
                        Duration::ZERO,
                    );
                }
                Response::from(e)
            }
        }
        .to_json()
    }

    // ───────────────────── internals ─────────────────────

    fn parse_id(&self, raw: &str) -> Result<SessionId, ServiceError> {
        raw.parse()
            .map_err(|()| ServiceError::UnknownSession(raw.to_string()))
    }

    /// Restores `id` from its snapshot if evicted (or from its store
    /// record if persisted), and stamps its LRU clock.
    fn ensure_live(&mut self, id: SessionId) -> Result<(), ServiceError> {
        self.clock += 1;
        let clock = self.clock;
        let tracked = self
            .sessions
            .get_mut(&id.0)
            .ok_or_else(|| ServiceError::UnknownSession(id.to_string()))?;
        match &mut tracked.slot {
            Slot::Live { last_used, .. } => {
                *last_used = clock;
                Ok(())
            }
            Slot::Evicted { snapshot } => {
                let started = Instant::now();
                let session = Session::restore(snapshot).map_err(ServiceError::Session)?;
                tracked.slot = Slot::Live {
                    session: Box::new(session),
                    last_used: clock,
                };
                self.live += 1;
                self.stats.residency.restores += 1;
                self.metrics.record_restore(started.elapsed());
                Ok(())
            }
            Slot::Stored { raw } => {
                // First touch after a reopen: decode the record against
                // the *current* site registry and config template, then
                // restore by replay. Rehydration does not bump the
                // `restores` counter — a restart is unobservable on the
                // wire, unlike an eviction cycle, which both the original
                // and the reopened manager count identically.
                let record = persist::decode_session(raw)
                    .map_err(|detail| StoreError::corrupt(id.to_string(), detail))?;
                if record.id != id.0 {
                    return Err(ServiceError::Store(StoreError::corrupt(
                        id.to_string(),
                        format!("record claims to be session 's-{}'", record.id),
                    )));
                }
                let registered = self
                    .sites
                    .get(&record.site)
                    .ok_or_else(|| ServiceError::UnknownSite(record.site.clone()))?;
                let mut session_cfg = self.cfg.session.clone();
                if let Some(ms) = record.deadline_ms {
                    session_cfg.synth.timeout = Duration::from_millis(ms);
                }
                let snapshot = SessionSnapshot {
                    site: registered.site.clone(),
                    input: record.input,
                    cfg: session_cfg,
                    executed: record.executed,
                    mode: record.mode,
                    predictions: record.predictions,
                    consecutive_accepts: record.consecutive_accepts,
                    automated_steps: record.automated_steps,
                    last_program: record.last_program,
                    resynth: record.resynth,
                    engine: record.engine,
                };
                let session = Session::restore(&snapshot).map_err(ServiceError::Session)?;
                tracked.site = record.site;
                tracked.deadline_ms = record.deadline_ms;
                tracked.slot = Slot::Live {
                    session: Box::new(session),
                    last_used: clock,
                };
                self.live += 1;
                Ok(())
            }
        }
    }

    /// Evicts least-recently-used live sessions (never `keep`) until the
    /// live count fits [`ServiceConfig::max_live_sessions`].
    fn enforce_live_capacity(&mut self, keep: Option<u64>) {
        while self.live_count() > self.cfg.max_live_sessions.max(1) {
            let lru = self
                .sessions
                .iter()
                .filter_map(|(&id, tracked)| match &tracked.slot {
                    // A parked quantum step pins its session live; evict
                    // would refuse it, and retrying it here would spin.
                    Slot::Live { session, last_used } if Some(id) != keep => {
                        (!session.has_pending()).then_some((*last_used, id))
                    }
                    _ => None,
                })
                .min();
            match lru {
                Some((_, id)) => {
                    self.evict(SessionId(id));
                }
                None => break, // only `keep` is live
            }
        }
    }

    /// The key this manager's metadata record lives under:
    /// `shard-<first>-of-<stride>`. Standalone managers use
    /// `shard-1-of-1`; shard `k` of `N` uses `shard-<k+1>-of-<N>`, so
    /// same-topology reopens find their counters exactly while *session*
    /// records stay shard-count-agnostic.
    fn meta_key(&self) -> String {
        format!("shard-{}-of-{}", self.id_first, self.id_stride)
    }

    /// Adopts every store session record in this manager's residue class
    /// that it does not already track, as lazily-decoded `Stored` slots.
    /// Bumps `next_id` past adopted ids so a store written without a
    /// metadata record (crash before the first checkpoint) can never
    /// hand out a colliding id.
    fn adopt_sessions(&mut self) -> Result<usize, StoreError> {
        let Some(store) = self.store.as_ref() else {
            return Ok(0);
        };
        let mut raws: Vec<(u64, Value)> = Vec::new();
        for key in store.keys()? {
            let Ok(id) = key.parse::<SessionId>() else {
                continue; // metadata records, foreign keys
            };
            if id.0 % self.id_stride != self.id_first % self.id_stride {
                continue; // another shard's session
            }
            // No manager ever issues id 0; under sharding a stored
            // `s-0` would pass shard N-1's residue filter yet route to
            // shard 0 — an unreachable, uncloseable zombie. Hostile by
            // construction: reject it.
            if id.0 == 0 {
                return Err(StoreError::corrupt(key, "session id 0 is never issued"));
            }
            // No manager can legitimately issue an id this large, and
            // adopting one would push the `next_id` cursor past what the
            // (i64-valued) metadata record can represent — locking the
            // whole store out on the next reopen. Reject the hostile
            // file instead.
            if id.0 > MAX_SESSION_ID {
                return Err(StoreError::corrupt(
                    key,
                    format!("session id {} exceeds the id space", id.0),
                ));
            }
            if self.sessions.contains_key(&id.0) {
                continue;
            }
            if self.pending_removals.contains(&id.0) {
                continue; // closed; its failed store removal is pending
            }
            if let Some(raw) = store.get(&key)? {
                raws.push((id.0, raw));
            }
        }
        let adopted = raws.len();
        for (id, raw) in raws {
            // Site/deadline are read authoritatively when the record is
            // decoded on first touch (`ensure_live`); until then a
            // checkpoint writes the raw record through unchanged, so
            // nothing reads these placeholder fields.
            self.sessions.insert(
                id,
                Tracked {
                    site: String::new(),
                    deadline_ms: None,
                    slot: Slot::Stored { raw },
                    // The record we adopted *is* the store's record.
                    dirty: false,
                },
            );
            // Jump the cursor past the adopted id arithmetically (a
            // loop would spin ~id/stride times on a large id).
            if self.next_id <= id {
                let steps = (id - self.next_id) / self.id_stride + 1;
                self.next_id = self
                    .next_id
                    .saturating_add(steps.saturating_mul(self.id_stride));
            }
        }
        Ok(adopted)
    }
}

impl Drop for SessionManager {
    /// A store-backed manager flushes itself on the way out, so a clean
    /// shutdown (including a `ShardedManager` dropping its shard workers)
    /// persists every session without an explicit `checkpoint`. Errors
    /// are swallowed — there is no one left to report them to — which is
    /// exactly why latency-sensitive deployments checkpoint explicitly.
    fn drop(&mut self) {
        // Never checkpoint while unwinding: if the panic came from the
        // store itself, a second panic here would abort the process
        // before a shard's panic guard can mark the shard down.
        if std::thread::panicking() {
            return;
        }
        if self.store.is_some() {
            let _ = self.checkpoint();
        }
    }
}

pub(crate) fn error_response(e: &ServiceError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::SiteBuilder;
    use webrobot_dom::parse_html;

    fn anchor_site(n: usize) -> Arc<Site> {
        let body: String = (1..=n).map(|i| format!("<a>item {i}</a>")).collect();
        let mut b = SiteBuilder::new();
        let home = b.add_page(
            "https://anchors.test/",
            parse_html(&format!("<html>{body}</html>")).unwrap(),
        );
        Arc::new(b.start_at(home).finish())
    }

    fn manager(cfg: ServiceConfig) -> SessionManager {
        let mut m = SessionManager::new(cfg);
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        m
    }

    fn scrape(i: usize) -> Event {
        Event::Demonstrate(Action::ScrapeText(format!("/a[{i}]").parse().unwrap()))
    }

    #[test]
    fn session_ids_render_and_parse() {
        let id: SessionId = "s-42".parse().unwrap();
        assert_eq!(id.to_string(), "s-42");
        assert!("42".parse::<SessionId>().is_err());
        assert!("s-".parse::<SessionId>().is_err());
        assert!("s-x".parse::<SessionId>().is_err());
        // Non-canonical spellings must not alias canonical ids.
        assert!("s-007".parse::<SessionId>().is_err());
        assert!("s-+7".parse::<SessionId>().is_err());
        assert!("s- 7".parse::<SessionId>().is_err());
    }

    #[test]
    fn full_workflow_through_the_typed_api() {
        let mut m = manager(ServiceConfig::default());
        let id = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        let reply = m.dispatch(id, scrape(2)).unwrap();
        assert_eq!(reply.mode, Mode::Authorize);
        assert!(!reply.predictions.is_empty());
        m.dispatch(id, Event::Accept { index: 0 }).unwrap();
        let reply = m.dispatch(id, Event::Accept { index: 0 }).unwrap();
        assert_eq!(reply.mode, Mode::Automate);
        let mut automated = 0;
        loop {
            let reply = m.dispatch(id, Event::AutomateStep).unwrap();
            match reply.outcome {
                StepOutcome::Automated(_) => automated += 1,
                _ => break,
            }
            if reply.mode != Mode::Automate {
                break; // the loop ran off the last item
            }
        }
        assert_eq!(automated, 2);
        assert_eq!(m.outputs(id).unwrap().len(), 6);
        m.close(id).unwrap();
        assert_eq!(
            m.dispatch(id, scrape(1)),
            Err(ServiceError::UnknownSession(id.to_string()))
        );
    }

    #[test]
    fn unknown_site_and_session_are_typed_errors() {
        let mut m = manager(ServiceConfig::default());
        assert_eq!(
            m.create("nope", None, None),
            Err(ServiceError::UnknownSite("nope".to_string()))
        );
        assert_eq!(
            m.dispatch(SessionId(99), Event::Finish),
            Err(ServiceError::UnknownSession("s-99".to_string()))
        );
    }

    #[test]
    fn session_cap_is_enforced() {
        let mut m = manager(ServiceConfig {
            max_sessions: 2,
            ..ServiceConfig::default()
        });
        m.create("anchors", None, None).unwrap();
        m.create("anchors", None, None).unwrap();
        assert_eq!(
            m.create("anchors", None, None),
            Err(ServiceError::TooManySessions { max: 2 })
        );
        // Closing frees a slot.
        m.close(SessionId(1)).unwrap();
        m.create("anchors", None, None).unwrap();
    }

    #[test]
    fn lru_eviction_and_transparent_restore() {
        let mut m = manager(ServiceConfig {
            max_live_sessions: 1,
            ..ServiceConfig::default()
        });
        let a = m.create("anchors", None, None).unwrap();
        m.dispatch(a, scrape(1)).unwrap();
        let b = m.create("anchors", None, None).unwrap();
        // Creating (and touching) b evicted a.
        assert!(m.is_evicted(a));
        assert!(!m.is_evicted(b));
        assert_eq!(m.live_count(), 1);
        // Touching a restores it and evicts b.
        let reply = m.dispatch(a, scrape(2)).unwrap();
        assert_eq!(reply.mode, Mode::Authorize, "restored session continues");
        assert!(m.is_evicted(b));
        let stats = m.stats();
        assert!(stats.evictions >= 2);
        assert_eq!(stats.restores, 1);
        assert_eq!(stats.live_sessions, 1);
        assert_eq!(stats.evicted_sessions, 1);
    }

    #[test]
    fn idle_eviction_frees_stale_sessions() {
        let mut m = manager(ServiceConfig::default());
        let a = m.create("anchors", None, None).unwrap();
        let b = m.create("anchors", None, None).unwrap();
        m.dispatch(a, scrape(1)).unwrap();
        for _ in 0..10 {
            m.dispatch(a, Event::Interrupt).unwrap();
        }
        assert_eq!(m.evict_idle(5), 1, "only the stale session is evicted");
        assert!(m.is_evicted(b));
        assert!(!m.is_evicted(a));
    }

    #[test]
    fn per_session_deadline_overrides_the_template() {
        let mut m = manager(ServiceConfig::default());
        let id = m
            .create("anchors", None, Some(Duration::from_millis(250)))
            .unwrap();
        // The deadline is applied to this session only; the template is
        // untouched (observable: the default-config session still works).
        let other = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        m.dispatch(other, scrape(1)).unwrap();
    }

    #[test]
    fn rejected_events_are_counted_not_fatal() {
        let mut m = manager(ServiceConfig::default());
        let id = m.create("anchors", None, None).unwrap();
        assert!(matches!(
            m.dispatch(id, Event::AutomateStep),
            Err(ServiceError::Session(SessionError::WrongMode { .. }))
        ));
        m.dispatch(id, scrape(1)).unwrap();
        let stats = m.stats();
        assert_eq!(stats.events_rejected, 1);
        assert_eq!(stats.events_ok, 1);
    }

    #[test]
    fn durability_requests_without_a_store_are_typed_errors() {
        let mut m = manager(ServiceConfig::default());
        assert_eq!(m.checkpoint(), Err(ServiceError::NoStore));
        assert_eq!(m.recover(), Err(ServiceError::NoStore));
        for kind in ["checkpoint", "recover"] {
            let reply = m.handle_json(&format!(r#"{{"v": 1, "kind": "{kind}"}}"#));
            assert!(reply.contains(r#""code":"no_store""#), "{reply}");
        }
    }

    #[test]
    fn evictions_spill_to_the_store_and_a_reopen_adopts_them() {
        let dir =
            std::env::temp_dir().join(format!("webrobot-manager-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Box::new(crate::store::FileStore::open(&dir).unwrap());
        let mut m = SessionManager::with_store(ServiceConfig::default(), store).unwrap();
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        let id = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        m.dispatch(id, scrape(2)).unwrap();
        // An eviction spills the snapshot record immediately.
        assert!(m.evict(id));
        assert!(dir.join("s-1.json").exists(), "eviction spilled to disk");
        let stats_before = m.stats();
        drop(m); // flush on drop writes the metadata record too
        assert!(dir.join("shard-1-of-1.json").exists());

        // "Restart": reopen the store, re-register the site, continue.
        let store = Box::new(crate::store::FileStore::open(&dir).unwrap());
        let mut m = SessionManager::with_store(ServiceConfig::default(), store).unwrap();
        m.register_site("anchors", anchor_site(6), Value::Object(vec![]));
        assert_eq!(m.session_count(), 1);
        assert!(m.is_evicted(id), "adopted as a cold store record");
        let stats = m.stats();
        assert_eq!(stats.sessions_created, stats_before.sessions_created);
        assert_eq!(stats.events_ok, stats_before.events_ok);
        // The adopted session continues mid-workflow, and new creates do
        // not collide with the adopted id.
        let reply = m.dispatch(id, Event::Accept { index: 0 }).unwrap();
        assert_eq!(reply.outputs, 3);
        assert_eq!(m.create("anchors", None, None).unwrap(), SessionId(2));
        // Closing removes the durable record.
        m.close(id).unwrap();
        assert!(!dir.join("s-1.json").exists(), "closed sessions stay dead");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_next_id_outside_the_shard_residue_is_rejected() {
        // Shard 0 of 2 issues ids 1, 3, 5, …; a metadata record claiming
        // next_id 4 (shard 1's sequence) would make the two shards
        // collide, so the reopen must reject it as corrupt.
        let mut store = crate::store::MemoryStore::new();
        let meta = persist::encode_meta(&ManagerMeta {
            next_id: 4,
            clock: 0,
            stats: ServiceStats::default(),
        });
        store.put("shard-1-of-2", &meta).unwrap();
        match SessionManager::with_store_sequenced(ServiceConfig::default(), Box::new(store), 1, 2)
        {
            Err(StoreError::Corrupt { key, detail }) => {
                assert_eq!(key, "shard-1-of-2");
                assert!(detail.contains("next_id 4"), "{detail}");
            }
            other => panic!("expected a corrupt-meta error, got {other:?}"),
        }
        // Same for a cursor past the id space: adopting it would issue
        // ids the i64-valued meta record cannot round-trip.
        let mut store = crate::store::MemoryStore::new();
        let meta = persist::encode_meta(&ManagerMeta {
            next_id: MAX_SESSION_ID + 2,
            clock: 0,
            stats: ServiceStats::default(),
        });
        store.put("shard-1-of-1", &meta).unwrap();
        match SessionManager::with_store(ServiceConfig::default(), Box::new(store)) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("id space"), "{detail}")
            }
            other => panic!("expected a corrupt-meta error, got {other:?}"),
        }
    }

    /// A store whose `remove` fails while `fail_removes` is set — the
    /// transient I/O failure `close`'s best-effort delete can hit.
    #[derive(Debug)]
    struct FlakyRemoveStore {
        inner: crate::store::MemoryStore,
        fail_removes: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl SnapshotStore for FlakyRemoveStore {
        fn put(&mut self, key: &str, record: &Value) -> Result<(), StoreError> {
            self.inner.put(key, record)
        }
        fn get(&self, key: &str) -> Result<Option<Value>, StoreError> {
            self.inner.get(key)
        }
        fn remove(&mut self, key: &str) -> Result<(), StoreError> {
            if self.fail_removes.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(StoreError::Io {
                    detail: format!("transient failure removing '{key}'"),
                });
            }
            self.inner.remove(key)
        }
        fn keys(&self) -> Result<Vec<String>, StoreError> {
            self.inner.keys()
        }
    }

    /// A close whose store removal fails transiently is retried by the
    /// next checkpoint, and the closed session can never resurrect
    /// through `recover` in the meantime.
    #[test]
    fn failed_close_removals_are_retried_and_never_resurrect() {
        let fail = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let store = Box::new(FlakyRemoveStore {
            inner: crate::store::MemoryStore::new(),
            fail_removes: fail.clone(),
        });
        let mut m = SessionManager::with_store(ServiceConfig::default(), store).unwrap();
        m.register_site("anchors", anchor_site(4), Value::Object(vec![]));
        let id = m.create("anchors", None, None).unwrap();
        m.dispatch(id, scrape(1)).unwrap();
        assert!(m.evict(id), "record spilled to the store");

        fail.store(true, std::sync::atomic::Ordering::SeqCst);
        m.close(id).unwrap(); // remove fails silently, queued for retry
        assert_eq!(
            m.recover().unwrap(),
            0,
            "a pending-removal record must not be re-adopted"
        );
        fail.store(false, std::sync::atomic::Ordering::SeqCst);
        m.checkpoint().unwrap(); // retries the removal
        assert_eq!(m.recover().unwrap(), 0, "record is gone for good");
        assert_eq!(
            m.dispatch(id, scrape(2)),
            Err(ServiceError::UnknownSession(id.to_string()))
        );
    }

    /// Checkpoint never deletes records this manager did not write: a
    /// record dropped into the store by another process (a hand-off)
    /// survives checkpoints until `recover` adopts it.
    #[test]
    fn checkpoint_preserves_foreign_records_awaiting_recover() {
        let dir =
            std::env::temp_dir().join(format!("webrobot-manager-handoff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Box::new(crate::store::FileStore::open(&dir).unwrap());
        let mut m = SessionManager::with_store(ServiceConfig::default(), store).unwrap();
        m.register_site("anchors", anchor_site(4), Value::Object(vec![]));
        m.create("anchors", None, None).unwrap();
        // Another process hands a session off by writing into the dir.
        std::fs::write(dir.join("s-7.json"), "{\"v\":1,\"kind\":\"session\"}").unwrap();
        m.checkpoint().unwrap();
        assert!(
            dir.join("s-7.json").exists(),
            "foreign record must survive the checkpoint"
        );
        assert_eq!(m.recover().unwrap(), 1, "and recover adopts it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A hostile store key with an absurd session id is rejected as
    /// corrupt at reopen: adopting it would hang an O(id) cursor bump or
    /// push `next_id` past what the i64-valued metadata record can
    /// represent (locking the store out on the *next* reopen).
    #[test]
    fn huge_adopted_ids_are_rejected_as_corrupt() {
        for raw_id in [u64::MAX, MAX_SESSION_ID + 1] {
            let mut store = crate::store::MemoryStore::new();
            let key = format!("s-{raw_id}");
            store.put(&key, &Value::object([])).unwrap();
            match SessionManager::with_store(ServiceConfig::default(), Box::new(store)) {
                Err(StoreError::Corrupt { key: k, detail }) => {
                    assert_eq!(k, key);
                    assert!(detail.contains("id space"), "{detail}");
                }
                other => panic!("expected a corrupt-record error, got {other:?}"),
            }
        }
        // The cap itself is adoptable.
        let mut store = crate::store::MemoryStore::new();
        store
            .put(&format!("s-{MAX_SESSION_ID}"), &Value::object([]))
            .unwrap();
        let m = SessionManager::with_store(ServiceConfig::default(), Box::new(store)).unwrap();
        assert_eq!(m.session_count(), 1);
        // Id 0 is never issued; under sharding it would route nowhere.
        let mut store = crate::store::MemoryStore::new();
        store.put("s-0", &Value::object([])).unwrap();
        match SessionManager::with_store(ServiceConfig::default(), Box::new(store)) {
            Err(StoreError::Corrupt { key, .. }) => assert_eq!(key, "s-0"),
            other => panic!("expected a corrupt-record error, got {other:?}"),
        }
    }

    #[test]
    fn sub_millisecond_deadlines_persist_as_one_millisecond() {
        let dir =
            std::env::temp_dir().join(format!("webrobot-manager-deadline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Box::new(crate::store::FileStore::open(&dir).unwrap());
        let mut m = SessionManager::with_store(ServiceConfig::default(), store).unwrap();
        m.register_site("anchors", anchor_site(4), Value::Object(vec![]));
        m.create("anchors", None, Some(Duration::from_micros(500)))
            .unwrap();
        m.checkpoint().unwrap();
        let raw = std::fs::read_to_string(dir.join("s-1.json")).unwrap();
        assert!(
            raw.contains("\"deadline_ms\":1"),
            "rounded up, never to a zero timeout: {raw}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_without_the_site_yields_a_typed_error_on_touch() {
        let mut store = crate::store::MemoryStore::new();
        {
            let mut m = SessionManager::new(ServiceConfig::default());
            m.register_site("anchors", anchor_site(4), Value::Object(vec![]));
            let id = m.create("anchors", None, None).unwrap();
            m.dispatch(id, scrape(1)).unwrap();
            let record = persist::encode_session(1, "anchors", None, &{
                let Some(Tracked {
                    slot: Slot::Live { session, .. },
                    ..
                }) = m.sessions.get(&1)
                else {
                    panic!("live")
                };
                session.snapshot()
            });
            store.put("s-1", &record).unwrap();
        }
        let mut m = SessionManager::with_store(ServiceConfig::default(), Box::new(store)).unwrap();
        // No site registered: the record cannot resolve.
        let err = m.dispatch(SessionId(1), scrape(2)).unwrap_err();
        assert_eq!(err, ServiceError::UnknownSite("anchors".to_string()));
        // Registering the site afterwards repairs the session in place.
        m.register_site("anchors", anchor_site(4), Value::Object(vec![]));
        m.dispatch(SessionId(1), scrape(2)).unwrap();
    }

    #[test]
    fn handle_json_is_total_on_garbage() {
        let mut m = manager(ServiceConfig::default());
        for raw in [
            "",
            "][",
            r#"{"v": 9, "kind": "stats"}"#,
            r#"{"v": 1, "kind": "event", "session": "bogus", "event": {"type": "finish"}}"#,
            r#"{"v": 1, "kind": "close", "session": "s-77"}"#,
        ] {
            let reply = m.handle_json(raw);
            assert!(reply.contains(r#""status":"error""#), "{raw} → {reply}");
        }
    }
}
