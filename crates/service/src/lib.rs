//! The multi-tenant session service: many concurrent demo→authorize→
//! automate sessions behind a versioned, non-panicking, string-in/
//! string-out wire protocol.
//!
//! The paper's interaction model (§2, §6, Fig. 3) is single-user by
//! construction: one `Session`, one browser, one synthesizer. This crate
//! is the layer that turns it into a *served* capability:
//!
//! - [`SessionManager`] owns many [`webrobot_interact::Session`]s keyed by
//!   generated [`SessionId`]s, applies per-session synthesis deadlines,
//!   evicts least-recently-used sessions to compact
//!   [`webrobot_interact::SessionSnapshot`]s (restoring them transparently
//!   on their next event), and aggregates [`ServiceStats`];
//! - [`Request`] / [`Response`] are the v1 wire protocol — JSON within the
//!   paper's own data grammar, serialized via `webrobot_data` (no new
//!   dependencies), fully documented in `PROTOCOL.md`;
//! - [`SessionManager::handle_json`] is the transport-agnostic service
//!   boundary: a browser extension, an HTTP server, or
//!   `examples/service_loop.rs` feed request strings in and get response
//!   strings back;
//! - [`ShardedManager`] scales the same boundary across threads: N shard
//!   workers each own a plain `SessionManager`, sessions are pinned to a
//!   shard by id, and `handle_json` takes `&self` so concurrent front-end
//!   threads drive disjoint sessions in parallel (see the module docs of
//!   [`sharded`](ShardedManager) for the routing guarantee).
//!
//! Every entry point is *total*: malformed JSON, unknown sessions,
//! out-of-range accepts, events after `finish` — all are typed error
//! responses, never panics.
//!
//! Sessions are also *durable*: attach a [`SnapshotStore`] (in-memory
//! [`MemoryStore`] or directory-backed [`FileStore`]) via
//! [`SessionManager::with_store`] / [`ShardedManager::with_stores`] and
//! evictions spill serialized snapshots into it, `checkpoint` (and drop)
//! flush live sessions, and reopening the store resumes every session —
//! the whole manager survives a process restart byte-identically on the
//! wire (see `PROTOCOL.md` § Durability, `ARCHITECTURE.md` for the
//! session lifecycle, and `examples/durable_service.rs` for a simulated
//! restart).
//!
//! # Quickstart
//!
//! ```
//! # use std::sync::Arc;
//! # use webrobot_browser::SiteBuilder;
//! # use webrobot_dom::parse_html;
//! # use webrobot_lang::Value;
//! use webrobot_service::{ServiceConfig, SessionManager};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SiteBuilder::new();
//! let home = b.add_page("https://x.test/", parse_html(
//!     "<html><a>1</a><a>2</a><a>3</a><a>4</a></html>")?);
//! let mut manager = SessionManager::new(ServiceConfig::default());
//! manager.register_site("anchors", Arc::new(b.start_at(home).finish()),
//!     Value::Object(vec![]));
//!
//! // The whole workflow is strings: demonstrate two scrapes...
//! manager.handle_json(r#"{"v": 1, "kind": "create", "site": "anchors"}"#);
//! for i in 1..=2 {
//!     let reply = manager.handle_json(&format!(
//!         r#"{{"v": 1, "kind": "event", "session": "s-1", "event":
//!            {{"type": "demonstrate", "action":
//!            {{"op": "scrape_text", "selector": "/a[{i}]"}}}}}}"#));
//!     assert!(reply.contains(r#""status":"ok""#), "{reply}");
//! }
//! // ...and the engine now predicts the third.
//! let reply = manager.handle_json(
//!     r#"{"v": 1, "kind": "event", "session": "s-1", "event": {"type": "accept", "index": 0}}"#);
//! assert!(reply.contains(r#""outputs":3"#), "{reply}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod manager;
mod persist;
mod protocol;
mod sharded;
mod stats;
mod store;

pub use config::{ConfigError, ServiceConfig, ServiceConfigBuilder};
pub use manager::{EventReply, ServiceError, SessionId, SessionManager};
pub use persist::{
    decode_meta, decode_session, encode_meta, encode_session, ManagerMeta, SessionRecord,
    STORE_VERSION,
};
pub use protocol::{
    action_from_value, action_to_value, event_from_value, event_to_value, ProtocolError, Request,
    Response, PROTOCOL_VERSION,
};
pub use sharded::ShardedManager;
pub use stats::{EventCounters, ResidencyCounters, ServiceStats, SessionCounters, StatsV2};
pub use store::{
    FileStore, MemoryStore, SegmentConfig, SegmentHandle, SegmentStore, SnapshotStore, StoreError,
};
pub use webrobot_metrics::{
    bucket_bound, HistogramSnapshot, Metrics, MetricsSnapshot, RequestKind, RequestStats,
    ShardGaugesSnapshot, METRICS_VERSION,
};
