//! Seeded fake-data generation for benchmark sites (store names, streets,
//! phone numbers, people, keywords).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIRST_NAMES: &[&str] = &[
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Tony", "John", "Leslie", "Robin",
    "Frances", "Niklaus", "Dennis", "Ken", "Bjarne", "Guido",
];
const LAST_NAMES: &[&str] = &[
    "Lovelace",
    "Hopper",
    "Turing",
    "Dijkstra",
    "Liskov",
    "Knuth",
    "Hoare",
    "McCarthy",
    "Lamport",
    "Milner",
    "Allen",
    "Wirth",
    "Ritchie",
    "Thompson",
    "Stroustrup",
    "Rossum",
];
const STREETS: &[&str] = &[
    "Maple St",
    "Oak Ave",
    "Main St",
    "Elm Dr",
    "Cedar Ln",
    "Pine Rd",
    "Birch Blvd",
    "Walnut Way",
    "Chestnut Ct",
    "Spruce Pl",
];
const CITIES: &[&str] = &[
    "Ann Arbor",
    "Springfield",
    "Riverton",
    "Lakeside",
    "Hillview",
    "Fairmont",
    "Brookfield",
    "Georgetown",
    "Clinton",
    "Greenville",
];
const PRODUCTS: &[&str] = &[
    "Widget",
    "Gadget",
    "Sprocket",
    "Gizmo",
    "Doohickey",
    "Contraption",
    "Apparatus",
    "Device",
    "Instrument",
    "Mechanism",
];
const KEYWORDS: &[&str] = &[
    "engineer",
    "designer",
    "analyst",
    "manager",
    "developer",
    "architect",
    "scientist",
    "technician",
    "consultant",
    "administrator",
];

/// Deterministic fake-data source. Two fakers with the same seed produce
/// the same sequence, which keeps every benchmark reproducible.
#[derive(Debug)]
pub struct Faker {
    rng: StdRng,
}

impl Faker {
    /// Creates a faker from a seed.
    pub fn new(seed: u64) -> Faker {
        Faker {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    /// A person name, e.g. `Grace Hopper`.
    pub fn person(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES))
    }

    /// A street address, e.g. `742 Oak Ave`.
    pub fn address(&mut self) -> String {
        format!("{} {}", self.rng.gen_range(100..1000), self.pick(STREETS))
    }

    /// A city name.
    pub fn city(&mut self) -> String {
        self.pick(CITIES).to_string()
    }

    /// A phone number, e.g. `555-0142`.
    pub fn phone(&mut self) -> String {
        format!("555-{:04}", self.rng.gen_range(0..10_000))
    }

    /// A product name, e.g. `Sprocket 37`.
    pub fn product(&mut self) -> String {
        format!("{} {}", self.pick(PRODUCTS), self.rng.gen_range(1..100))
    }

    /// A price string, e.g. `$23.99`.
    pub fn price(&mut self) -> String {
        format!(
            "${}.{:02}",
            self.rng.gen_range(5..200),
            self.rng.gen_range(0..100)
        )
    }

    /// A search keyword.
    pub fn keyword(&mut self) -> String {
        self.pick(KEYWORDS).to_string()
    }

    /// A five-digit zip code.
    pub fn zip(&mut self) -> String {
        format!("{:05}", self.rng.gen_range(10_000..99_999))
    }

    /// A uniformly random count in `lo..=hi`.
    pub fn count(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Faker::new(42);
        let mut b = Faker::new(42);
        for _ in 0..20 {
            assert_eq!(a.person(), b.person());
            assert_eq!(a.phone(), b.phone());
            assert_eq!(a.count(1, 10), b.count(1, 10));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Faker::new(1);
        let mut b = Faker::new(2);
        let sa: Vec<String> = (0..10).map(|_| a.person()).collect();
        let sb: Vec<String> = (0..10).map(|_| b.person()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn counts_respect_bounds() {
        let mut f = Faker::new(7);
        for _ in 0..100 {
            let c = f.count(3, 5);
            assert!((3..=5).contains(&c));
        }
    }
}
