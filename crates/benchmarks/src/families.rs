//! Benchmark family constructors: each builds a simulated site, the input
//! data source, and a ground-truth program.

use std::sync::Arc;

use webrobot_browser::{PageId, Site, SiteBuilder};
use webrobot_data::Value;
use webrobot_lang::{parse_program, Program, Statement};

use crate::fakedata::Faker;
use crate::sites::{disabled_next_button, item_block, next_button, page, searchbar};

/// Everything a family constructor produces.
#[derive(Debug, Clone)]
pub(crate) struct Parts {
    pub site: Arc<Site>,
    pub input: Value,
    pub gt: Program,
}

fn parse(src: &str) -> Program {
    parse_program(src).unwrap_or_else(|e| panic!("ground-truth parse error: {e}\n{src}"))
}

fn no_input() -> Value {
    Value::Object(vec![])
}

/// Names of the `f` standard scrape fields: distinct tags so plain lists
/// need no attribute predicates.
const PLAIN_FIELD_TAGS: &[&str] = &["h3", "span", "b", "em", "i", "u"];

fn plain_fields(faker: &mut Faker, f: usize) -> Vec<(&'static str, Option<&'static str>, String)> {
    (0..f)
        .map(|k| {
            let text = match k {
                0 => faker.product(),
                1 => faker.price(),
                2 => faker.city(),
                _ => faker.phone(),
            };
            (PLAIN_FIELD_TAGS[k], None, text)
        })
        .collect()
}

/// Family A (plain): a single page of `<li>` items with `f` sub-fields of
/// distinct tags, **no leading offset and no attribute predicates needed**
/// — the shape whose ground truth "involves only selector loops and no
/// alternative selectors" (Q4 eligibility, b12/b15/b20/b48/b56/b73–76).
pub(crate) fn plain_list(seed: u64, items: usize, f: usize) -> Parts {
    assert!(f >= 1 && f <= PLAIN_FIELD_TAGS.len());
    let mut faker = Faker::new(seed);
    let mut body = String::from("<ul>");
    for _ in 0..items {
        body.push_str("<li>");
        if f == 1 {
            body.push_str(&faker.product());
        } else {
            for (tag, _, text) in plain_fields(&mut faker, f) {
                body.push_str(&format!("<{tag}>{text}</{tag}>"));
            }
        }
        body.push_str("</li>");
    }
    body.push_str("</ul>");
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://plain{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = if f == 1 {
        parse("foreach %r0 in Children(/body[1]/ul[1], li) do {\n  ScrapeText(%r0)\n}")
    } else {
        let scrapes: String = PLAIN_FIELD_TAGS[..f]
            .iter()
            .map(|t| format!("  ScrapeText(%r0/{t}[1])\n"))
            .collect();
        parse(&format!(
            "foreach %r0 in Children(/body[1]/ul[1], li) do {{\n{scrapes}}}"
        ))
    };
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Family A (styled): a single listing page with a header offset and
/// class-discriminated fields — requires alternative-selector search.
pub(crate) fn styled_list(seed: u64, items: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let mut body = String::from("<div class='header'><span>Results</span></div>");
    for _ in 0..items {
        body.push_str(&item_block(
            "item",
            &[
                ("h3", None, faker.product()),
                ("div", Some("price"), faker.price()),
            ],
        ));
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://styled{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = parse(
        "foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
           ScrapeText(%r0//h3[1])\n\
           ScrapeText(%r0//div[@class='price'][1])\n\
         }",
    );
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Family I: sections × rows on one page (doubly-nested loops). `plain`
/// uses bare `table`/`tr` tags (no alternative selectors, b12 shape);
/// otherwise class-discriminated divs with header offsets.
pub(crate) fn sections_list(seed: u64, sections: usize, rows: usize, plain: bool) -> Parts {
    let mut faker = Faker::new(seed);
    let mut body = String::new();
    if plain {
        // Each table carries a header cell scraped by the outer loop, so
        // the task cannot be flattened into one descendant loop over rows.
        for s in 0..sections {
            body.push_str(&format!("<table><th>Session {s}</th>"));
            for _ in 0..rows {
                body.push_str(&format!("<tr>{}</tr>", faker.person()));
            }
            body.push_str("</table>");
        }
    } else {
        body.push_str("<div class='banner'><span>Sections</span></div>");
        for s in 0..sections {
            body.push_str(&format!("<div class='section'><h2>Section {s}</h2>"));
            for _ in 0..rows {
                body.push_str(&format!("<div class='row'>{}</div>", faker.address()));
            }
            body.push_str("</div>");
        }
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://sections{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = if plain {
        parse(
            "foreach %r0 in Dscts(eps, table) do {\n\
               ScrapeText(%r0/th[1])\n\
               foreach %r1 in Children(%r0, tr) do {\n\
                 ScrapeText(%r1)\n\
               }\n\
             }",
        )
    } else {
        parse(
            "foreach %r0 in Dscts(eps, div[@class='section']) do {\n\
               foreach %r1 in Children(%r0, div) do {\n\
                 ScrapeText(%r1)\n\
               }\n\
             }",
        )
    };
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// b56: three nested selector loops on one page (groups × tables × rows),
/// no alternative selectors needed.
pub(crate) fn deep_sections(seed: u64, groups: usize, tables: usize, rows: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let mut body = String::new();
    // Labels at the group and table levels pin the loop structure: no
    // flatter program produces the interleaved label/row outputs.
    for g in 0..groups {
        body.push_str(&format!("<section><h2>Group {g}</h2>"));
        for t in 0..tables {
            body.push_str(&format!("<table><th>T{g}.{t}</th>"));
            for _ in 0..rows {
                body.push_str(&format!("<tr>{}</tr>", faker.product()));
            }
            body.push_str("</table>");
        }
        body.push_str("</section>");
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://deep{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = parse(
        "foreach %r0 in Dscts(eps, section) do {\n\
           ScrapeText(%r0/h2[1])\n\
           foreach %r1 in Children(%r0, table) do {\n\
             ScrapeText(%r1/th[1])\n\
             foreach %r2 in Children(%r1, tr) do {\n\
               ScrapeText(%r2)\n\
             }\n\
           }\n\
         }",
    );
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Renders one results page body: header + items + optional next button.
fn results_body(faker: &mut Faker, count: usize, next: Option<usize>, bar: &str) -> String {
    let mut items = String::from("<div class='header'>results</div>");
    for _ in 0..count {
        items.push_str(&item_block(
            "item",
            &[
                ("h3", None, faker.product()),
                ("div", Some("price"), faker.price()),
            ],
        ));
    }
    let tail = match next {
        Some(t) => next_button(t),
        None => String::new(),
    };
    format!("{bar}<div class='results'>{items}{tail}</div>")
}

/// Family C: one listing paginated over `pages` (item counts per page),
/// `while { foreach … ; Click(next) }`.
pub(crate) fn paginated_list(seed: u64, pages: &[usize]) -> Parts {
    let mut faker = Faker::new(seed);
    let mut b = SiteBuilder::new();
    for (pi, &count) in pages.iter().enumerate() {
        let next = (pi + 1 < pages.len()).then_some(pi + 1);
        let body = results_body(&mut faker, count, next, "");
        b.add_page(format!("https://paged{seed}.test/{}", pi + 1), page(&body));
    }
    let site = Arc::new(b.start_at(PageId::from_index(0)).finish());
    let gt = parse(
        "while true do {\n\
           foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
             ScrapeText(%r0//h3[1])\n\
             ScrapeText(%r0//div[@class='price'][1])\n\
           }\n\
           Click(//button[@class='next'][1])\n\
         }",
    );
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Family D: master–detail navigation with `GoBack`, single listing page.
pub(crate) fn master_detail(seed: u64, items: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let mut b = SiteBuilder::new();
    // Listing is page 0; details are 1..=items.
    let mut body = String::from("<div class='header'>catalog</div>");
    let mut details = Vec::new();
    for i in 0..items {
        body.push_str(&format!(
            "<div class='item'><h3>{}</h3><a href='#p{}'>view</a></div>",
            faker.product(),
            i + 1
        ));
        details.push(format!(
            "<div class='spec'>{}</div><div class='stock'>{} in stock</div>",
            faker.address(),
            faker.count(1, 40)
        ));
    }
    let home = b.add_page(format!("https://catalog{seed}.test/"), page(&body));
    for (i, detail) in details.iter().enumerate() {
        b.add_page(format!("https://catalog{seed}.test/{i}"), page(detail));
    }
    let site = Arc::new(b.start_at(home).finish());
    let gt = parse(
        "foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
           ScrapeText(%r0//h3[1])\n\
           Click(%r0//a[1])\n\
           ScrapeText(//div[@class='spec'][1])\n\
           GoBack\n\
         }",
    );
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Family E: paginated master–detail:
/// `while { foreach { scrape; click; scrape; GoBack }; Click(next) }`.
pub(crate) fn master_detail_paginated(seed: u64, pages: &[usize]) -> Parts {
    let mut faker = Faker::new(seed);
    let mut b = SiteBuilder::new();
    // Page layout: listing pages first (ids 0..pages.len()), then details.
    let mut detail_id = pages.len();
    let mut listing_bodies = Vec::new();
    for (pi, &count) in pages.iter().enumerate() {
        let mut body = String::from("<div class='header'>catalog</div>");
        for i in 0..count {
            body.push_str(&format!(
                "<div class='item'><h3>{}</h3><a href='#p{}'>view</a></div>",
                faker.product(),
                detail_id + i
            ));
        }
        if pi + 1 < pages.len() {
            body.push_str(&next_button(pi + 1));
        }
        listing_bodies.push(body);
        detail_id += count;
    }
    for body in &listing_bodies {
        b.add_page(format!("https://mcat{seed}.test/"), page(body));
    }
    for (pi, &count) in pages.iter().enumerate() {
        for i in 0..count {
            b.add_page(
                format!("https://mcat{seed}.test/{pi}/{i}"),
                page(&format!("<div class='spec'>{}</div>", faker.address())),
            );
        }
    }
    let site = Arc::new(b.start_at(PageId::from_index(0)).finish());
    let gt = parse(
        "while true do {\n\
           foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
             ScrapeText(%r0//h3[1])\n\
             Click(%r0//a[1])\n\
             ScrapeText(//div[@class='spec'][1])\n\
             GoBack\n\
           }\n\
           Click(//button[@class='next'][1])\n\
         }",
    );
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Family F: search-driven scraping. Every query routes to one results
/// page. With `inner_loop` the body scrapes all items (2-level program);
/// otherwise it scrapes two fixed summary fields (1-level).
pub(crate) fn search_scrape(seed: u64, queries: usize, inner_loop: bool) -> Parts {
    let mut faker = Faker::new(seed);
    let words: Vec<String> = (0..queries)
        .map(|i| format!("{}-{i}", faker.keyword()))
        .collect();
    let bar = searchbar("q");
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://jobs{seed}.test/"), page(&bar));
    let mut routes = Vec::new();
    for (qi, word) in words.iter().enumerate() {
        routes.push((word.clone(), PageId::from_index(qi + 1)));
        let body = if inner_loop {
            let count = faker.count(3, 6);
            results_body(&mut faker, count, None, &bar)
        } else {
            format!(
                "{bar}<div class='summary'><div class='count'>{} hits</div>\
                 <div class='top'>{}</div></div>",
                faker.count(5, 90),
                faker.product()
            )
        };
        b.add_page(format!("https://jobs{seed}.test/?q={word}"), page(&body));
    }
    let miss = b.add_page(
        format!("https://jobs{seed}.test/none"),
        page(&format!("{bar}<div class='summary'><div class='count'>0 hits</div><div class='top'>-</div></div>")),
    );
    b.add_search("q", routes, miss);
    let site = Arc::new(b.start_at(home).finish());
    let input = Value::object([("keywords".to_string(), Value::str_array(words))]);
    let gt = if inner_loop {
        parse(
            "foreach %v0 in ValuePaths(x[keywords]) do {\n\
               EnterData(//input[@name='search'][1], %v0)\n\
               Click(//button[@class='go'][1])\n\
               foreach %r1 in Dscts(eps, div[@class='item']) do {\n\
                 ScrapeText(%r1//h3[1])\n\
                 ScrapeText(%r1//div[@class='price'][1])\n\
               }\n\
             }",
        )
    } else {
        parse(
            "foreach %v0 in ValuePaths(x[keywords]) do {\n\
               EnterData(//input[@name='search'][1], %v0)\n\
               Click(//button[@class='go'][1])\n\
               ScrapeText(//div[@class='count'][1])\n\
               ScrapeText(//div[@class='top'][1])\n\
             }",
        )
    };
    Parts { site, input, gt }
}

/// Family G: search + pagination (the Subway scenario, paper Figs. 4–5).
/// `sections` adds a fourth nesting level (items grouped in sections on
/// every page).
pub(crate) fn search_paginated(
    seed: u64,
    queries: usize,
    pages_per_query: &[usize],
    sections: bool,
) -> Parts {
    let mut faker = Faker::new(seed);
    let zips: Vec<String> = (0..queries).map(|_| faker.zip()).collect();
    let bar = searchbar("q");
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://stores{seed}.test/"), page(&bar));
    let mut routes = Vec::new();
    let mut next_id = 1usize;
    for zip in &zips {
        routes.push((zip.clone(), PageId::from_index(next_id)));
        for (pi, &count) in pages_per_query.iter().enumerate() {
            let mut items = String::from("<div class='header'>results</div>");
            if sections {
                for s in 0..count {
                    items.push_str("<div class='section'>");
                    for _ in 0..2 {
                        items.push_str(&item_block(
                            "item",
                            &[("h3", None, format!("{} ({s})", faker.product()))],
                        ));
                    }
                    items.push_str("</div>");
                }
            } else {
                for _ in 0..count {
                    items.push_str(&item_block(
                        "item",
                        &[
                            ("h3", None, faker.address()),
                            ("div", Some("phone"), faker.phone()),
                        ],
                    ));
                }
            }
            let tail = if pi + 1 < pages_per_query.len() {
                next_button(next_id + 1)
            } else {
                String::new()
            };
            b.add_page(
                format!("https://stores{seed}.test/?q={zip}&page={}", pi + 1),
                page(&format!("{bar}<div class='results'>{items}{tail}</div>")),
            );
            next_id += 1;
        }
    }
    let miss = b.add_page(
        format!("https://stores{seed}.test/none"),
        page(&format!(
            "{bar}<div class='results'><div class='header'>none</div></div>"
        )),
    );
    b.add_search("q", routes, miss);
    let site = Arc::new(b.start_at(home).finish());
    let input = Value::object([("zips".to_string(), Value::str_array(zips))]);
    let gt = if sections {
        parse(
            "foreach %v0 in ValuePaths(x[zips]) do {\n\
               EnterData(//input[@name='search'][1], %v0)\n\
               Click(//button[@class='go'][1])\n\
               while true do {\n\
                 foreach %r1 in Dscts(eps, div[@class='section']) do {\n\
                   foreach %r2 in Children(%r1, div) do {\n\
                     ScrapeText(%r2//h3[1])\n\
                   }\n\
                 }\n\
                 Click(//button[@class='next'][1])\n\
               }\n\
             }",
        )
    } else {
        parse(
            "foreach %v0 in ValuePaths(x[zips]) do {\n\
               EnterData(//input[@name='search'][1], %v0)\n\
               Click(//button[@class='go'][1])\n\
               while true do {\n\
                 foreach %r1 in Dscts(eps, div[@class='item']) do {\n\
                   ScrapeText(%r1//h3[1])\n\
                   ScrapeText(%r1//div[@class='phone'][1])\n\
                 }\n\
                 Click(//button[@class='next'][1])\n\
               }\n\
             }",
        )
    };
    Parts { site, input, gt }
}

/// Family H: the unicorn-name generator (paper Fig. 2): enter each person's
/// name, click generate, scrape the result.
pub(crate) fn form_generator(seed: u64, people: usize, object_rows: bool) -> Parts {
    let mut faker = Faker::new(seed);
    let names: Vec<String> = (0..people).map(|_| faker.person()).collect();
    let bar = searchbar("name");
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://unicorn{seed}.test/"), page(&bar));
    let mut routes = Vec::new();
    for (i, name) in names.iter().enumerate() {
        routes.push((name.clone(), PageId::from_index(i + 1)));
        b.add_page(
            format!("https://unicorn{seed}.test/{i}"),
            page(&format!(
                "{bar}<div class='generated'>{} the {}</div>",
                name.split(' ').next().unwrap_or(name),
                faker.product()
            )),
        );
    }
    let miss = b.add_page(
        format!("https://unicorn{seed}.test/none"),
        page(&format!("{bar}<div class='generated'>???</div>")),
    );
    b.add_search("name", routes, miss);
    let site = Arc::new(b.start_at(home).finish());
    let (input, gt) = if object_rows {
        let input = Value::object([(
            "customers".to_string(),
            Value::Array(
                names
                    .iter()
                    .map(|n| {
                        Value::object([
                            ("name".to_string(), Value::str(n.clone())),
                            ("city".to_string(), Value::str(faker.city())),
                        ])
                    })
                    .collect(),
            ),
        )]);
        let gt = parse(
            "foreach %v0 in ValuePaths(x[customers]) do {\n\
               EnterData(//input[@name='search'][1], %v0[name])\n\
               Click(//button[@class='go'][1])\n\
               ScrapeText(//div[@class='generated'][1])\n\
             }",
        );
        (input, gt)
    } else {
        let input = Value::object([("names".to_string(), Value::str_array(names))]);
        let gt = parse(
            "foreach %v0 in ValuePaths(x[names]) do {\n\
               EnterData(//input[@name='search'][1], %v0)\n\
               Click(//button[@class='go'][1])\n\
               ScrapeText(//div[@class='generated'][1])\n\
             }",
        );
        (input, gt)
    };
    Parts { site, input, gt }
}

/// The one data-entry benchmark without cross-page navigation: a
/// single-page filter box (modeled as a SPA — the URL never changes).
pub(crate) fn inline_form(seed: u64, entries: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let codes: Vec<String> = (0..entries).map(|_| faker.zip()).collect();
    let bar = searchbar("f");
    let url = format!("https://spa{seed}.test/");
    let mut b = SiteBuilder::new();
    let home = b.add_page(
        url.clone(),
        page(&format!("{bar}<div class='rate'>-</div>")),
    );
    let mut routes = Vec::new();
    for (i, code) in codes.iter().enumerate() {
        routes.push((code.clone(), PageId::from_index(i + 1)));
        b.add_page(
            url.clone(),
            page(&format!(
                "{bar}<div class='rate'>{}% ({code})</div>",
                faker.count(1, 99)
            )),
        );
    }
    let miss = b.add_page(url, page(&format!("{bar}<div class='rate'>n/a</div>")));
    b.add_search("f", routes, miss);
    let site = Arc::new(b.start_at(home).finish());
    let input = Value::object([("codes".to_string(), Value::str_array(codes))]);
    let gt = parse(
        "foreach %v0 in ValuePaths(x[codes]) do {\n\
           EnterData(//input[@name='search'][1], %v0)\n\
           Click(//button[@class='go'][1])\n\
           ScrapeText(//div[@class='rate'][1])\n\
         }",
    );
    Parts { site, input, gt }
}

/// Failure family (b1–b3): items alternate between two classes with ad
/// divs interleaved. No single predicate `t[@τ=s]` covers exactly the
/// items, and a bare-tag predicate over-matches the ads — the paper's
/// "disjunctive logics for selectors" limitation. The ground truth is the
/// straight-line demonstration (the DSL cannot express the intended loop).
pub(crate) fn disjunctive_list(seed: u64, items: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let mut body = String::from("<div class='header'>matches</div>");
    let mut selectors = Vec::new();
    let mut div_idx = 1; // child index among body's divs (header is 1)
    for i in 0..items {
        div_idx += 1;
        let class = if i.is_multiple_of(2) {
            "match"
        } else {
            "match highlight"
        };
        body.push_str(&format!(
            "<div class='{class}'><h3>{}</h3></div>",
            faker.person()
        ));
        selectors.push(format!("/body[1]/div[{div_idx}]/h3[1]"));
        if !i.is_multiple_of(2) {
            div_idx += 1;
            body.push_str("<div class='ad'><h3>buy now</h3></div>");
        }
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://matches{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt: Program = selectors
        .iter()
        .map(|s| Statement::ScrapeText(webrobot_lang::Selector::rooted(s.parse().unwrap())))
        .collect();
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Failure family (b5–b6): master–detail where only *active* rows are
/// processed; activity is marked by a `data-status` attribute the selector
/// language's predicate vocabulary does not discriminate (the paper's
/// "selectors with multiple attributes" limitation).
pub(crate) fn multi_attr_detail(seed: u64, rows: usize) -> Parts {
    let mut faker = Faker::new(seed);
    let mut b = SiteBuilder::new();
    let mut body = String::from("<div class='header'>players</div>");
    let mut active = Vec::new();
    for i in 0..rows {
        let is_active = i % 3 != 1; // irregularly interleaved
        let status = if is_active { "active" } else { "retired" };
        body.push_str(&format!(
            "<div class='row' data-status='{status}'><h3>{}</h3><a href='#p{}'>stats</a></div>",
            faker.person(),
            i + 1
        ));
        if is_active {
            active.push(i);
        }
    }
    let home = b.add_page(format!("https://players{seed}.test/"), page(&body));
    for i in 0..rows {
        b.add_page(
            format!("https://players{seed}.test/{i}"),
            page(&format!(
                "<div class='stat'>{} goals</div>",
                faker.count(0, 60)
            )),
        );
    }
    let site = Arc::new(b.start_at(home).finish());
    // Straight-line demonstration over the active rows only.
    let mut stmts = Vec::new();
    for &i in &active {
        let row = i + 2; // header is div[1]
        stmts.push(format!("ScrapeText(/body[1]/div[{row}]/h3[1])"));
        stmts.push(format!("Click(/body[1]/div[{row}]/a[1])"));
        stmts.push("ScrapeText(/body[1]/div[1])".to_string());
        stmts.push("GoBack".to_string());
    }
    let gt = parse(&stmts.join("\n"));
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

/// Failure family (b9, b11): pagination via a next button that is still
/// present (but inert) on the last page. The click-terminated `while` loop
/// cannot express "stop when the button stops working" (§7.1 "Pagination
/// beyond next page"). Ground truth is the straight-line demonstration.
pub(crate) fn disabled_pagination(seed: u64, pages: &[usize]) -> Parts {
    let mut faker = Faker::new(seed);
    let mut b = SiteBuilder::new();
    let mut gt_lines: Vec<String> = Vec::new();
    for (pi, &count) in pages.iter().enumerate() {
        let mut items = String::from("<div class='header'>results</div>");
        for _ in 0..count {
            items.push_str(&item_block("item", &[("h3", None, faker.product())]));
        }
        let tail = if pi + 1 < pages.len() {
            next_button(pi + 1)
        } else {
            disabled_next_button()
        };
        b.add_page(
            format!("https://inert{seed}.test/{}", pi + 1),
            page(&format!("<div class='results'>{items}{tail}</div>")),
        );
        for k in 0..count {
            gt_lines.push(format!("ScrapeText(/body[1]/div[1]/div[{}]/h3[1])", k + 2));
        }
        if pi + 1 < pages.len() {
            gt_lines.push("Click(//button[@class='next'][1])".to_string());
        }
    }
    let site = Arc::new(b.start_at(PageId::from_index(0)).finish());
    let gt = parse(&gt_lines.join("\n"));
    Parts {
        site,
        input: no_input(),
        gt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_browser::{record_demonstration, RecordLimits};
    use webrobot_semantics::satisfies;

    fn roundtrip(parts: &Parts) -> usize {
        let rec = record_demonstration(
            parts.site.clone(),
            parts.input.clone(),
            parts.gt.statements(),
            RecordLimits::default(),
        )
        .expect("ground truth replays");
        assert!(
            satisfies(parts.gt.statements(), &rec.trace),
            "gt must satisfy its own trace"
        );
        rec.trace.len()
    }

    #[test]
    fn plain_list_records() {
        assert_eq!(roundtrip(&plain_list(1, 5, 1)), 5);
        assert_eq!(roundtrip(&plain_list(2, 4, 3)), 12);
    }

    #[test]
    fn styled_list_records() {
        assert_eq!(roundtrip(&styled_list(3, 6)), 12);
    }

    #[test]
    fn sections_record() {
        // 3 tables × (1 header + 4 rows).
        assert_eq!(roundtrip(&sections_list(4, 3, 4, true)), 15);
        assert_eq!(roundtrip(&sections_list(5, 2, 3, false)), 6);
        // 2 groups × (1 label + 2 tables × (1 header + 3 rows)).
        assert_eq!(roundtrip(&deep_sections(6, 2, 2, 3)), 18);
    }

    #[test]
    fn paginated_list_records() {
        // 3+2 items × 2 fields + 1 next click.
        assert_eq!(roundtrip(&paginated_list(7, &[3, 2])), 11);
    }

    #[test]
    fn master_detail_records() {
        // 4 items × (scrape + click + scrape + goback).
        assert_eq!(roundtrip(&master_detail(8, 4)), 16);
        assert_eq!(roundtrip(&master_detail_paginated(9, &[2, 2])), 17);
    }

    #[test]
    fn search_families_record() {
        // 3 queries × (enter + click + 2 scrapes).
        assert_eq!(roundtrip(&search_scrape(10, 3, false)), 12);
        assert!(roundtrip(&search_scrape(11, 2, true)) >= 10);
        assert!(roundtrip(&search_paginated(12, 2, &[2, 2], false)) > 10);
        assert!(roundtrip(&search_paginated(13, 1, &[2, 2], true)) > 8);
        assert_eq!(roundtrip(&form_generator(14, 4, false)), 12);
        assert_eq!(roundtrip(&form_generator(15, 3, true)), 9);
        assert_eq!(roundtrip(&inline_form(16, 3)), 9);
    }

    #[test]
    fn failure_families_record() {
        assert_eq!(roundtrip(&disjunctive_list(17, 6)), 6);
        assert!(roundtrip(&multi_attr_detail(18, 6)) >= 12);
        assert_eq!(roundtrip(&disabled_pagination(19, &[3, 2])), 6);
    }
}
