//! Seeded procedural benchmark generation: an unbounded complement to the
//! paper's fixed 76-benchmark suite.
//!
//! Each [`GenFamily`] is a deterministic function `u64 seed -> Benchmark`
//! producing task shapes the hand-written suite does not cover (DiLogics'
//! conditional/irregular task logic, WALT's recurring-program scenario):
//!
//! * [`GenFamily::Conditional`] — a ledger where *flagged* rows get one
//!   extra scrape. The intended automation is an `if` the DSL cannot
//!   express, so the ground truth is the straight-line demonstration and
//!   `expect_intended` is `false` (like the paper's designed failures).
//! * [`GenFamily::Ragged`] — sections with jittered row counts, including
//!   empty sections: the nested-loop shape with maximally irregular inner
//!   cardinality.
//! * [`GenFamily::Noisy`] — a listing whose target items are interleaved
//!   with noise blocks at seeded irregular positions, and whose items vary
//!   internally (decoration before/after the payload) — absolute child
//!   indices are useless, class predicates plus descendant selectors are
//!   required.
//! * [`GenFamily::Mixed`] — entry + extraction + pagination with jittered
//!   page and hit counts per query (no two queries paginate alike).
//! * [`GenFamily::Macro`] — a WALT-style recurring macro: the ground-truth
//!   program text is **byte-identical across all seeds**, while the site
//!   chrome around the card list varies. Distinct sites, one reusable
//!   program — the shape that exercises cross-item speculation reuse and
//!   multi-tenant sharing.
//!
//! Seeding: a family's constructor derives every random draw from a single
//! [`Faker`] seeded with `seed ^ FAMILY_SALT`, so the same `(family, seed)`
//! pair yields a byte-identical benchmark in any process (see
//! [`canonical_spec`]). Generated benchmarks use ids `9001..=9005` (one per
//! family; the seed distinguishes instances) — well clear of the paper's
//! `1..=76`.

use std::sync::Arc;

use webrobot_browser::{PageId, Site, SiteBuilder};
use webrobot_data::Value;
use webrobot_dom::{Dom, NodeId};
use webrobot_lang::{parse_program, Program};

use crate::fakedata::Faker;
use crate::sites::{item_block, next_button, page, searchbar};
use crate::spec::{Benchmark, Family, Features};

/// A procedurally generated benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenFamily {
    /// Flagged rows get an extra scrape (conditional logic, designed fail).
    Conditional,
    /// Sections with jittered (possibly zero) row counts.
    Ragged,
    /// Target items interleaved with structural noise.
    Noisy,
    /// Search + pagination with per-query jittered shapes.
    Mixed,
    /// One recurring ground-truth program across seed-distinct sites.
    Macro,
}

impl GenFamily {
    /// All families, in id order.
    pub const ALL: [GenFamily; 5] = [
        GenFamily::Conditional,
        GenFamily::Ragged,
        GenFamily::Noisy,
        GenFamily::Mixed,
        GenFamily::Macro,
    ];

    /// Stable short name (used in harness labels, loadgen site names and
    /// bench row ids).
    pub fn key(self) -> &'static str {
        match self {
            GenFamily::Conditional => "conditional",
            GenFamily::Ragged => "ragged",
            GenFamily::Noisy => "noisy",
            GenFamily::Mixed => "mixed",
            GenFamily::Macro => "macro",
        }
    }

    /// Parses a [`key`](GenFamily::key) back into a family.
    pub fn from_key(key: &str) -> Option<GenFamily> {
        GenFamily::ALL.into_iter().find(|f| f.key() == key)
    }

    /// Benchmark id for this family (`9001..=9005`; shared by all seeds).
    pub fn id(self) -> u32 {
        9001 + GenFamily::ALL.iter().position(|&f| f == self).unwrap() as u32
    }

    fn salt(self) -> u64 {
        // Distinct salts keep the families' draw streams independent even
        // when built from the same user seed.
        0xD06E_5EED_0000_0000 | self.id() as u64
    }
}

fn parse(src: &str) -> Program {
    parse_program(src).unwrap_or_else(|e| panic!("generated ground-truth parse error: {e}\n{src}"))
}

fn feat(entry: bool, navigation: bool, pagination: bool) -> Features {
    Features {
        extraction: true,
        entry,
        navigation,
        pagination,
    }
}

/// Builds the `family` benchmark for `seed`.
///
/// Construction is deterministic and infallible: the same pair always
/// yields a byte-identical benchmark (site, input, ground truth — see
/// [`canonical_spec`]), and every generated ground truth replays on its own
/// site (a unit test enforces this for a seed sample).
pub fn generated(family: GenFamily, seed: u64) -> Benchmark {
    let mut faker = Faker::new(seed ^ family.salt());
    let (name, site, input, gt, features, expect_intended, no_alt) = match family {
        GenFamily::Conditional => conditional(seed, &mut faker),
        GenFamily::Ragged => ragged(seed, &mut faker),
        GenFamily::Noisy => noisy(seed, &mut faker),
        GenFamily::Mixed => mixed(seed, &mut faker),
        GenFamily::Macro => macro_catalog(seed, &mut faker),
    };
    Benchmark {
        id: family.id(),
        name,
        family: Family::Generated(family),
        site,
        input,
        ground_truth: gt,
        features,
        expect_intended,
        frontend_quirk: None,
        no_alternative_selectors: no_alt,
    }
}

/// All five families over each seed in `seeds`, family-major.
pub fn generated_suite(seeds: &[u64]) -> Vec<Benchmark> {
    GenFamily::ALL
        .iter()
        .flat_map(|&f| seeds.iter().map(move |&s| generated(f, s)))
        .collect()
}

type FamilyParts = (
    &'static str,
    Arc<Site>,
    Value,
    Program,
    Features,
    bool,
    bool,
);

/// DiLogics-style conditional task: every transaction row is scraped, but
/// only *flagged* rows (irregular, seeded) get their note scraped too. The
/// DSL has no `if`, so the ground truth is straight-line and the benchmark
/// is expected to fail synthesis of an intended loop — the differential
/// harness still requires all variants to agree on it.
fn conditional(seed: u64, faker: &mut Faker) -> FamilyParts {
    let rows = faker.count(6, 10);
    let mut flags: Vec<bool> = (0..rows).map(|_| faker.count(0, 9) < 4).collect();
    // Both kinds must occur or the task degenerates.
    flags[0] = true;
    flags[1] = false;
    let mut body = String::new();
    let mut stmts = Vec::new();
    for (i, &flagged) in flags.iter().enumerate() {
        body.push_str("<div class='txn'>");
        body.push_str(&format!("<h3>{}</h3>", faker.product()));
        if flagged {
            body.push_str(&format!("<em class='note'>{}</em>", faker.keyword()));
        }
        body.push_str("</div>");
        stmts.push(format!("ScrapeText(/body[1]/div[{}]/h3[1])", i + 1));
        if flagged {
            stmts.push(format!("ScrapeText(/body[1]/div[{}]/em[1])", i + 1));
        }
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://gen-conditional{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    (
        "generated: conditionally noted ledger",
        site,
        Value::Object(vec![]),
        parse(&stmts.join("\n")),
        feat(false, false, false),
        false,
        false,
    )
}

/// Ragged nesting: sections whose row counts jitter from zero up — the
/// doubly-nested loop must tolerate empty inner collections.
fn ragged(seed: u64, faker: &mut Faker) -> FamilyParts {
    let sections = faker.count(3, 5);
    let mut counts: Vec<usize> = (0..sections).map(|_| faker.count(0, 4)).collect();
    // Force genuine raggedness: at least one empty section, and enough
    // total rows for the trace to have substance.
    counts[1] = 0;
    if counts.iter().sum::<usize>() < 4 {
        counts[0] = 4;
    }
    let mut body = String::new();
    for &rows in &counts {
        body.push_str(&format!("<section><h2>{}</h2>", faker.city()));
        for _ in 0..rows {
            body.push_str(&format!("<li>{}</li>", faker.person()));
        }
        body.push_str("</section>");
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://gen-ragged{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = parse(
        "foreach %r0 in Dscts(eps, section) do {\n\
           ScrapeText(%r0/h2[1])\n\
           foreach %r1 in Children(%r0, li) do {\n\
             ScrapeText(%r1)\n\
           }\n\
         }",
    );
    (
        "generated: ragged sections",
        site,
        Value::Object(vec![]),
        gt,
        feat(false, false, false),
        true,
        true,
    )
}

/// Semantically-varying list structure: target items sit between seeded
/// noise blocks, and the payload's position inside each item varies.
fn noisy(seed: u64, faker: &mut Faker) -> FamilyParts {
    let items = faker.count(6, 10);
    let mut body = String::new();
    let noise = |faker: &mut Faker, body: &mut String| match faker.count(0, 2) {
        0 => body.push_str(&format!("<aside>{}</aside>", faker.keyword())),
        1 => body.push_str("<div class='ad'><h3>buy now</h3></div>"),
        _ => body.push_str(&format!("<p>{}</p>", faker.city())),
    };
    for i in 0..items {
        if faker.count(0, 1) == 1 {
            noise(faker, &mut body);
        }
        body.push_str("<div class='item'>");
        let badge_first = faker.count(0, 9) < 4;
        if badge_first {
            body.push_str(&format!("<span class='badge'>{}</span>", faker.keyword()));
        }
        body.push_str(&format!("<h3>{}</h3>", faker.product()));
        if !badge_first && i.is_multiple_of(2) {
            body.push_str(&format!("<span class='meta'>{}</span>", faker.city()));
        }
        body.push_str("</div>");
    }
    noise(faker, &mut body);
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://gen-noisy{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    let gt = parse(
        "foreach %r0 in Dscts(eps, div[@class='item']) do {\n\
           ScrapeText(%r0//h3[1])\n\
         }",
    );
    (
        "generated: noisy listing",
        site,
        Value::Object(vec![]),
        gt,
        feat(false, false, false),
        true,
        false,
    )
}

/// Entry + extraction + pagination with per-query jitter: each query routes
/// to its own run of result pages (1–2 pages, 2–4 hits each), so no two
/// queries paginate alike.
fn mixed(seed: u64, faker: &mut Faker) -> FamilyParts {
    let queries = 2;
    let words: Vec<String> = (0..queries)
        .map(|i| format!("{}-{i}", faker.keyword()))
        .collect();
    let bar = searchbar("q");
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://gen-mixed{seed}.test/"), page(&bar));
    let mut routes = Vec::new();
    let mut next_id = 1usize;
    for word in &words {
        let pages = faker.count(1, 2);
        routes.push((word.clone(), PageId::from_index(next_id)));
        for pi in 0..pages {
            let hits = faker.count(2, 4);
            let mut items = String::from("<div class='header'>hits</div>");
            for _ in 0..hits {
                items.push_str(&item_block(
                    "hit",
                    &[
                        ("h3", None, faker.product()),
                        ("span", Some("ref"), faker.zip()),
                    ],
                ));
            }
            let tail = if pi + 1 < pages {
                next_button(next_id + 1)
            } else {
                String::new()
            };
            b.add_page(
                format!("https://gen-mixed{seed}.test/?q={word}&page={}", pi + 1),
                page(&format!("{bar}<div class='results'>{items}{tail}</div>")),
            );
            next_id += 1;
        }
    }
    let miss = b.add_page(
        format!("https://gen-mixed{seed}.test/none"),
        page(&format!(
            "{bar}<div class='results'><div class='header'>none</div></div>"
        )),
    );
    b.add_search("q", routes, miss);
    let site = Arc::new(b.start_at(home).finish());
    let input = Value::object([("terms".to_string(), Value::str_array(words))]);
    let gt = parse(
        "foreach %v0 in ValuePaths(x[terms]) do {\n\
           EnterData(//input[@name='search'][1], %v0)\n\
           Click(//button[@class='go'][1])\n\
           while true do {\n\
             foreach %r1 in Dscts(eps, div[@class='hit']) do {\n\
               ScrapeText(%r1//h3[1])\n\
             }\n\
             Click(//button[@class='next'][1])\n\
           }\n\
         }",
    );
    (
        "generated: jittered search results",
        site,
        input,
        gt,
        feat(true, true, true),
        true,
        false,
    )
}

/// The ground-truth program every [`GenFamily::Macro`] benchmark shares,
/// byte for byte — the "recurring macro" asset.
pub const MACRO_PROGRAM: &str = "foreach %r0 in Dscts(eps, div[@class='card']) do {\n\
       ScrapeText(%r0//h3[1])\n\
       ScrapeText(%r0//div[@class='tag'][1])\n\
     }";

/// WALT-style recurring macro: seed-varying chrome around an invariant
/// card-list shape, scraped by the one shared [`MACRO_PROGRAM`].
fn macro_catalog(seed: u64, faker: &mut Faker) -> FamilyParts {
    let mut body = String::new();
    let chrome = |faker: &mut Faker, body: &mut String| match faker.count(0, 2) {
        0 => body.push_str(&format!(
            "<div class='banner'><span>{}</span></div>",
            faker.city()
        )),
        1 => body.push_str(&format!("<nav><b>{}</b></nav>", faker.keyword())),
        _ => body.push_str(&format!("<header><h1>{}</h1></header>", faker.product())),
    };
    for _ in 0..faker.count(1, 3) {
        chrome(faker, &mut body);
    }
    body.push_str("<div class='cardlist'>");
    for _ in 0..faker.count(4, 7) {
        body.push_str(&item_block(
            "card",
            &[
                ("h3", None, faker.product()),
                ("div", Some("tag"), faker.keyword()),
            ],
        ));
    }
    body.push_str("</div>");
    if faker.count(0, 1) == 1 {
        chrome(faker, &mut body);
    }
    let mut b = SiteBuilder::new();
    let home = b.add_page(format!("https://gen-macro{seed}.test/"), page(&body));
    let site = Arc::new(b.start_at(home).finish());
    (
        "generated: recurring card macro",
        site,
        Value::Object(vec![]),
        parse(MACRO_PROGRAM),
        feat(false, false, false),
        true,
        false,
    )
}

/// Canonical textual rendering of a benchmark: id, metadata, input, ground
/// truth and every page (URL plus a full DOM rendering in document order).
/// Two benchmarks are byte-identical exactly when their canonical specs
/// are — the determinism property the generator proptests pin down.
pub fn canonical_spec(b: &Benchmark) -> String {
    let mut out = format!(
        "id={} name={:?} family={:?} features={:?} expect_intended={} no_alt={}\n",
        b.id, b.name, b.family, b.features, b.expect_intended, b.no_alternative_selectors
    );
    out.push_str(&format!("input={:?}\n", b.input));
    out.push_str(&format!("gt={}\n", b.ground_truth));
    for p in 0..b.site.page_count() {
        let pid = PageId::from_index(p);
        out.push_str(&format!("page {p} url={}\n", b.site.url(pid)));
        render_node(b.site.dom(pid), NodeId::ROOT, 0, &mut out);
    }
    out
}

fn render_node(dom: &Dom, node: NodeId, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push('<');
    out.push_str(dom.tag(node));
    for (k, v) in dom.attrs(node) {
        out.push_str(&format!(" {k}={v:?}"));
    }
    out.push('>');
    if !dom.text(node).is_empty() {
        out.push_str(&format!("{:?}", dom.text(node)));
    }
    out.push('\n');
    for &c in dom.children(node) {
        render_node(dom, c, depth + 1, out);
    }
}

/// Structural fingerprint of a benchmark: a hash of its canonical spec.
/// Same `(family, seed)` ⇒ same fingerprint across processes (the renderer
/// uses no address- or hash-order-dependent state); distinct seeds ⇒
/// distinct fingerprints (every page URL embeds the seed).
pub fn fingerprint(b: &Benchmark) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    canonical_spec(b).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webrobot_semantics::satisfies;

    const SEEDS: [u64; 4] = [1, 7, 42, 9001];

    #[test]
    fn every_generated_ground_truth_replays() {
        for b in generated_suite(&SEEDS) {
            let rec = b
                .record()
                .unwrap_or_else(|e| panic!("{}/{:?} failed to record: {e}", b.id, b.family));
            assert!(rec.trace.len() >= 2, "{:?} trace too short", b.family);
            assert!(!rec.truncated, "{:?} hit the action cap", b.family);
            assert!(
                satisfies(b.ground_truth.statements(), &rec.trace),
                "{:?} ground truth must satisfy its own recording",
                b.family
            );
        }
    }

    #[test]
    fn construction_is_deterministic() {
        for &f in &GenFamily::ALL {
            let a = generated(f, 42);
            let b = generated(f, 42);
            assert_eq!(canonical_spec(&a), canonical_spec(&b));
            assert_eq!(fingerprint(&a), fingerprint(&b));
        }
    }

    #[test]
    fn seeds_and_families_are_distinguished() {
        let mut prints = std::collections::HashSet::new();
        for b in generated_suite(&SEEDS) {
            assert!(
                prints.insert(fingerprint(&b)),
                "fingerprint collision on {:?}",
                b.family
            );
        }
        assert_eq!(prints.len(), GenFamily::ALL.len() * SEEDS.len());
    }

    #[test]
    fn macro_program_recurs_across_seeds() {
        let texts: Vec<String> = SEEDS
            .iter()
            .map(|&s| generated(GenFamily::Macro, s).ground_truth.to_string())
            .collect();
        assert!(texts.windows(2).all(|w| w[0] == w[1]));
        let sites: Vec<u64> = SEEDS
            .iter()
            .map(|&s| {
                generated(GenFamily::Macro, s)
                    .site
                    .dom(PageId::from_index(0))
                    .structure_hash()
            })
            .collect();
        assert!(
            sites.windows(2).any(|w| w[0] != w[1]),
            "macro sites must differ structurally across seeds"
        );
    }

    #[test]
    fn family_keys_round_trip() {
        for &f in &GenFamily::ALL {
            assert_eq!(GenFamily::from_key(f.key()), Some(f));
        }
        assert_eq!(GenFamily::from_key("nope"), None);
    }

    #[test]
    fn conditional_has_both_row_kinds() {
        for &s in &SEEDS {
            let b = generated(GenFamily::Conditional, s);
            let spec = canonical_spec(&b);
            assert!(spec.contains("class=\"note\""), "flagged row present");
            assert!(!b.expect_intended);
        }
    }

    #[test]
    fn ragged_has_an_empty_section() {
        for &s in &SEEDS {
            let b = generated(GenFamily::Ragged, s);
            let dom = b.site.dom(PageId::from_index(0));
            let empty = dom
                .all_nodes()
                .into_iter()
                .filter(|&n| dom.tag(n) == "section")
                .any(|n| dom.children(n).len() == 1);
            assert!(empty, "seed {s} must produce an empty section");
        }
    }
}
