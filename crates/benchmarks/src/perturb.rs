//! Seeded DOM perturbation: structural fuzzing of benchmark sites.
//!
//! [`perturb_site`] applies a fixed budget of seeded mutations to every
//! page of a site — node insertion, deletion, reordering, attribute and
//! text churn, and list-length jitter (duplicating or dropping a repeated
//! child) — while leaving URLs, the start page and search-form routing
//! untouched.
//!
//! The contract the fuzz suite enforces on top of this module: synthesis
//! and replay over any perturbed site must yield **typed errors or
//! degraded predictions — never a panic, never a hang past the configured
//! deadline**. Perturbation deliberately produces hostile shapes (dangling
//! `href="#p…"` targets, deleted payload subtrees, duplicated "unique"
//! nodes); the engine is not expected to produce useful programs on them,
//! only to fail cleanly.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webrobot_browser::Site;
use webrobot_dom::{Dom, NodeId};

const TAGS: &[&str] = &["div", "span", "p", "li", "aside", "b"];
const WORDS: &[&str] = &["zz", "lorem", "noise", "sale", "beta", "x9"];
const HREFS: &[&str] = &["#p0", "#p1", "#p99", "https://ext.test/x", ""];

/// Mutation budget for [`perturb_site`].
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Seeded mutation operations applied to each page.
    pub ops_per_page: usize,
}

impl Default for PerturbConfig {
    fn default() -> PerturbConfig {
        PerturbConfig { ops_per_page: 6 }
    }
}

/// Returns a copy of `site` with every page's DOM perturbed by
/// `cfg.ops_per_page` seeded mutations. Deterministic in `(site, seed)`.
pub fn perturb_site(site: &Site, seed: u64, cfg: PerturbConfig) -> Arc<Site> {
    Arc::new(site.with_doms(|pid, dom| {
        let mut out = dom.clone();
        let salt = (pid.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed ^ salt);
        perturb_dom(&mut out, &mut rng, cfg.ops_per_page);
        out
    }))
}

/// Applies `ops` seeded mutations to `dom` in place. Exposed so tests can
/// perturb a single page template directly.
pub fn perturb_dom(dom: &mut Dom, rng: &mut StdRng, ops: usize) {
    for _ in 0..ops {
        let nodes = dom.all_nodes();
        match rng.gen_range(0..6u32) {
            // Insert a node under a random live parent.
            0 => {
                let parent = nodes[rng.gen_range(0..nodes.len())];
                let n = dom.append(parent, pick(rng, TAGS));
                dom.set_text(n, pick(rng, WORDS));
            }
            // Delete a random non-root subtree (possibly a payload the
            // ground truth scrapes, possibly a whole section).
            1 => {
                let victims: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| dom.parent(n).is_some())
                    .collect();
                if let Some(&n) = choose(rng, &victims) {
                    dom.detach(n);
                }
            }
            // Reorder two children of a random multi-child parent.
            2 => {
                let parents: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| dom.children(n).len() >= 2)
                    .collect();
                if let Some(&p) = choose(rng, &parents) {
                    let len = dom.children(p).len();
                    let from = rng.gen_range(0..len);
                    let to = rng.gen_range(0..len);
                    dom.move_child(p, from, to);
                }
            }
            // Attribute churn: clobber `class` or `href` (dangling page
            // targets included — the browser must treat them as no-ops).
            3 => {
                let n = nodes[rng.gen_range(0..nodes.len())];
                match rng.gen_range(0..3u32) {
                    0 => dom.set_attr(n, "class", pick(rng, WORDS)),
                    1 => dom.set_attr(n, "href", pick(rng, HREFS)),
                    _ => dom.set_attr(n, "data-noise", pick(rng, WORDS)),
                }
            }
            // Text churn.
            4 => {
                let n = nodes[rng.gen_range(0..nodes.len())];
                dom.set_text(n, pick(rng, WORDS));
            }
            // List-length jitter: duplicate or drop one child of a parent
            // with repeated same-tag children.
            _ => {
                let parents: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let cs = dom.children(n);
                        cs.len() >= 2 && cs.windows(2).any(|w| dom.tag(w[0]) == dom.tag(w[1]))
                    })
                    .collect();
                if let Some(&p) = choose(rng, &parents) {
                    let cs = dom.children(p);
                    let i = rng.gen_range(0..cs.len());
                    let child = cs[i];
                    if rng.gen_range(0..2u32) == 0 {
                        let template = capture(dom, child);
                        instantiate(dom, p, &template);
                    } else {
                        dom.detach(child);
                    }
                }
            }
        }
    }
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn choose<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> Option<&'a T> {
    if pool.is_empty() {
        None
    } else {
        Some(&pool[rng.gen_range(0..pool.len())])
    }
}

/// Owned copy of a subtree, read out before mutation (the arena cannot be
/// read and grown simultaneously).
struct Template {
    tag: String,
    attrs: Vec<(String, String)>,
    text: String,
    children: Vec<Template>,
}

fn capture(dom: &Dom, node: NodeId) -> Template {
    Template {
        tag: dom.tag(node).to_string(),
        attrs: dom.attrs(node).to_vec(),
        text: dom.text(node).to_string(),
        children: dom
            .children(node)
            .iter()
            .map(|&c| capture(dom, c))
            .collect(),
    }
}

fn instantiate(dom: &mut Dom, parent: NodeId, t: &Template) {
    let n = dom.append(parent, t.tag.clone());
    for (k, v) in &t.attrs {
        dom.set_attr(n, k.clone(), v.clone());
    }
    if !t.text.is_empty() {
        dom.set_text(n, t.text.clone());
    }
    for c in &t.children {
        instantiate(dom, n, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generated, GenFamily};
    use webrobot_browser::PageId;

    #[test]
    fn perturbation_is_deterministic() {
        let b = generated(GenFamily::Noisy, 5);
        let a = perturb_site(&b.site, 77, PerturbConfig::default());
        let c = perturb_site(&b.site, 77, PerturbConfig::default());
        for p in 0..a.page_count() {
            let pid = PageId::from_index(p);
            assert_eq!(a.dom(pid), c.dom(pid));
        }
    }

    #[test]
    fn distinct_seeds_usually_differ() {
        let b = generated(GenFamily::Macro, 3);
        let a = perturb_site(&b.site, 1, PerturbConfig::default());
        let c = perturb_site(&b.site, 2, PerturbConfig::default());
        let pid = PageId::from_index(0);
        assert_ne!(a.dom(pid).structure_hash(), c.dom(pid).structure_hash());
    }

    #[test]
    fn perturbation_preserves_urls_and_start() {
        let b = generated(GenFamily::Mixed, 9);
        let p = perturb_site(&b.site, 4, PerturbConfig::default());
        assert_eq!(p.page_count(), b.site.page_count());
        assert_eq!(p.start(), b.site.start());
        for i in 0..p.page_count() {
            let pid = PageId::from_index(i);
            assert_eq!(p.url(pid), b.site.url(pid));
        }
    }

    #[test]
    fn zero_ops_is_identity() {
        let b = generated(GenFamily::Ragged, 11);
        let p = perturb_site(&b.site, 8, PerturbConfig { ops_per_page: 0 });
        let pid = PageId::from_index(0);
        assert_eq!(p.dom(pid), b.site.dom(pid));
    }

    #[test]
    fn heavy_perturbation_does_not_corrupt_the_arena() {
        let b = generated(GenFamily::Conditional, 13);
        let p = perturb_site(&b.site, 21, PerturbConfig { ops_per_page: 200 });
        let pid = PageId::from_index(0);
        let dom = p.dom(pid);
        // Every live node is reachable and renders a consistent path.
        for n in dom.all_nodes() {
            if dom.parent(n).is_some() {
                let _ = dom.absolute_path(n);
            }
        }
    }
}
