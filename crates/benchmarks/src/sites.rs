//! Low-level HTML/site construction helpers shared by benchmark families.

use webrobot_dom::{parse_html, Dom};

/// Wraps body markup in `<html><body>…</body></html>` and parses it.
///
/// # Panics
///
/// Panics on malformed markup — benchmark construction is infallible by
/// design, so a parse failure is a suite bug.
pub(crate) fn page(body: &str) -> Dom {
    parse_html(&format!("<html><body>{body}</body></html>"))
        .unwrap_or_else(|e| panic!("benchmark page failed to parse: {e}\n{body}"))
}

/// A search bar whose button routes through the site's `key` form.
pub(crate) fn searchbar(key: &str) -> String {
    format!(
        "<div class='searchbar'>\
         <input name='search' data-field='{key}' value=''/>\
         <button class='go' data-search='{key}'>GO</button></div>"
    )
}

/// One listing item: a container div with the given class holding one
/// element per `(tag, class, text)` field.
pub(crate) fn item_block(item_class: &str, fields: &[(&str, Option<&str>, String)]) -> String {
    let mut out = format!("<div class='{item_class}'>");
    for (tag, class, text) in fields {
        match class {
            Some(c) => out.push_str(&format!("<{tag} class='{c}'>{text}</{tag}>")),
            None => out.push_str(&format!("<{tag}>{text}</{tag}>")),
        }
    }
    out.push_str("</div>");
    out
}

/// A "next page" button linking to site page `target`.
pub(crate) fn next_button(target: usize) -> String {
    format!("<button class='next' href='#p{target}'>&gt;</button>")
}

/// A present-but-inert "next" button (no `href`): clicking it does nothing,
/// yet `valid(ρ, π)` still holds — the pagination mechanism the paper's
/// click-terminated `while` loop cannot express (§7.1 "Pagination beyond
/// next page").
pub(crate) fn disabled_next_button() -> String {
    "<button class='next'>&gt;</button>".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_parses_and_roots_at_html() {
        let dom = page("<h3>x</h3>");
        assert_eq!(dom.tag(webrobot_dom::NodeId::ROOT), "html");
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn item_block_renders_fields() {
        let html = item_block(
            "item",
            &[
                ("h3", None, "Name".to_string()),
                ("span", Some("phone"), "555".to_string()),
            ],
        );
        let dom = page(&html);
        let body = dom.children(webrobot_dom::NodeId::ROOT)[0];
        let item = dom.children(body)[0];
        assert_eq!(dom.attr(item, "class"), Some("item"));
        assert_eq!(dom.children(item).len(), 2);
    }

    #[test]
    #[should_panic(expected = "failed to parse")]
    fn malformed_markup_panics() {
        let _ = page("<div>");
    }
}
