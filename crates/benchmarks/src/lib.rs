//! The 76-benchmark web RPA suite (paper §7 "Benchmarks").
//!
//! The paper's benchmarks were scraped from the iMacros forum and run
//! against live websites. This crate regenerates the suite synthetically
//! (substitution documented in `DESIGN.md` §4) while preserving the
//! published aggregate statistics:
//!
//! * all **76** involve data extraction,
//! * **29** involve data entry,
//! * **60** involve navigation across webpages,
//! * **33** involve pagination,
//! * **28** involve entry + extraction + navigation,
//! * **32** ground truths have doubly-nested loops, **6** have ≥ 3 levels,
//! * **7** defeat the synthesizer the same ways the paper reports
//!   (disjunctive/multi-attribute selectors, unsupported pagination),
//! * **11** carry a front-end replay quirk (paper §7.3's end-to-end
//!   failures).
//!
//! Benchmarks referenced by id in the paper's tables (b6, b7, b9, b12, b15,
//! b20, b48, b56, b73–b76, …) are given the corresponding structural
//! properties, e.g. [`benchmark`]`(56)` needs a three-level selector loop
//! and [`benchmark`]`(9)` uses a pagination mechanism the DSL cannot
//! express.
//!
//! Beyond the fixed suite, the [`gen`] module is a **seeded procedural
//! generator**: [`generated`]`(family, seed)` builds a complete off-suite
//! benchmark deterministically from a `u64` — five [`GenFamily`] shapes
//! covering conditional rows, ragged nesting, noisy listings, full
//! entry/search/pagination flows, and a recurring macro sub-program
//! (ARCHITECTURE.md § "Generated workloads and the fuzz contract").
//! [`perturb`] mutates any generated site with seeded DOM damage for
//! fuzzing; [`canonical_spec`] / [`fingerprint`] pin the determinism
//! contract.
//!
//! # Example
//!
//! ```
//! let suite = webrobot_benchmarks::suite();
//! assert_eq!(suite.len(), 76);
//! let b73 = webrobot_benchmarks::benchmark(73).unwrap();
//! let rec = b73.record().unwrap();
//! assert!(rec.trace.len() >= 2);
//! ```

mod fakedata;
mod families;
pub mod gen;
pub mod perturb;
mod sites;
mod spec;

pub use fakedata::Faker;
pub use gen::{canonical_spec, fingerprint, generated, generated_suite, GenFamily};
pub use perturb::{perturb_site, PerturbConfig};
pub use spec::{benchmark, suite, Benchmark, Family, Features, Quirk};
